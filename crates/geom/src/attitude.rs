//! Vehicle attitude represented as roll / pitch / yaw Euler angles.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{wrap_angle, Vec3};

/// Vehicle attitude as intrinsic Z-Y-X (yaw-pitch-roll) Euler angles, radians.
///
/// This is the representation used by the simulated autopilot and the camera
/// models. Full quaternion kinematics are unnecessary for the landing
/// scenarios in the paper (attitudes stay far from gimbal lock: the vehicle is
/// a multirotor in near-hover flight), so the simpler Euler form is used and
/// its limitations documented here.
///
/// # Examples
///
/// ```
/// use mls_geom::{Attitude, Vec3};
///
/// // A 90° yaw turns the body-x axis from east to north.
/// let att = Attitude::from_yaw(std::f64::consts::FRAC_PI_2);
/// let world = att.body_to_world(Vec3::UNIT_X);
/// assert!((world - Vec3::UNIT_Y).norm() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Attitude {
    /// Roll about the body x axis, radians.
    pub roll: f64,
    /// Pitch about the body y axis, radians.
    pub pitch: f64,
    /// Yaw about the world z axis, radians.
    pub yaw: f64,
}

impl Attitude {
    /// The level attitude with zero yaw.
    pub const LEVEL: Attitude = Attitude {
        roll: 0.0,
        pitch: 0.0,
        yaw: 0.0,
    };

    /// Creates an attitude from roll, pitch and yaw in radians.
    #[inline]
    pub const fn new(roll: f64, pitch: f64, yaw: f64) -> Self {
        Self { roll, pitch, yaw }
    }

    /// Creates a level attitude with the given yaw.
    #[inline]
    pub const fn from_yaw(yaw: f64) -> Self {
        Self {
            roll: 0.0,
            pitch: 0.0,
            yaw,
        }
    }

    /// Returns the attitude with every angle wrapped into `(-π, π]`.
    #[inline]
    pub fn wrapped(self) -> Self {
        Self {
            roll: wrap_angle(self.roll),
            pitch: wrap_angle(self.pitch),
            yaw: wrap_angle(self.yaw),
        }
    }

    /// The body-to-world rotation matrix in row-major order.
    pub fn rotation_matrix(self) -> [[f64; 3]; 3] {
        let (sr, cr) = self.roll.sin_cos();
        let (sp, cp) = self.pitch.sin_cos();
        let (sy, cy) = self.yaw.sin_cos();
        [
            [cy * cp, cy * sp * sr - sy * cr, cy * sp * cr + sy * sr],
            [sy * cp, sy * sp * sr + cy * cr, sy * sp * cr - cy * sr],
            [-sp, cp * sr, cp * cr],
        ]
    }

    /// Rotates a vector from the body frame into the world frame.
    pub fn body_to_world(self, v: Vec3) -> Vec3 {
        let m = self.rotation_matrix();
        Vec3::new(
            m[0][0] * v.x + m[0][1] * v.y + m[0][2] * v.z,
            m[1][0] * v.x + m[1][1] * v.y + m[1][2] * v.z,
            m[2][0] * v.x + m[2][1] * v.y + m[2][2] * v.z,
        )
    }

    /// Rotates a vector from the world frame into the body frame.
    pub fn world_to_body(self, v: Vec3) -> Vec3 {
        // Rotation matrices are orthonormal, so the inverse is the transpose.
        let m = self.rotation_matrix();
        Vec3::new(
            m[0][0] * v.x + m[1][0] * v.y + m[2][0] * v.z,
            m[0][1] * v.x + m[1][1] * v.y + m[2][1] * v.z,
            m[0][2] * v.x + m[1][2] * v.y + m[2][2] * v.z,
        )
    }

    /// The unit vector the body x axis (vehicle "forward") points at in the
    /// world frame.
    #[inline]
    pub fn forward(self) -> Vec3 {
        self.body_to_world(Vec3::UNIT_X)
    }

    /// The unit vector the body z axis (vehicle "up") points at in the world
    /// frame.
    #[inline]
    pub fn up(self) -> Vec3 {
        self.body_to_world(Vec3::UNIT_Z)
    }

    /// Magnitude of the tilt away from level flight, radians.
    ///
    /// Zero for a level vehicle, π for an inverted one. Used by the landing
    /// safety checks (a strongly tilted vehicle must not start its final
    /// descent).
    pub fn tilt(self) -> f64 {
        self.up().dot(Vec3::UNIT_Z).clamp(-1.0, 1.0).acos()
    }

    /// `true` if all angles are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.roll.is_finite() && self.pitch.is_finite() && self.yaw.is_finite()
    }
}

impl fmt::Display for Attitude {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rpy({:.3}, {:.3}, {:.3})",
            self.roll, self.pitch, self.yaw
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

    fn approx(a: Vec3, b: Vec3) -> bool {
        (a - b).norm() < 1e-9
    }

    #[test]
    fn level_attitude_is_identity() {
        let att = Attitude::LEVEL;
        for v in [
            Vec3::UNIT_X,
            Vec3::UNIT_Y,
            Vec3::UNIT_Z,
            Vec3::new(1.0, 2.0, 3.0),
        ] {
            assert!(approx(att.body_to_world(v), v));
            assert!(approx(att.world_to_body(v), v));
        }
        assert_eq!(att.tilt(), 0.0);
    }

    #[test]
    fn yaw_rotates_forward_vector() {
        let att = Attitude::from_yaw(FRAC_PI_2);
        assert!(approx(att.forward(), Vec3::UNIT_Y));
        let att = Attitude::from_yaw(PI);
        assert!(approx(att.forward(), -Vec3::UNIT_X));
    }

    #[test]
    fn pitch_tilts_up_vector() {
        let att = Attitude::new(0.0, FRAC_PI_4, 0.0);
        assert!((att.tilt() - FRAC_PI_4).abs() < 1e-9);
        let att = Attitude::new(FRAC_PI_4, 0.0, 1.3);
        assert!((att.tilt() - FRAC_PI_4).abs() < 1e-9);
    }

    #[test]
    fn world_to_body_inverts_body_to_world() {
        let att = Attitude::new(0.1, -0.2, 2.2);
        for v in [
            Vec3::new(1.0, -2.0, 0.5),
            Vec3::UNIT_Z,
            Vec3::new(-3.0, 7.0, -1.0),
        ] {
            let roundtrip = att.world_to_body(att.body_to_world(v));
            assert!(approx(roundtrip, v));
        }
    }

    #[test]
    fn rotation_preserves_length() {
        let att = Attitude::new(0.3, -0.7, 1.9);
        let v = Vec3::new(2.0, -1.0, 4.0);
        assert!((att.body_to_world(v).norm() - v.norm()).abs() < 1e-9);
    }

    #[test]
    fn wrapped_brings_angles_into_range() {
        let att = Attitude::new(3.0 * PI, -5.0 * PI, 7.0).wrapped();
        assert!(att.roll.abs() <= PI + 1e-12);
        assert!(att.pitch.abs() <= PI + 1e-12);
        assert!(att.yaw.abs() <= PI + 1e-12);
    }

    #[test]
    fn display_and_finiteness() {
        assert!(!format!("{}", Attitude::LEVEL).is_empty());
        assert!(Attitude::LEVEL.is_finite());
        assert!(!Attitude::new(f64::NAN, 0.0, 0.0).is_finite());
    }
}
