//! Property-based tests for the geometry primitives.

use mls_geom::{
    segment_point_distance, wrap_angle, Aabb, Attitude, Pose, Ray, Vec2, Vec3, VoxelIndex,
};
use proptest::prelude::*;

fn finite() -> impl Strategy<Value = f64> {
    -1.0e3..1.0e3
}

fn vec3() -> impl Strategy<Value = Vec3> {
    (finite(), finite(), finite()).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn vec2() -> impl Strategy<Value = Vec2> {
    (finite(), finite()).prop_map(|(x, y)| Vec2::new(x, y))
}

proptest! {
    #[test]
    fn vec3_add_commutative(a in vec3(), b in vec3()) {
        prop_assert!(((a + b) - (b + a)).norm() < 1e-9);
    }

    #[test]
    fn vec3_norm_triangle_inequality(a in vec3(), b in vec3()) {
        prop_assert!((a + b).norm() <= a.norm() + b.norm() + 1e-9);
    }

    #[test]
    fn vec3_cross_is_orthogonal(a in vec3(), b in vec3()) {
        let c = a.cross(b);
        // |a x b . a| <= eps * scale
        let scale = (a.norm() * a.norm() * b.norm()).max(1.0);
        prop_assert!(c.dot(a).abs() <= 1e-9 * scale);
        prop_assert!(c.dot(b).abs() <= 1e-9 * (b.norm() * a.norm() * b.norm()).max(1.0));
    }

    #[test]
    fn vec3_normalized_has_unit_norm(a in vec3()) {
        if let Some(n) = a.normalized() {
            prop_assert!((n.norm() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn vec3_clamp_norm_never_exceeds(a in vec3(), max in 0.0f64..100.0) {
        prop_assert!(a.clamp_norm(max).norm() <= max + 1e-9);
    }

    #[test]
    fn vec2_rotation_preserves_norm(v in vec2(), angle in -10.0f64..10.0) {
        prop_assert!((v.rotated(angle).norm() - v.norm()).abs() < 1e-6);
    }

    #[test]
    fn wrap_angle_in_range(a in -1.0e4f64..1.0e4) {
        let w = wrap_angle(a);
        prop_assert!(w > -std::f64::consts::PI - 1e-9);
        prop_assert!(w <= std::f64::consts::PI + 1e-9);
        // Same direction.
        prop_assert!((w.sin() - a.sin()).abs() < 1e-6);
        prop_assert!((w.cos() - a.cos()).abs() < 1e-6);
    }

    #[test]
    fn attitude_roundtrip(roll in -1.0f64..1.0, pitch in -1.0f64..1.0, yaw in -3.0f64..3.0, v in vec3()) {
        let att = Attitude::new(roll, pitch, yaw);
        let rt = att.world_to_body(att.body_to_world(v));
        prop_assert!((rt - v).norm() < 1e-6 * v.norm().max(1.0));
    }

    #[test]
    fn attitude_rotation_is_isometry(roll in -1.0f64..1.0, pitch in -1.0f64..1.0, yaw in -3.0f64..3.0, v in vec3()) {
        let att = Attitude::new(roll, pitch, yaw);
        prop_assert!((att.body_to_world(v).norm() - v.norm()).abs() < 1e-6 * v.norm().max(1.0));
    }

    #[test]
    fn pose_transform_roundtrip(p in vec3(), yaw in -3.0f64..3.0, point in vec3()) {
        let pose = Pose::from_position_yaw(p, yaw);
        let rt = pose.inverse_transform_point(pose.transform_point(point));
        prop_assert!((rt - point).norm() < 1e-6 * point.norm().max(1.0));
    }

    #[test]
    fn aabb_contains_center_and_corners(a in vec3(), b in vec3()) {
        let bb = Aabb::new(a, b);
        prop_assert!(bb.contains(bb.center()));
        prop_assert!(bb.contains(bb.min()));
        prop_assert!(bb.contains(bb.max()));
    }

    #[test]
    fn aabb_closest_point_is_inside(a in vec3(), b in vec3(), p in vec3()) {
        let bb = Aabb::new(a, b);
        let cp = bb.closest_point(p);
        prop_assert!(bb.contains(cp));
        prop_assert!(bb.distance_to_point(p) <= p.distance(bb.center()) + 1e-9);
    }

    #[test]
    fn aabb_inflation_contains_original(a in vec3(), b in vec3(), m in 0.0f64..10.0, p in vec3()) {
        let bb = Aabb::new(a, b);
        let big = bb.inflated(m);
        if bb.contains(p) {
            prop_assert!(big.contains(p));
        }
    }

    #[test]
    fn aabb_ray_hit_point_is_on_boundary_or_inside(a in vec3(), b in vec3(), o in vec3(), d in vec3()) {
        prop_assume!(d.norm() > 1e-6);
        let bb = Aabb::new(a, b);
        let ray = Ray::new(o, d);
        if let Some(t) = bb.ray_intersection(&ray) {
            let hit = ray.point_at(t);
            // The hit point must lie within the (slightly inflated) box.
            prop_assert!(bb.inflated(1e-6 * (1.0 + hit.norm())).contains(hit));
        }
    }

    #[test]
    fn segment_distance_is_at_most_endpoint_distance(p in vec3(), a in vec3(), b in vec3()) {
        let d = segment_point_distance(p, a, b);
        prop_assert!(d <= p.distance(a) + 1e-9);
        prop_assert!(d <= p.distance(b) + 1e-9);
    }

    #[test]
    fn voxel_roundtrip(p in vec3(), res in 0.05f64..5.0) {
        let idx = VoxelIndex::from_point(p, res);
        let c = idx.center(res);
        // The voxel center maps back to the same voxel.
        prop_assert_eq!(VoxelIndex::from_point(c, res), idx);
        // The original point is within half a diagonal of the center.
        prop_assert!(p.distance(c) <= res * 0.87 + 1e-9);
    }
}
