//! Goal-biased RRT* with rewiring and shortcutting (the OMPL-style planner of
//! MLS-V3).
//!
//! Sampling-based planning over the *global* octree map is what fixed the V2
//! failure modes: large obstacles no longer exhaust a fixed search pool, and
//! the global map means previously-seen obstacles stay in the collision
//! checker. The well-known cost is geometric path quality — RRT* paths have
//! sharp corners unless smoothed, which interacts with the vehicle's
//! trajectory-following lag (the residual V3 failure mode the paper reports).

use mls_geom::{Aabb, Vec3};
use mls_mapping::OccupancyQuery;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{Path, PathPlanner, PlanOutcome, PlanningError};

/// Configuration of the RRT* planner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RrtStarConfig {
    /// Maximum number of samples.
    pub max_iterations: usize,
    /// Steering step length, metres.
    pub step_length: f64,
    /// Probability of sampling the goal instead of a random point.
    pub goal_bias: f64,
    /// Neighbourhood radius used for choosing parents and rewiring, metres.
    pub rewire_radius: f64,
    /// Obstacle inflation radius applied to every edge, metres.
    pub inflation_radius: f64,
    /// Treat unknown space as free (optimistic) or occupied (conservative).
    pub optimistic_unknown: bool,
    /// Margin added around the start/goal bounding box for sampling, metres.
    pub sampling_margin: f64,
    /// Minimum flight altitude, metres.
    pub min_altitude: f64,
    /// Maximum flight altitude, metres.
    pub max_altitude: f64,
    /// Tolerance for connecting to the goal, metres.
    pub goal_tolerance: f64,
    /// Continue sampling after the first solution to improve it, as a
    /// fraction of `max_iterations`.
    pub refinement_fraction: f64,
    /// Number of shortcutting passes applied to the final path.
    pub shortcut_passes: usize,
    /// RNG seed (planning is deterministic given the seed and the map).
    pub seed: u64,
}

impl Default for RrtStarConfig {
    fn default() -> Self {
        Self {
            max_iterations: 1_500,
            step_length: 2.5,
            goal_bias: 0.12,
            rewire_radius: 3.5,
            inflation_radius: 0.9,
            optimistic_unknown: true,
            sampling_margin: 12.0,
            min_altitude: 1.0,
            max_altitude: 30.0,
            goal_tolerance: 1.2,
            refinement_fraction: 0.3,
            shortcut_passes: 40,
            seed: 7,
        }
    }
}

impl RrtStarConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PlanningError::InvalidConfig`] for empty budgets or
    /// non-positive steps/radii.
    pub fn validate(&self) -> Result<(), PlanningError> {
        if self.max_iterations == 0 {
            return Err(PlanningError::InvalidConfig {
                reason: "max_iterations must be at least 1".to_string(),
            });
        }
        if self.step_length <= 0.0 || self.rewire_radius <= 0.0 {
            return Err(PlanningError::InvalidConfig {
                reason: "step_length and rewire_radius must be positive".to_string(),
            });
        }
        if !(0.0..=1.0).contains(&self.goal_bias) {
            return Err(PlanningError::InvalidConfig {
                reason: "goal_bias must be in [0, 1]".to_string(),
            });
        }
        if self.min_altitude >= self.max_altitude {
            return Err(PlanningError::InvalidConfig {
                reason: "min_altitude must be below max_altitude".to_string(),
            });
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Copy)]
struct TreeNode {
    position: Vec3,
    parent: usize,
    cost: f64,
}

/// RRT* planner.
#[derive(Debug, Clone)]
pub struct RrtStarPlanner {
    config: RrtStarConfig,
    rng: StdRng,
    budget_scale: f64,
}

impl RrtStarPlanner {
    /// Creates a planner with the default configuration.
    pub fn new() -> Self {
        Self::with_config(RrtStarConfig::default())
    }

    /// Creates a planner with an explicit configuration.
    pub fn with_config(config: RrtStarConfig) -> Self {
        Self {
            rng: StdRng::seed_from_u64(config.seed),
            config,
            budget_scale: 1.0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &RrtStarConfig {
        &self.config
    }

    /// The sampling budget for the next query, after budget scaling.
    pub fn effective_budget(&self) -> usize {
        ((self.config.max_iterations as f64 * self.budget_scale).floor() as usize).max(1)
    }

    fn point_blocked(&self, map: &dyn OccupancyQuery, point: Vec3) -> bool {
        if point.z < self.config.min_altitude || point.z > self.config.max_altitude {
            return true;
        }
        map.occupied_within(
            point,
            self.config.inflation_radius,
            !self.config.optimistic_unknown,
        )
    }

    fn edge_blocked(&self, map: &dyn OccupancyQuery, a: Vec3, b: Vec3) -> bool {
        map.segment_blocked(
            a,
            b,
            self.config.inflation_radius,
            !self.config.optimistic_unknown,
        ) || b.z < self.config.min_altitude
            || b.z > self.config.max_altitude
    }

    fn sample(&mut self, bounds: &Aabb, goal: Vec3) -> Vec3 {
        if self.rng.random::<f64>() < self.config.goal_bias {
            return goal;
        }
        let min = bounds.min();
        let max = bounds.max();
        // The full altitude band is always sampled so the planner can climb
        // over obstacles taller than the start/goal altitudes.
        Vec3::new(
            self.rng.random_range(min.x..=max.x),
            self.rng.random_range(min.y..=max.y),
            self.rng
                .random_range(self.config.min_altitude..=self.config.max_altitude),
        )
    }

    /// Repeatedly tries to replace intermediate waypoints with direct
    /// connections.
    fn shortcut(&mut self, map: &dyn OccupancyQuery, path: Path) -> Path {
        let mut waypoints = path.waypoints;
        for _ in 0..self.config.shortcut_passes {
            if waypoints.len() <= 2 {
                break;
            }
            let i = self.rng.random_range(0..waypoints.len() - 2);
            let j = self.rng.random_range(i + 2..waypoints.len());
            if !self.edge_blocked(map, waypoints[i], waypoints[j]) {
                waypoints.drain(i + 1..j);
            }
        }
        Path::new(waypoints).simplified()
    }
}

impl Default for RrtStarPlanner {
    fn default() -> Self {
        Self::new()
    }
}

impl PathPlanner for RrtStarPlanner {
    fn plan(
        &mut self,
        map: &dyn OccupancyQuery,
        start: Vec3,
        goal: Vec3,
    ) -> Result<PlanOutcome, PlanningError> {
        self.config.validate()?;
        if self.point_blocked(map, start) {
            return Err(PlanningError::InvalidEndpoint { endpoint: "start" });
        }
        if self.point_blocked(map, goal) {
            return Err(PlanningError::InvalidEndpoint { endpoint: "goal" });
        }

        let bounds = Aabb::new(start, goal).inflated(self.config.sampling_margin);
        let mut nodes = vec![TreeNode {
            position: start,
            parent: 0,
            cost: 0.0,
        }];
        let budget = self.effective_budget();
        let mut best_goal_node: Option<usize> = None;
        let mut best_goal_cost = f64::INFINITY;
        let mut iterations = 0usize;

        for i in 0..budget {
            iterations = i + 1;
            let target = self.sample(&bounds, goal);

            // Nearest node.
            let (nearest_idx, nearest_distance) = nodes
                .iter()
                .enumerate()
                .map(|(idx, n)| (idx, n.position.distance(target)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                .expect("tree is never empty");
            if nearest_distance < 1e-9 {
                continue;
            }

            // Steer.
            let direction = (target - nodes[nearest_idx].position)
                .normalized()
                .unwrap_or(Vec3::UNIT_X);
            let step = nearest_distance.min(self.config.step_length);
            let new_position = nodes[nearest_idx].position + direction * step;
            if self.point_blocked(map, new_position) {
                continue;
            }

            // Choose the best parent within the rewire radius.
            let mut parent_idx = nearest_idx;
            let mut parent_cost =
                nodes[nearest_idx].cost + nodes[nearest_idx].position.distance(new_position);
            let neighbor_indices: Vec<usize> = nodes
                .iter()
                .enumerate()
                .filter(|(_, n)| n.position.distance(new_position) <= self.config.rewire_radius)
                .map(|(idx, _)| idx)
                .collect();
            for &idx in &neighbor_indices {
                let candidate_cost = nodes[idx].cost + nodes[idx].position.distance(new_position);
                if candidate_cost < parent_cost
                    && !self.edge_blocked(map, nodes[idx].position, new_position)
                {
                    parent_idx = idx;
                    parent_cost = candidate_cost;
                }
            }
            if self.edge_blocked(map, nodes[parent_idx].position, new_position) {
                continue;
            }
            let new_idx = nodes.len();
            nodes.push(TreeNode {
                position: new_position,
                parent: parent_idx,
                cost: parent_cost,
            });

            // Rewire neighbours through the new node when cheaper.
            for &idx in &neighbor_indices {
                let through_new = parent_cost + new_position.distance(nodes[idx].position);
                if through_new + 1e-9 < nodes[idx].cost
                    && !self.edge_blocked(map, new_position, nodes[idx].position)
                {
                    nodes[idx].parent = new_idx;
                    nodes[idx].cost = through_new;
                }
            }

            // Try to connect to the goal.
            if new_position.distance(goal) <= self.config.goal_tolerance
                || (new_position.distance(goal) <= self.config.step_length
                    && !self.edge_blocked(map, new_position, goal))
            {
                let goal_cost = parent_cost + new_position.distance(goal);
                if goal_cost < best_goal_cost {
                    best_goal_cost = goal_cost;
                    best_goal_node = Some(new_idx);
                }
                // Keep refining for a fraction of the budget, then stop.
                let refine_budget = (budget as f64 * self.config.refinement_fraction) as usize;
                if i > refine_budget && best_goal_node.is_some() {
                    break;
                }
            }
        }

        let Some(goal_node) = best_goal_node else {
            return Err(PlanningError::NoPathFound {
                reason: "sampling budget exhausted without reaching the goal".to_string(),
                iterations,
            });
        };

        // Reconstruct.
        let mut waypoints = vec![goal];
        let mut cursor = goal_node;
        while cursor != 0 {
            waypoints.push(nodes[cursor].position);
            cursor = nodes[cursor].parent;
        }
        waypoints.push(start);
        waypoints.reverse();
        let path = self.shortcut(map, Path::new(waypoints));
        Ok(PlanOutcome { path, iterations })
    }

    fn name(&self) -> &str {
        "rrt-star"
    }

    fn set_budget_scale(&mut self, scale: f64) {
        self.budget_scale = if scale.is_finite() {
            scale.clamp(0.0, 1.0)
        } else {
            1.0
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mls_mapping::{OctreeConfig, OctreeMap};

    /// A global octree with a wide wall between start and goal.
    fn walled_octree(width: f64, height: f64) -> OctreeMap {
        let mut tree = OctreeMap::new(OctreeConfig {
            resolution: 0.4,
            half_extent: 64.0,
            ..OctreeConfig::default()
        })
        .unwrap();
        let mut y = -width / 2.0;
        while y <= width / 2.0 {
            let mut z = 0.2;
            while z <= height {
                tree.mark_occupied(Vec3::new(10.0, y, z));
                tree.mark_occupied(Vec3::new(10.4, y, z));
                z += 0.4;
            }
            y += 0.4;
        }
        tree
    }

    #[test]
    fn plans_in_free_space() {
        let tree = OctreeMap::new(OctreeConfig::default()).unwrap();
        let mut planner = RrtStarPlanner::new();
        let outcome = planner
            .plan(&tree, Vec3::new(0.0, 0.0, 5.0), Vec3::new(15.0, 5.0, 8.0))
            .unwrap();
        assert!(!outcome.path.is_empty());
        assert!(outcome.path.length() < 25.0);
        assert_eq!(planner.name(), "rrt-star");
    }

    #[test]
    fn routes_around_a_large_wall_where_bounded_astar_fails() {
        // The headline V3 improvement: the same 40 m wall that exhausts the
        // bounded A* pool is handled by RRT*.
        let tree = walled_octree(40.0, 24.0);
        let start = Vec3::new(0.0, 0.0, 5.0);
        let goal = Vec3::new(20.0, 0.0, 5.0);

        let mut astar = crate::AStarPlanner::with_config(crate::AStarConfig {
            max_expansions: 1_500,
            ..crate::AStarConfig::default()
        });
        assert!(astar.plan(&tree, start, goal).is_err());

        let mut rrt = RrtStarPlanner::new();
        let outcome = rrt
            .plan(&tree, start, goal)
            .expect("rrt* should find a way");
        for pair in outcome.path.waypoints.windows(2) {
            assert!(
                !tree.segment_blocked(pair[0], pair[1], 0.3, false),
                "planned edge crosses the wall: {pair:?}"
            );
        }
        assert!(outcome.path.length() > 20.0);
    }

    #[test]
    fn budget_scale_starves_the_sampler() {
        let tree = walled_octree(10.0, 10.0);
        let start = Vec3::new(0.0, 0.0, 5.0);
        let goal = Vec3::new(20.0, 0.0, 5.0);
        let mut planner = RrtStarPlanner::new();
        assert_eq!(planner.effective_budget(), planner.config().max_iterations);
        planner.plan(&tree, start, goal).unwrap();
        // A handful of samples cannot thread the wall.
        planner.set_budget_scale(0.005);
        assert_eq!(planner.effective_budget(), 7);
        let err = planner.plan(&tree, start, goal).unwrap_err();
        assert!(matches!(err, PlanningError::NoPathFound { .. }));
        planner.set_budget_scale(1.0);
        planner.plan(&tree, start, goal).unwrap();
    }

    #[test]
    fn deterministic_given_seed() {
        let tree = walled_octree(10.0, 10.0);
        let start = Vec3::new(0.0, 0.0, 5.0);
        let goal = Vec3::new(20.0, 0.0, 5.0);
        let a = RrtStarPlanner::new().plan(&tree, start, goal).unwrap();
        let b = RrtStarPlanner::new().plan(&tree, start, goal).unwrap();
        assert_eq!(a.path, b.path);
    }

    #[test]
    fn blocked_goal_is_rejected() {
        let mut tree = walled_octree(4.0, 6.0);
        for dz in 0..5 {
            tree.mark_occupied(Vec3::new(20.0, 0.0, 4.0 + dz as f64 * 0.4));
        }
        let mut planner = RrtStarPlanner::new();
        let err = planner
            .plan(&tree, Vec3::new(0.0, 0.0, 5.0), Vec3::new(20.0, 0.0, 5.0))
            .unwrap_err();
        assert!(matches!(
            err,
            PlanningError::InvalidEndpoint { endpoint: "goal" }
        ));
    }

    #[test]
    fn shortcutting_shortens_paths() {
        let tree = walled_octree(12.0, 10.0);
        let start = Vec3::new(0.0, 0.0, 5.0);
        let goal = Vec3::new(20.0, 0.0, 5.0);
        let mut no_shortcut = RrtStarPlanner::with_config(RrtStarConfig {
            shortcut_passes: 0,
            ..RrtStarConfig::default()
        });
        let mut with_shortcut = RrtStarPlanner::new();
        let raw = no_shortcut.plan(&tree, start, goal).unwrap();
        let cut = with_shortcut.plan(&tree, start, goal).unwrap();
        assert!(cut.path.length() <= raw.path.length() + 1e-6);
    }

    #[test]
    fn respects_altitude_band() {
        let tree = OctreeMap::new(OctreeConfig::default()).unwrap();
        let mut planner = RrtStarPlanner::new();
        let outcome = planner
            .plan(&tree, Vec3::new(0.0, 0.0, 5.0), Vec3::new(30.0, 0.0, 5.0))
            .unwrap();
        for w in &outcome.path.waypoints {
            assert!(w.z >= 1.0 - 1e-9 && w.z <= 30.0 + 1e-9, "{w:?}");
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let cfg = RrtStarConfig {
            max_iterations: 0,
            ..RrtStarConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = RrtStarConfig {
            goal_bias: 1.5,
            ..RrtStarConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = RrtStarConfig {
            step_length: 0.0,
            ..RrtStarConfig::default()
        };
        assert!(cfg.validate().is_err());
        assert!(RrtStarConfig::default().validate().is_ok());
    }
}
