//! Path-planning substrates.
//!
//! Two planners mirror the paper's two planning generations:
//!
//! * [`AStarPlanner`] — a bounded-pool grid A* in the spirit of EGO-Planner's
//!   front end (MLS-V2). Fast in open space, but the bounded search pool can
//!   be exhausted by large obstacles, and planning through `Unknown` space is
//!   allowed — both documented V2 failure modes.
//! * [`RrtStarPlanner`] — a goal-biased RRT* with rewiring and shortcutting
//!   in the spirit of OMPL's implementation (MLS-V3), run against the global
//!   octree map.
//!
//! [`Trajectory`] turns waypoint paths into time-parameterised setpoints and
//! [`safety`] holds the corridor/clearance checks the decision-making module
//! applies before and during the landing descent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

use mls_geom::Vec3;
use mls_mapping::OccupancyQuery;
use serde::{Deserialize, Serialize};

mod astar;
mod rrt_star;
pub mod safety;
mod trajectory;

pub use astar::{AStarConfig, AStarPlanner};
pub use rrt_star::{RrtStarConfig, RrtStarPlanner};
pub use trajectory::{Trajectory, TrajectoryConfig, TrajectorySample};

/// Errors produced by the planners.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PlanningError {
    /// No collision-free path was found within the planner's budget.
    NoPathFound {
        /// What ran out (search pool, iterations, ...).
        reason: String,
        /// Number of expansions / samples spent before giving up.
        iterations: usize,
    },
    /// A configuration value was out of range.
    InvalidConfig {
        /// Human-readable description.
        reason: String,
    },
    /// The start or goal is itself in collision (after inflation).
    InvalidEndpoint {
        /// Which endpoint is in collision.
        endpoint: &'static str,
    },
}

impl fmt::Display for PlanningError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanningError::NoPathFound { reason, iterations } => {
                write!(f, "no path found after {iterations} iterations: {reason}")
            }
            PlanningError::InvalidConfig { reason } => {
                write!(f, "invalid planner configuration: {reason}")
            }
            PlanningError::InvalidEndpoint { endpoint } => {
                write!(f, "{endpoint} position is in collision")
            }
        }
    }
}

impl Error for PlanningError {}

/// A waypoint path through free space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Path {
    /// Ordered waypoints from start to goal (inclusive).
    pub waypoints: Vec<Vec3>,
}

impl Path {
    /// Creates a path from waypoints.
    pub fn new(waypoints: Vec<Vec3>) -> Self {
        Self { waypoints }
    }

    /// A direct two-point path (what MLS-V1 flies).
    pub fn straight_line(start: Vec3, goal: Vec3) -> Self {
        Self {
            waypoints: vec![start, goal],
        }
    }

    /// Total path length, metres.
    pub fn length(&self) -> f64 {
        self.waypoints.windows(2).map(|w| w[0].distance(w[1])).sum()
    }

    /// Number of waypoints.
    pub fn len(&self) -> usize {
        self.waypoints.len()
    }

    /// `true` when the path has fewer than two waypoints.
    pub fn is_empty(&self) -> bool {
        self.waypoints.len() < 2
    }

    /// The final waypoint.
    ///
    /// # Panics
    ///
    /// Panics on an empty path.
    pub fn goal(&self) -> Vec3 {
        *self
            .waypoints
            .last()
            .expect("path has at least one waypoint")
    }

    /// The sharpest turn along the path, radians (0 for straight paths).
    /// Sharp RRT* corners are the V3 trajectory-following failure mode.
    pub fn sharpest_corner(&self) -> f64 {
        let mut sharpest = 0.0f64;
        for w in self.waypoints.windows(3) {
            let a = (w[1] - w[0]).normalized();
            let b = (w[2] - w[1]).normalized();
            if let (Some(a), Some(b)) = (a, b) {
                let angle = a.dot(b).clamp(-1.0, 1.0).acos();
                sharpest = sharpest.max(angle);
            }
        }
        sharpest
    }

    /// Returns the path with collinear intermediate waypoints removed.
    pub fn simplified(&self) -> Path {
        if self.waypoints.len() <= 2 {
            return self.clone();
        }
        let mut out = vec![self.waypoints[0]];
        for w in self.waypoints.windows(3) {
            let a = (w[1] - w[0]).normalized();
            let b = (w[2] - w[1]).normalized();
            let collinear = match (a, b) {
                (Some(a), Some(b)) => a.dot(b) > 1.0 - 1e-9,
                _ => true,
            };
            if !collinear {
                out.push(w[1]);
            }
        }
        out.push(*self.waypoints.last().expect("non-empty"));
        Path::new(out)
    }
}

/// Result of a successful planning query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanOutcome {
    /// The collision-free path.
    pub path: Path,
    /// Number of node expansions (A*) or samples (RRT*) consumed; drives the
    /// compute model's planning cost.
    pub iterations: usize,
}

/// Common interface of the A* and RRT* planners (and the straight-line
/// "planner" of MLS-V1).
pub trait PathPlanner: Send {
    /// Plans a path from `start` to `goal` over `map`.
    ///
    /// # Errors
    ///
    /// Returns [`PlanningError::NoPathFound`] when the budget is exhausted,
    /// or [`PlanningError::InvalidEndpoint`] when an endpoint is already in
    /// collision.
    fn plan(
        &mut self,
        map: &dyn OccupancyQuery,
        start: Vec3,
        goal: Vec3,
    ) -> Result<PlanOutcome, PlanningError>;

    /// Short name used in reports ("astar", "rrt-star", "straight-line").
    fn name(&self) -> &str;

    /// Scales the planner's search budget for subsequent queries: `1.0`
    /// restores the configured budget, smaller values starve it. This is the
    /// injection seam behind `mls-core`'s planner-starvation fault — a
    /// thermally throttled or contended platform grants the planner fewer
    /// expansions per query without changing its configuration. Effective
    /// budgets never drop below one iteration; planners without a bounded
    /// budget (the straight-line "planner") ignore the call.
    fn set_budget_scale(&mut self, scale: f64) {
        let _ = scale;
    }
}

/// The MLS-V1 "planner": fly straight at the goal, no map consulted.
#[derive(Debug, Clone, Default)]
pub struct StraightLinePlanner;

impl PathPlanner for StraightLinePlanner {
    fn plan(
        &mut self,
        _map: &dyn OccupancyQuery,
        start: Vec3,
        goal: Vec3,
    ) -> Result<PlanOutcome, PlanningError> {
        Ok(PlanOutcome {
            path: Path::straight_line(start, goal),
            iterations: 1,
        })
    }

    fn name(&self) -> &str {
        "straight-line"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mls_mapping::CellState;

    struct EmptyMap;
    impl OccupancyQuery for EmptyMap {
        fn resolution(&self) -> f64 {
            0.5
        }
        fn state_at(&self, _point: Vec3) -> CellState {
            CellState::Free
        }
        fn memory_bytes(&self) -> usize {
            0
        }
    }

    #[test]
    fn path_length_and_simplification() {
        let path = Path::new(vec![
            Vec3::ZERO,
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(2.0, 0.0, 0.0),
            Vec3::new(2.0, 3.0, 0.0),
        ]);
        assert!((path.length() - 5.0).abs() < 1e-9);
        let simplified = path.simplified();
        assert_eq!(simplified.len(), 3);
        assert!((simplified.length() - 5.0).abs() < 1e-9);
        assert!((path.sharpest_corner() - std::f64::consts::FRAC_PI_2).abs() < 1e-9);
    }

    #[test]
    fn straight_line_planner_ignores_the_map() {
        let mut planner = StraightLinePlanner;
        let outcome = planner
            .plan(&EmptyMap, Vec3::ZERO, Vec3::new(10.0, 0.0, 5.0))
            .unwrap();
        assert_eq!(outcome.path.len(), 2);
        assert_eq!(planner.name(), "straight-line");
    }

    #[test]
    fn errors_display_helpfully() {
        let e = PlanningError::NoPathFound {
            reason: "search pool exhausted".to_string(),
            iterations: 8000,
        };
        assert!(e.to_string().contains("8000"));
        assert!(e.to_string().contains("pool"));
        let e = PlanningError::InvalidEndpoint { endpoint: "goal" };
        assert!(e.to_string().contains("goal"));
    }

    #[test]
    fn empty_and_straight_paths_have_no_corners() {
        assert_eq!(Path::new(vec![]).sharpest_corner(), 0.0);
        assert!(Path::new(vec![]).is_empty());
        let straight = Path::straight_line(Vec3::ZERO, Vec3::new(5.0, 0.0, 0.0));
        assert_eq!(straight.sharpest_corner(), 0.0);
        assert_eq!(straight.goal(), Vec3::new(5.0, 0.0, 0.0));
    }
}
