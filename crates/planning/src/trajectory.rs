//! Time-parameterised trajectories over waypoint paths.
//!
//! The planners produce geometric paths; the vehicle follows *trajectories*:
//! position/velocity setpoints sampled at the control rate. The
//! parameterisation slows down into sharp corners (up to a floor), which is
//! exactly where the paper still lost vehicles in V3 — the airframe's
//! acceleration lag makes it overshoot tight RRT* corners even at reduced
//! speed, into inflated obstacle boundaries.

use mls_geom::Vec3;
use serde::{Deserialize, Serialize};

use crate::{Path, PlanningError};

/// Trajectory generation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrajectoryConfig {
    /// Cruise speed along straight segments, m/s.
    pub cruise_speed: f64,
    /// Minimum speed at sharp corners, m/s.
    pub corner_speed: f64,
    /// Corner angle (radians) above which the speed is reduced to
    /// `corner_speed`.
    pub sharp_corner_angle: f64,
    /// Distance before/after a corner over which the slowdown applies, m.
    pub corner_window: f64,
}

impl Default for TrajectoryConfig {
    fn default() -> Self {
        Self {
            cruise_speed: 4.0,
            corner_speed: 1.2,
            sharp_corner_angle: 0.6,
            corner_window: 2.5,
        }
    }
}

/// One sampled setpoint.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrajectorySample {
    /// Position setpoint.
    pub position: Vec3,
    /// Feed-forward velocity.
    pub velocity: Vec3,
    /// Progress along the path, metres.
    pub arc_length: f64,
}

/// A time-parameterised trajectory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    waypoints: Vec<Vec3>,
    /// Cumulative arc length at each waypoint.
    cumulative: Vec<f64>,
    /// Speed assigned to each segment.
    segment_speed: Vec<f64>,
    /// Time at which each waypoint is reached.
    waypoint_time: Vec<f64>,
    config: TrajectoryConfig,
}

impl Trajectory {
    /// Builds a trajectory over `path`.
    ///
    /// # Errors
    ///
    /// Returns [`PlanningError::InvalidConfig`] when the path has fewer than
    /// two waypoints or the speeds are non-positive.
    pub fn from_path(path: &Path, config: TrajectoryConfig) -> Result<Self, PlanningError> {
        if path.is_empty() {
            return Err(PlanningError::InvalidConfig {
                reason: "trajectory needs at least two waypoints".to_string(),
            });
        }
        if config.cruise_speed <= 0.0 || config.corner_speed <= 0.0 {
            return Err(PlanningError::InvalidConfig {
                reason: "speeds must be positive".to_string(),
            });
        }
        let waypoints = path.waypoints.clone();
        let n = waypoints.len();

        // Corner angle at each interior waypoint.
        let mut corner_angle = vec![0.0f64; n];
        for i in 1..n - 1 {
            let a = (waypoints[i] - waypoints[i - 1]).normalized();
            let b = (waypoints[i + 1] - waypoints[i]).normalized();
            if let (Some(a), Some(b)) = (a, b) {
                corner_angle[i] = a.dot(b).clamp(-1.0, 1.0).acos();
            }
        }

        // Segment speeds: slow down when either end is a sharp corner.
        let mut segment_speed = Vec::with_capacity(n - 1);
        for i in 0..n - 1 {
            let sharp = corner_angle[i].max(corner_angle[i + 1]);
            let speed = if sharp >= config.sharp_corner_angle {
                config.corner_speed
            } else {
                // Interpolate between cruise and corner speed.
                let t = (sharp / config.sharp_corner_angle).clamp(0.0, 1.0);
                config.cruise_speed * (1.0 - t) + config.corner_speed * t
            };
            segment_speed.push(speed.max(config.corner_speed.min(config.cruise_speed)));
        }

        let mut cumulative = vec![0.0f64; n];
        let mut waypoint_time = vec![0.0f64; n];
        for i in 1..n {
            let length = waypoints[i - 1].distance(waypoints[i]);
            cumulative[i] = cumulative[i - 1] + length;
            waypoint_time[i] = waypoint_time[i - 1] + length / segment_speed[i - 1];
        }

        Ok(Self {
            waypoints,
            cumulative,
            segment_speed,
            waypoint_time,
            config,
        })
    }

    /// Total duration, seconds.
    pub fn duration(&self) -> f64 {
        *self.waypoint_time.last().unwrap_or(&0.0)
    }

    /// Total length, metres.
    pub fn length(&self) -> f64 {
        *self.cumulative.last().unwrap_or(&0.0)
    }

    /// The generation parameters.
    pub fn config(&self) -> &TrajectoryConfig {
        &self.config
    }

    /// The underlying waypoints.
    pub fn waypoints(&self) -> &[Vec3] {
        &self.waypoints
    }

    /// The final waypoint.
    pub fn goal(&self) -> Vec3 {
        *self.waypoints.last().expect("trajectory has waypoints")
    }

    /// Samples the setpoint at time `t` seconds (clamped to the duration).
    pub fn sample(&self, t: f64) -> TrajectorySample {
        let t = t.clamp(0.0, self.duration());
        // Find the active segment.
        let mut segment = 0;
        while segment + 1 < self.waypoint_time.len() - 1 && self.waypoint_time[segment + 1] <= t {
            segment += 1;
        }
        let t0 = self.waypoint_time[segment];
        let t1 = self.waypoint_time[segment + 1];
        let frac = if t1 > t0 { (t - t0) / (t1 - t0) } else { 1.0 };
        let a = self.waypoints[segment];
        let b = self.waypoints[segment + 1];
        let position = a.lerp(b, frac);
        let velocity = (b - a)
            .normalized()
            .map(|dir| dir * self.segment_speed[segment])
            .unwrap_or(Vec3::ZERO);
        TrajectorySample {
            position,
            velocity,
            arc_length: self.cumulative[segment]
                + (self.cumulative[segment + 1] - self.cumulative[segment]) * frac,
        }
    }

    /// `true` once `t` has passed the end of the trajectory.
    pub fn finished(&self, t: f64) -> bool {
        t >= self.duration()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l_shaped_path() -> Path {
        Path::new(vec![
            Vec3::ZERO,
            Vec3::new(10.0, 0.0, 0.0),
            Vec3::new(10.0, 10.0, 0.0),
        ])
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(
            Trajectory::from_path(&Path::new(vec![Vec3::ZERO]), TrajectoryConfig::default())
                .is_err()
        );
        let cfg = TrajectoryConfig {
            cruise_speed: 0.0,
            ..TrajectoryConfig::default()
        };
        assert!(Trajectory::from_path(&l_shaped_path(), cfg).is_err());
    }

    #[test]
    fn start_and_end_match_the_path() {
        let traj = Trajectory::from_path(&l_shaped_path(), TrajectoryConfig::default()).unwrap();
        assert_eq!(traj.sample(0.0).position, Vec3::ZERO);
        let end = traj.sample(traj.duration());
        assert!(end.position.distance(Vec3::new(10.0, 10.0, 0.0)) < 1e-9);
        assert!(traj.finished(traj.duration() + 0.1));
        assert!(!traj.finished(traj.duration() * 0.5));
        assert!((traj.length() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn sharp_corner_slows_the_trajectory_down() {
        let straight = Path::straight_line(Vec3::ZERO, Vec3::new(20.0, 0.0, 0.0));
        let cfg = TrajectoryConfig::default();
        let straight_traj = Trajectory::from_path(&straight, cfg).unwrap();
        let corner_traj = Trajectory::from_path(&l_shaped_path(), cfg).unwrap();
        // Same total length (20 m) but the cornered path takes longer.
        assert!(corner_traj.duration() > straight_traj.duration() * 1.5);
        // Velocity magnitude near the corner is the corner speed.
        let corner_time = corner_traj.waypoint_time[1];
        let v = corner_traj.sample(corner_time - 0.1).velocity.norm();
        assert!((v - cfg.corner_speed).abs() < 0.5, "corner speed {v}");
    }

    #[test]
    fn samples_progress_monotonically() {
        let traj = Trajectory::from_path(&l_shaped_path(), TrajectoryConfig::default()).unwrap();
        let mut prev = -1.0;
        let mut t = 0.0;
        while t <= traj.duration() {
            let s = traj.sample(t);
            assert!(s.arc_length >= prev - 1e-9);
            prev = s.arc_length;
            t += 0.1;
        }
    }

    #[test]
    fn sampling_beyond_duration_clamps_to_goal() {
        let traj = Trajectory::from_path(&l_shaped_path(), TrajectoryConfig::default()).unwrap();
        let s = traj.sample(traj.duration() + 100.0);
        assert!(s.position.distance(traj.goal()) < 1e-9);
    }
}
