//! Bounded-pool grid A* (the EGO-Planner-style front end of MLS-V2).
//!
//! The planner searches a 26-connected voxel lattice at a configurable
//! resolution. Two design choices intentionally mirror the paper's V2
//! system and its documented weaknesses:
//!
//! * the open/closed sets are capped at [`AStarConfig::max_expansions`]
//!   ("the A* algorithm often failed to find viable solutions within the
//!   constraints of the search pool size"), so a large building between the
//!   start and the goal exhausts the pool and the query fails;
//! * `Unknown` space is treated as traversable, so paths can cut through
//!   volumes the local map has simply never observed — which is how V2 ends
//!   up inside tree canopies.

use std::collections::{BinaryHeap, HashMap};

use mls_geom::{Vec3, VoxelIndex};
use mls_mapping::{CellState, OccupancyQuery};
use serde::{Deserialize, Serialize};

use crate::{Path, PathPlanner, PlanOutcome, PlanningError};

/// Configuration of the A* planner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AStarConfig {
    /// Lattice resolution, metres (usually a small multiple of the map
    /// resolution).
    pub resolution: f64,
    /// Maximum number of node expansions before the search gives up — the
    /// "search pool" bound.
    pub max_expansions: usize,
    /// Obstacle inflation radius applied at every lattice node, metres.
    pub inflation_radius: f64,
    /// Treat unknown cells as free (optimistic, V2 behaviour) or as occupied
    /// (conservative).
    pub optimistic_unknown: bool,
    /// Minimum flight altitude of planned nodes, metres.
    pub min_altitude: f64,
    /// Maximum flight altitude of planned nodes, metres.
    pub max_altitude: f64,
    /// Tolerance for reaching the goal, metres.
    pub goal_tolerance: f64,
}

impl Default for AStarConfig {
    fn default() -> Self {
        Self {
            resolution: 0.8,
            max_expansions: 6_000,
            inflation_radius: 0.8,
            optimistic_unknown: true,
            min_altitude: 1.0,
            max_altitude: 30.0,
            goal_tolerance: 1.2,
        }
    }
}

impl AStarConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PlanningError::InvalidConfig`] for non-positive resolution or
    /// an empty expansion budget.
    pub fn validate(&self) -> Result<(), PlanningError> {
        if self.resolution <= 0.0 {
            return Err(PlanningError::InvalidConfig {
                reason: "resolution must be positive".to_string(),
            });
        }
        if self.max_expansions == 0 {
            return Err(PlanningError::InvalidConfig {
                reason: "max_expansions must be at least 1".to_string(),
            });
        }
        if self.min_altitude >= self.max_altitude {
            return Err(PlanningError::InvalidConfig {
                reason: "min_altitude must be below max_altitude".to_string(),
            });
        }
        Ok(())
    }
}

/// Grid A* planner.
#[derive(Debug, Clone)]
pub struct AStarPlanner {
    config: AStarConfig,
    budget_scale: f64,
}

impl AStarPlanner {
    /// Creates a planner with the default configuration.
    pub fn new() -> Self {
        Self::with_config(AStarConfig::default())
    }

    /// Creates a planner with an explicit configuration.
    pub fn with_config(config: AStarConfig) -> Self {
        Self {
            config,
            budget_scale: 1.0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &AStarConfig {
        &self.config
    }

    /// The expansion budget for the next query, after budget scaling.
    pub fn effective_budget(&self) -> usize {
        ((self.config.max_expansions as f64 * self.budget_scale).floor() as usize).max(1)
    }

    fn node_blocked(&self, map: &dyn OccupancyQuery, point: Vec3) -> bool {
        if point.z < self.config.min_altitude || point.z > self.config.max_altitude {
            return true;
        }
        match map.state_at(point) {
            CellState::Occupied => true,
            CellState::Unknown if !self.config.optimistic_unknown => true,
            _ => map.occupied_within(
                point,
                self.config.inflation_radius,
                !self.config.optimistic_unknown,
            ),
        }
    }
}

impl Default for AStarPlanner {
    fn default() -> Self {
        Self::new()
    }
}

/// Open-set entry ordered by lowest f-cost.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OpenEntry {
    f_cost: f64,
    index: VoxelIndex,
}

impl Eq for OpenEntry {}

impl Ord for OpenEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the lowest f-cost first.
        other
            .f_cost
            .partial_cmp(&self.f_cost)
            .unwrap_or(std::cmp::Ordering::Equal)
    }
}

impl PartialOrd for OpenEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl PathPlanner for AStarPlanner {
    fn plan(
        &mut self,
        map: &dyn OccupancyQuery,
        start: Vec3,
        goal: Vec3,
    ) -> Result<PlanOutcome, PlanningError> {
        self.config.validate()?;
        let res = self.config.resolution;
        if self.node_blocked(map, start) {
            return Err(PlanningError::InvalidEndpoint { endpoint: "start" });
        }
        if self.node_blocked(map, goal) {
            return Err(PlanningError::InvalidEndpoint { endpoint: "goal" });
        }

        let start_index = VoxelIndex::from_point(start, res);
        let goal_index = VoxelIndex::from_point(goal, res);

        let mut open = BinaryHeap::new();
        let mut g_cost: HashMap<VoxelIndex, f64> = HashMap::new();
        let mut parent: HashMap<VoxelIndex, VoxelIndex> = HashMap::new();
        g_cost.insert(start_index, 0.0);
        open.push(OpenEntry {
            f_cost: start.distance(goal),
            index: start_index,
        });

        let budget = self.effective_budget();
        let mut expansions = 0usize;
        while let Some(OpenEntry { index, .. }) = open.pop() {
            expansions += 1;
            if expansions > budget {
                return Err(PlanningError::NoPathFound {
                    reason: "search pool exhausted".to_string(),
                    iterations: expansions,
                });
            }
            let center = index.center(res);
            if index == goal_index || center.distance(goal) <= self.config.goal_tolerance {
                // Reconstruct.
                let mut waypoints = vec![goal];
                let mut cursor = index;
                while cursor != start_index {
                    waypoints.push(cursor.center(res));
                    cursor = parent[&cursor];
                }
                waypoints.push(start);
                waypoints.reverse();
                return Ok(PlanOutcome {
                    path: Path::new(waypoints).simplified(),
                    iterations: expansions,
                });
            }

            let current_g = g_cost[&index];
            for neighbor in index.all_neighbors() {
                let neighbor_center = neighbor.center(res);
                if self.node_blocked(map, neighbor_center) {
                    continue;
                }
                let step = center.distance(neighbor_center);
                let tentative = current_g + step;
                if g_cost
                    .get(&neighbor)
                    .map(|&g| tentative < g)
                    .unwrap_or(true)
                {
                    g_cost.insert(neighbor, tentative);
                    parent.insert(neighbor, index);
                    open.push(OpenEntry {
                        f_cost: tentative + neighbor_center.distance(goal),
                        index: neighbor,
                    });
                }
            }
        }

        Err(PlanningError::NoPathFound {
            reason: "open set exhausted (goal unreachable)".to_string(),
            iterations: expansions,
        })
    }

    fn name(&self) -> &str {
        "astar"
    }

    fn set_budget_scale(&mut self, scale: f64) {
        self.budget_scale = if scale.is_finite() {
            scale.clamp(0.0, 1.0)
        } else {
            1.0
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mls_mapping::{VoxelGridConfig, VoxelGridMap};

    /// Builds a local grid with a wall of the given width/height in front of
    /// the start.
    fn wall_world(width: f64, height: f64) -> VoxelGridMap {
        let mut grid = VoxelGridMap::new(VoxelGridConfig {
            resolution: 0.4,
            half_extent_xy: 25.0,
            height: 26.0,
            carve_free_space: false,
            max_range: 100.0,
        })
        .unwrap();
        let mut y = -width / 2.0;
        while y <= width / 2.0 {
            let mut z = 0.2;
            while z <= height {
                grid.mark_occupied(Vec3::new(10.0, y, z));
                grid.mark_occupied(Vec3::new(10.4, y, z));
                z += 0.4;
            }
            y += 0.4;
        }
        grid
    }

    #[test]
    fn plans_straight_in_free_space() {
        let grid = VoxelGridMap::new(VoxelGridConfig::default()).unwrap();
        let mut planner = AStarPlanner::new();
        let outcome = planner
            .plan(&grid, Vec3::new(0.0, 0.0, 5.0), Vec3::new(12.0, 0.0, 5.0))
            .unwrap();
        assert!(outcome.path.length() < 14.0);
        assert!(outcome.iterations < 200);
        assert_eq!(planner.name(), "astar");
    }

    #[test]
    fn routes_around_a_small_wall() {
        let grid = wall_world(6.0, 8.0);
        let mut planner = AStarPlanner::new();
        let start = Vec3::new(0.0, 0.0, 5.0);
        let goal = Vec3::new(20.0, 0.0, 5.0);
        let outcome = planner.plan(&grid, start, goal).unwrap();
        // The path must detour: longer than the straight line.
        assert!(outcome.path.length() > 20.5);
        // And it must not pass through the wall.
        assert!(
            !grid.segment_blocked(start, outcome.path.waypoints[1], 0.2, false)
                || outcome.path.len() > 2
        );
        for pair in outcome.path.waypoints.windows(2) {
            assert!(
                !grid.segment_blocked(pair[0], pair[1], 0.2, false),
                "segment {pair:?} crosses the wall"
            );
        }
    }

    #[test]
    fn budget_scale_starves_an_otherwise_solvable_query() {
        let grid = wall_world(6.0, 8.0);
        let start = Vec3::new(0.0, 0.0, 5.0);
        let goal = Vec3::new(20.0, 0.0, 5.0);
        let mut planner = AStarPlanner::new();
        assert_eq!(planner.effective_budget(), planner.config().max_expansions);
        planner.plan(&grid, start, goal).unwrap();
        // Starved to 1% of the pool, the same query exhausts.
        planner.set_budget_scale(0.01);
        assert_eq!(planner.effective_budget(), 60);
        let err = planner.plan(&grid, start, goal).unwrap_err();
        assert!(matches!(err, PlanningError::NoPathFound { .. }));
        // Restoring the scale restores the query.
        planner.set_budget_scale(1.0);
        planner.plan(&grid, start, goal).unwrap();
        // Degenerate scales clamp instead of zeroing the budget.
        planner.set_budget_scale(0.0);
        assert_eq!(planner.effective_budget(), 1);
        planner.set_budget_scale(f64::NAN);
        assert_eq!(planner.effective_budget(), planner.config().max_expansions);
    }

    #[test]
    fn large_building_exhausts_the_search_pool() {
        // The V2 failure: a wall much larger than the search pool can
        // circumnavigate within its expansion budget.
        let grid = wall_world(40.0, 24.0);
        let mut planner = AStarPlanner::with_config(AStarConfig {
            max_expansions: 1_500,
            ..AStarConfig::default()
        });
        let err = planner
            .plan(&grid, Vec3::new(0.0, 0.0, 5.0), Vec3::new(20.0, 0.0, 5.0))
            .unwrap_err();
        assert!(matches!(err, PlanningError::NoPathFound { .. }));
        assert!(err.to_string().contains("pool"));
    }

    #[test]
    fn plans_through_unknown_space_when_optimistic() {
        // Completely unobserved map: the optimistic planner sails through it,
        // the conservative one refuses.
        let grid = VoxelGridMap::new(VoxelGridConfig::default()).unwrap();
        let start = Vec3::new(0.0, 0.0, 5.0);
        let goal = Vec3::new(10.0, 0.0, 5.0);
        let mut optimistic = AStarPlanner::new();
        assert!(optimistic.plan(&grid, start, goal).is_ok());
        let mut conservative = AStarPlanner::with_config(AStarConfig {
            optimistic_unknown: false,
            ..AStarConfig::default()
        });
        assert!(conservative.plan(&grid, start, goal).is_err());
    }

    #[test]
    fn blocked_endpoints_are_rejected() {
        let mut grid = wall_world(4.0, 8.0);
        grid.mark_occupied(Vec3::new(0.0, 0.0, 5.0));
        let mut planner = AStarPlanner::new();
        let err = planner
            .plan(&grid, Vec3::new(0.0, 0.0, 5.0), Vec3::new(20.0, 0.0, 5.0))
            .unwrap_err();
        assert!(matches!(
            err,
            PlanningError::InvalidEndpoint { endpoint: "start" }
        ));
    }

    #[test]
    fn altitude_bounds_are_respected() {
        let grid = VoxelGridMap::new(VoxelGridConfig::default()).unwrap();
        let mut planner = AStarPlanner::new();
        let outcome = planner
            .plan(&grid, Vec3::new(0.0, 0.0, 5.0), Vec3::new(8.0, 0.0, 5.0))
            .unwrap();
        for w in &outcome.path.waypoints {
            assert!(w.z >= 1.0 - 1e-9 && w.z <= 30.0 + 1e-9);
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let cfg = AStarConfig {
            resolution: 0.0,
            ..AStarConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = AStarConfig {
            max_expansions: 0,
            ..AStarConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = AStarConfig {
            min_altitude: 50.0,
            ..AStarConfig::default()
        };
        assert!(cfg.validate().is_err());
        assert!(AStarConfig::default().validate().is_ok());
    }
}
