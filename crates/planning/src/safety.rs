//! Safety checks applied by the decision-making module before committing to a
//! trajectory and during the landing descent.
//!
//! These are the knobs behind the paper's safety/availability trade-off
//! (§III-D): larger clearances and stricter corridor checks abort more
//! landings in clutter (lower availability) but collide less (higher safety).
//! The Fig. 6 harness sweeps the inflation radius through these functions to
//! show how aggressive inflation "swallows" the free space next to buildings.

use mls_geom::Vec3;
use mls_mapping::OccupancyQuery;
use serde::{Deserialize, Serialize};

use crate::Path;

/// Safety-check configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SafetyConfig {
    /// Required clearance around the vehicle along planned paths, metres.
    pub path_clearance: f64,
    /// Required clearance around the descent corridor, metres.
    pub descent_clearance: f64,
    /// Treat unknown cells as obstacles during the final descent.
    pub conservative_descent: bool,
    /// Maximum acceptable sharpest corner in a committed path, radians.
    pub max_corner_angle: f64,
}

impl Default for SafetyConfig {
    fn default() -> Self {
        Self {
            path_clearance: 0.9,
            descent_clearance: 1.2,
            conservative_descent: false,
            max_corner_angle: 2.6,
        }
    }
}

/// Outcome of validating a path or corridor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SafetyVerdict {
    /// The path / corridor satisfies every check.
    Safe,
    /// A segment of the path intersects (inflated) occupied space.
    PathBlocked {
        /// Index of the first offending segment.
        segment: usize,
    },
    /// The descent corridor to the ground is not clear.
    CorridorBlocked,
    /// The path contains a corner sharper than the configured limit.
    CornerTooSharp {
        /// The sharpest corner found, radians.
        angle: f64,
    },
}

impl SafetyVerdict {
    /// `true` for [`SafetyVerdict::Safe`].
    pub fn is_safe(&self) -> bool {
        matches!(self, SafetyVerdict::Safe)
    }
}

/// Validates a planned path against the map.
pub fn validate_path(
    map: &dyn OccupancyQuery,
    path: &Path,
    config: &SafetyConfig,
) -> SafetyVerdict {
    let sharpest = path.sharpest_corner();
    if sharpest > config.max_corner_angle {
        return SafetyVerdict::CornerTooSharp { angle: sharpest };
    }
    for (i, pair) in path.waypoints.windows(2).enumerate() {
        if map.segment_blocked(pair[0], pair[1], config.path_clearance, false) {
            return SafetyVerdict::PathBlocked { segment: i };
        }
    }
    SafetyVerdict::Safe
}

/// Validates the vertical descent corridor from `from` down to `ground`.
pub fn validate_descent_corridor(
    map: &dyn OccupancyQuery,
    from: Vec3,
    ground: Vec3,
    config: &SafetyConfig,
) -> SafetyVerdict {
    // The corridor must stay clear all the way down (excluding the last half
    // metre above the pad, which the vehicle itself will occupy).
    let end = Vec3::new(ground.x, ground.y, ground.z + 0.5);
    if map.segment_blocked(
        from,
        end,
        config.descent_clearance,
        config.conservative_descent,
    ) {
        SafetyVerdict::CorridorBlocked
    } else {
        SafetyVerdict::Safe
    }
}

/// Fraction of candidate descent positions around `center` (radius `radius`,
/// eight compass offsets plus the centre) whose corridor down to the ground
/// is clear — the metric the Fig. 6 inflation sweep reports.
pub fn descent_availability(
    map: &dyn OccupancyQuery,
    center: Vec3,
    radius: f64,
    from_altitude: f64,
    config: &SafetyConfig,
) -> f64 {
    let mut offsets = vec![Vec3::ZERO];
    for i in 0..8 {
        let angle = i as f64 * std::f64::consts::FRAC_PI_4;
        offsets.push(Vec3::new(angle.cos() * radius, angle.sin() * radius, 0.0));
    }
    let clear = offsets
        .iter()
        .filter(|offset| {
            let ground = center + **offset;
            let from = Vec3::new(ground.x, ground.y, from_altitude);
            validate_descent_corridor(map, from, ground, config).is_safe()
        })
        .count();
    clear as f64 / offsets.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use mls_mapping::{VoxelGridConfig, VoxelGridMap};

    fn map_with_wall() -> VoxelGridMap {
        let mut grid = VoxelGridMap::new(VoxelGridConfig {
            resolution: 0.4,
            half_extent_xy: 20.0,
            height: 20.0,
            carve_free_space: false,
            max_range: 100.0,
        })
        .unwrap();
        for y in -10..=10 {
            for z in 0..20 {
                grid.mark_occupied(Vec3::new(8.0, y as f64 * 0.4, z as f64 * 0.4));
            }
        }
        grid
    }

    #[test]
    fn clear_path_is_safe() {
        let grid = map_with_wall();
        let path = Path::straight_line(Vec3::new(0.0, 0.0, 5.0), Vec3::new(5.0, 0.0, 5.0));
        assert!(validate_path(&grid, &path, &SafetyConfig::default()).is_safe());
    }

    #[test]
    fn path_through_wall_is_blocked() {
        let grid = map_with_wall();
        let path = Path::straight_line(Vec3::new(0.0, 0.0, 5.0), Vec3::new(15.0, 0.0, 5.0));
        assert_eq!(
            validate_path(&grid, &path, &SafetyConfig::default()),
            SafetyVerdict::PathBlocked { segment: 0 }
        );
    }

    #[test]
    fn hairpin_corners_are_rejected() {
        let grid = VoxelGridMap::new(VoxelGridConfig::default()).unwrap();
        let path = Path::new(vec![
            Vec3::new(0.0, 0.0, 5.0),
            Vec3::new(10.0, 0.0, 5.0),
            Vec3::new(0.5, 0.1, 5.0),
        ]);
        let verdict = validate_path(&grid, &path, &SafetyConfig::default());
        assert!(matches!(verdict, SafetyVerdict::CornerTooSharp { .. }));
        assert!(!verdict.is_safe());
    }

    #[test]
    fn descent_corridor_near_wall_depends_on_clearance() {
        let grid = map_with_wall();
        // A pad 1.5 m from the wall face: clear with a small clearance,
        // swallowed by a large one (the Fig. 6 effect).
        let ground = Vec3::new(6.3, 0.0, 0.0);
        let from = Vec3::new(6.3, 0.0, 10.0);
        let tight = SafetyConfig {
            descent_clearance: 0.5,
            ..SafetyConfig::default()
        };
        let wide = SafetyConfig {
            descent_clearance: 2.5,
            ..SafetyConfig::default()
        };
        assert!(validate_descent_corridor(&grid, from, ground, &tight).is_safe());
        assert_eq!(
            validate_descent_corridor(&grid, from, ground, &wide),
            SafetyVerdict::CorridorBlocked
        );
    }

    #[test]
    fn availability_decreases_with_inflation_radius() {
        let grid = map_with_wall();
        let center = Vec3::new(5.0, 0.0, 0.0);
        let small = descent_availability(
            &grid,
            center,
            2.0,
            10.0,
            &SafetyConfig {
                descent_clearance: 0.4,
                ..SafetyConfig::default()
            },
        );
        let large = descent_availability(
            &grid,
            center,
            2.0,
            10.0,
            &SafetyConfig {
                descent_clearance: 2.8,
                ..SafetyConfig::default()
            },
        );
        assert!(small > large, "small {small} vs large {large}");
        assert!(small > 0.5);
    }

    #[test]
    fn conservative_descent_blocks_unknown_space() {
        // A completely unobserved map: optimistic descent is "clear",
        // conservative descent refuses.
        let grid = VoxelGridMap::new(VoxelGridConfig::default()).unwrap();
        let ground = Vec3::new(0.0, 0.0, 0.0);
        let from = Vec3::new(0.0, 0.0, 8.0);
        let optimistic = SafetyConfig::default();
        let conservative = SafetyConfig {
            conservative_descent: true,
            ..SafetyConfig::default()
        };
        assert!(validate_descent_corridor(&grid, from, ground, &optimistic).is_safe());
        assert_eq!(
            validate_descent_corridor(&grid, from, ground, &conservative),
            SafetyVerdict::CorridorBlocked
        );
    }
}
