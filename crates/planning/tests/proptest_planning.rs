//! Property-based tests of the planners: any returned path is collision-free
//! with respect to the map it was planned against, connects the endpoints,
//! and stays within the altitude band.

use mls_geom::Vec3;
use mls_mapping::{OccupancyQuery, OctreeConfig, OctreeMap};
use mls_planning::{AStarPlanner, PathPlanner, RrtStarConfig, RrtStarPlanner};
use proptest::prelude::*;

/// Builds an octree containing a handful of solid pillars.
fn world_with_pillars(pillars: &[(f64, f64)]) -> OctreeMap {
    let mut tree = OctreeMap::new(OctreeConfig {
        resolution: 0.4,
        half_extent: 64.0,
        ..OctreeConfig::default()
    })
    .unwrap();
    for &(x, y) in pillars {
        for dz in 0..40 {
            for (dx, dy) in [(0.0, 0.0), (0.4, 0.0), (0.0, 0.4), (0.4, 0.4)] {
                tree.mark_occupied(Vec3::new(x + dx, y + dy, dz as f64 * 0.4));
            }
        }
    }
    tree
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// RRT* paths over randomly cluttered worlds are connected, collision
    /// free (against the planning map) and respect the altitude band.
    #[test]
    fn rrt_star_paths_are_safe_and_connected(
        pillars in prop::collection::vec((6.0f64..22.0, -10.0f64..10.0), 0..10),
        goal_y in -8.0f64..8.0,
        seed in 0u64..500,
    ) {
        let world = world_with_pillars(&pillars);
        let start = Vec3::new(0.0, 0.0, 5.0);
        let goal = Vec3::new(28.0, goal_y, 6.0);
        prop_assume!(!world.occupied_within(goal, 1.0, false));
        let mut planner = RrtStarPlanner::with_config(RrtStarConfig { seed, ..RrtStarConfig::default() });
        if let Ok(outcome) = planner.plan(&world, start, goal) {
            let path = &outcome.path;
            prop_assert!(path.waypoints[0].distance(start) < 1e-9);
            prop_assert!(path.goal().distance(goal) < 1e-9);
            for w in &path.waypoints {
                prop_assert!(w.z >= 1.0 - 1e-9 && w.z <= 30.0 + 1e-9);
            }
            for pair in path.waypoints.windows(2) {
                prop_assert!(
                    !world.segment_blocked(pair[0], pair[1], 0.3, false),
                    "edge {pair:?} collides with the planning map"
                );
            }
        }
    }

    /// A* in completely free space produces near-optimal paths (within 15 %
    /// of the straight-line distance) for any goal in range.
    #[test]
    fn astar_is_near_optimal_in_free_space(
        gx in 4.0f64..18.0,
        gy in -12.0f64..12.0,
        gz in 3.0f64..14.0,
    ) {
        let world = world_with_pillars(&[]);
        let start = Vec3::new(0.0, 0.0, 5.0);
        let goal = Vec3::new(gx, gy, gz);
        let mut planner = AStarPlanner::new();
        let outcome = planner.plan(&world, start, goal).unwrap();
        let straight = start.distance(goal);
        prop_assert!(outcome.path.length() <= straight * 1.15 + 1.5,
            "A* path {:.1} m vs straight {:.1} m", outcome.path.length(), straight);
    }
}
