//! Flight controller: mode machine, state estimator and control cascade.
//!
//! This module is the stand-in for the PX4 firmware on the paper's Pixhawk
//! 2.4.8 / Cuav X7+ flight controllers. It exposes the same abstractions the
//! companion computer uses over MAVLink: arming, take-off, offboard position
//! and velocity setpoints, landing, and an estimated local position that the
//! landing-system modules consume.

mod ekf;
mod pid;

pub use ekf::{Ekf, EkfConfig};
pub use pid::{Pid, PidConfig};

use mls_geom::{Attitude, Pose, Vec3};
use serde::{Deserialize, Serialize};

use crate::dynamics::ControlCommand;
use crate::sensors::{GpsFix, ImuSample};

/// Top-level flight mode of the autopilot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FlightMode {
    /// Motors off, on the ground.
    Disarmed,
    /// Climbing to the requested take-off altitude.
    Takeoff,
    /// Holding the captured position.
    Hold,
    /// Following offboard position or velocity setpoints from the companion
    /// computer.
    Offboard,
    /// Descending for touchdown.
    Landing,
}

/// Offboard setpoint styles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
enum Setpoint {
    Position { target: Vec3, yaw: f64 },
    Velocity { velocity: Vec3, yaw: f64 },
}

/// Gains and limits of the position/velocity cascade.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutopilotConfig {
    /// Estimator noise configuration.
    pub ekf: EkfConfig,
    /// Proportional gain from position error to velocity setpoint.
    pub position_gain: f64,
    /// Proportional gain from vertical position error to climb rate.
    pub vertical_position_gain: f64,
    /// Velocity-loop PID configuration (horizontal axes).
    pub velocity_pid: PidConfig,
    /// Velocity-loop PID configuration (vertical axis).
    pub vertical_velocity_pid: PidConfig,
    /// Cruise speed limit applied to the position loop, m/s.
    pub cruise_speed: f64,
    /// Climb/descent speed limit applied to the position loop, m/s.
    pub vertical_speed: f64,
    /// Descent rate commanded in [`FlightMode::Landing`], m/s.
    pub landing_descent_rate: f64,
    /// Climb rate commanded in [`FlightMode::Takeoff`], m/s.
    pub takeoff_climb_rate: f64,
    /// Altitude tolerance for declaring take-off complete, metres.
    pub takeoff_tolerance: f64,
}

impl Default for AutopilotConfig {
    fn default() -> Self {
        Self {
            ekf: EkfConfig::default(),
            position_gain: 0.9,
            vertical_position_gain: 1.0,
            velocity_pid: PidConfig::pid(1.6, 0.15, 0.05, 4.0, 1.0),
            vertical_velocity_pid: PidConfig::pid(2.0, 0.2, 0.05, 3.0, 1.0),
            cruise_speed: 5.0,
            vertical_speed: 2.0,
            landing_descent_rate: 0.7,
            takeoff_climb_rate: 1.5,
            takeoff_tolerance: 0.4,
        }
    }
}

/// The simulated flight controller.
#[derive(Debug, Clone)]
pub struct Autopilot {
    config: AutopilotConfig,
    mode: FlightMode,
    ekf: Ekf,
    attitude: Attitude,
    setpoint: Setpoint,
    takeoff_target: f64,
    hold_position: Vec3,
    vel_x: Pid,
    vel_y: Pid,
    vel_z: Pid,
}

impl Autopilot {
    /// Creates a disarmed autopilot initialised at `start`.
    pub fn new(config: AutopilotConfig, start: Vec3) -> Self {
        Self {
            mode: FlightMode::Disarmed,
            ekf: Ekf::new(config.ekf, start),
            attitude: Attitude::LEVEL,
            setpoint: Setpoint::Position {
                target: start,
                yaw: 0.0,
            },
            takeoff_target: 0.0,
            hold_position: start,
            vel_x: Pid::new(config.velocity_pid),
            vel_y: Pid::new(config.velocity_pid),
            vel_z: Pid::new(config.vertical_velocity_pid),
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &AutopilotConfig {
        &self.config
    }

    /// The current flight mode.
    pub fn mode(&self) -> FlightMode {
        self.mode
    }

    /// Estimated position (EKF output).
    pub fn estimated_position(&self) -> Vec3 {
        self.ekf.position()
    }

    /// Estimated velocity (EKF output).
    pub fn estimated_velocity(&self) -> Vec3 {
        self.ekf.velocity()
    }

    /// Estimated pose: EKF position combined with the attitude solution.
    pub fn estimated_pose(&self) -> Pose {
        Pose::new(self.ekf.position(), self.attitude)
    }

    /// 1σ horizontal position uncertainty, metres.
    pub fn position_uncertainty(&self) -> f64 {
        let s = self.ekf.position_sigma();
        s.xy().norm()
    }

    /// Arms the vehicle and starts a climb to `altitude` metres above the
    /// current estimate.
    pub fn arm_and_takeoff(&mut self, altitude: f64) {
        self.takeoff_target = self.ekf.position().z + altitude.max(0.5);
        self.hold_position = self.ekf.position();
        self.mode = FlightMode::Takeoff;
        self.reset_loops();
    }

    /// Switches to offboard control with a position setpoint.
    pub fn goto(&mut self, target: Vec3, yaw: f64) {
        self.setpoint = Setpoint::Position { target, yaw };
        if self.mode != FlightMode::Disarmed {
            self.mode = FlightMode::Offboard;
        }
    }

    /// Switches to offboard control with a velocity setpoint.
    pub fn set_velocity(&mut self, velocity: Vec3, yaw: f64) {
        self.setpoint = Setpoint::Velocity { velocity, yaw };
        if self.mode != FlightMode::Disarmed {
            self.mode = FlightMode::Offboard;
        }
    }

    /// Captures the current position and holds it.
    pub fn hold(&mut self) {
        if self.mode != FlightMode::Disarmed {
            self.hold_position = self.ekf.position();
            self.mode = FlightMode::Hold;
        }
    }

    /// Starts the final descent at the configured landing rate.
    pub fn land(&mut self) {
        if self.mode != FlightMode::Disarmed {
            self.hold_position = self.ekf.position();
            self.mode = FlightMode::Landing;
        }
    }

    /// Notifies the autopilot that the airframe reports ground contact; the
    /// autopilot disarms if it was landing.
    pub fn notify_touchdown(&mut self) {
        if matches!(self.mode, FlightMode::Landing) {
            self.mode = FlightMode::Disarmed;
        }
    }

    /// `true` when the estimated position is within `tolerance` of `target`.
    pub fn reached(&self, target: Vec3, tolerance: f64) -> bool {
        self.ekf.position().distance(target) <= tolerance
    }

    /// Feeds one IMU sample (runs the EKF prediction) plus whichever slower
    /// measurements arrived this tick.
    pub fn sense(
        &mut self,
        imu: &ImuSample,
        gps: Option<&GpsFix>,
        baro_altitude: Option<f64>,
        range_altitude: Option<f64>,
        dt: f64,
    ) {
        self.attitude = imu.attitude;
        self.ekf.predict(imu.linear_acceleration, dt);
        if let Some(fix) = gps {
            self.ekf
                .update_gps(fix.position, fix.velocity, fix.quality());
        }
        if let Some(alt) = baro_altitude {
            self.ekf.update_baro(alt);
        }
        if let Some(alt) = range_altitude {
            self.ekf.update_range(alt);
        }
    }

    /// Computes the acceleration command for the current mode and setpoints.
    pub fn control(&mut self, dt: f64) -> ControlCommand {
        let cfg = self.config;
        let position = self.ekf.position();
        let velocity = self.ekf.velocity();

        let (velocity_setpoint, yaw) = match self.mode {
            FlightMode::Disarmed => {
                return ControlCommand::hover(self.attitude.yaw);
            }
            FlightMode::Takeoff => {
                if position.z >= self.takeoff_target - cfg.takeoff_tolerance {
                    self.mode = FlightMode::Hold;
                    self.hold_position = Vec3::new(
                        self.hold_position.x,
                        self.hold_position.y,
                        self.takeoff_target,
                    );
                }
                let target = Vec3::new(
                    self.hold_position.x,
                    self.hold_position.y,
                    self.takeoff_target,
                );
                let mut v = self.position_loop(target, position);
                v.z = v.z.clamp(0.0, cfg.takeoff_climb_rate);
                (v, self.attitude.yaw)
            }
            FlightMode::Hold => (
                self.position_loop(self.hold_position, position),
                self.attitude.yaw,
            ),
            FlightMode::Offboard => match self.setpoint {
                Setpoint::Position { target, yaw } => (self.position_loop(target, position), yaw),
                Setpoint::Velocity { velocity, yaw } => (
                    Vec3::new(
                        velocity.x.clamp(-cfg.cruise_speed, cfg.cruise_speed),
                        velocity.y.clamp(-cfg.cruise_speed, cfg.cruise_speed),
                        velocity.z.clamp(-cfg.vertical_speed, cfg.vertical_speed),
                    ),
                    yaw,
                ),
            },
            FlightMode::Landing => {
                let mut v = self.position_loop(self.hold_position, position);
                v.z = -cfg.landing_descent_rate;
                (v, self.attitude.yaw)
            }
        };

        let acceleration = Vec3::new(
            self.vel_x.update(velocity_setpoint.x - velocity.x, dt),
            self.vel_y.update(velocity_setpoint.y - velocity.y, dt),
            self.vel_z.update(velocity_setpoint.z - velocity.z, dt),
        );
        ControlCommand { acceleration, yaw }
    }

    /// Position P-loop producing a limited velocity setpoint.
    fn position_loop(&self, target: Vec3, position: Vec3) -> Vec3 {
        let cfg = &self.config;
        let error = target - position;
        let horizontal = (error.horizontal() * cfg.position_gain).clamp_norm(cfg.cruise_speed);
        let vertical =
            (error.z * cfg.vertical_position_gain).clamp(-cfg.vertical_speed, cfg.vertical_speed);
        Vec3::new(horizontal.x, horizontal.y, vertical)
    }

    fn reset_loops(&mut self) {
        self.vel_x.reset();
        self.vel_y.reset();
        self.vel_z.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::{AirframeConfig, QuadrotorDynamics};
    use crate::sensors::{GpsFix, ImuSample};

    /// Closed-loop helper: perfect sensors, real dynamics.
    fn fly(autopilot: &mut Autopilot, dynamics: &mut QuadrotorDynamics, seconds: f64) {
        let dt = 0.02;
        let steps = (seconds / dt) as usize;
        for i in 0..steps {
            let state = *dynamics.state();
            let imu = ImuSample {
                linear_acceleration: state.acceleration,
                angular_rate: Vec3::ZERO,
                attitude: state.attitude,
            };
            let gps = GpsFix {
                position: state.position,
                velocity: state.velocity,
                hdop: 0.8,
                vdop: 1.2,
            };
            let baro = Some(state.position.z);
            autopilot.sense(&imu, (i % 10 == 0).then_some(&gps), baro, None, dt);
            let cmd = autopilot.control(dt);
            let new_state = dynamics.step(&cmd, Vec3::ZERO, 0.0, dt);
            if new_state.landed {
                autopilot.notify_touchdown();
            }
        }
    }

    #[test]
    fn takeoff_reaches_commanded_altitude() {
        let mut ap = Autopilot::new(AutopilotConfig::default(), Vec3::ZERO);
        let mut dyn_ = QuadrotorDynamics::new(AirframeConfig::default(), Vec3::ZERO);
        ap.arm_and_takeoff(10.0);
        fly(&mut ap, &mut dyn_, 20.0);
        assert_eq!(ap.mode(), FlightMode::Hold);
        assert!(
            (dyn_.state().position.z - 10.0).abs() < 1.0,
            "{:?}",
            dyn_.state().position
        );
    }

    #[test]
    fn offboard_position_setpoint_is_tracked() {
        let mut ap = Autopilot::new(AutopilotConfig::default(), Vec3::ZERO);
        let mut dyn_ = QuadrotorDynamics::new(AirframeConfig::default(), Vec3::ZERO);
        ap.arm_and_takeoff(8.0);
        fly(&mut ap, &mut dyn_, 15.0);
        let target = Vec3::new(20.0, -10.0, 12.0);
        ap.goto(target, 0.5);
        fly(&mut ap, &mut dyn_, 30.0);
        assert!(
            dyn_.state().position.distance(target) < 1.5,
            "{:?}",
            dyn_.state().position
        );
        assert!(ap.reached(target, 2.0));
    }

    #[test]
    fn velocity_setpoint_moves_vehicle() {
        let mut ap = Autopilot::new(AutopilotConfig::default(), Vec3::ZERO);
        let mut dyn_ = QuadrotorDynamics::new(AirframeConfig::default(), Vec3::ZERO);
        ap.arm_and_takeoff(6.0);
        fly(&mut ap, &mut dyn_, 12.0);
        ap.set_velocity(Vec3::new(2.0, 0.0, 0.0), 0.0);
        fly(&mut ap, &mut dyn_, 10.0);
        assert!(
            dyn_.state().position.x > 10.0,
            "{:?}",
            dyn_.state().position
        );
    }

    #[test]
    fn landing_descends_and_disarms_on_touchdown() {
        let mut ap = Autopilot::new(AutopilotConfig::default(), Vec3::ZERO);
        let mut dyn_ = QuadrotorDynamics::new(AirframeConfig::default(), Vec3::ZERO);
        ap.arm_and_takeoff(6.0);
        fly(&mut ap, &mut dyn_, 12.0);
        ap.land();
        fly(&mut ap, &mut dyn_, 30.0);
        assert_eq!(ap.mode(), FlightMode::Disarmed);
        assert!(dyn_.state().position.z < 0.05);
        assert!(dyn_.state().landed);
    }

    #[test]
    fn disarmed_vehicle_ignores_offboard_commands() {
        let mut ap = Autopilot::new(AutopilotConfig::default(), Vec3::ZERO);
        ap.goto(Vec3::new(5.0, 5.0, 5.0), 0.0);
        assert_eq!(ap.mode(), FlightMode::Disarmed);
        let cmd = ap.control(0.02);
        assert_eq!(cmd.acceleration, Vec3::ZERO);
    }

    #[test]
    fn hold_keeps_position_under_wind() {
        let mut ap = Autopilot::new(AutopilotConfig::default(), Vec3::ZERO);
        let mut dyn_ = QuadrotorDynamics::new(AirframeConfig::default(), Vec3::ZERO);
        ap.arm_and_takeoff(8.0);
        fly(&mut ap, &mut dyn_, 15.0);
        ap.hold();
        let hold_start = dyn_.state().position;
        // Wind pushes, the controller corrects.
        let dt = 0.02;
        for i in 0..1500 {
            let state = *dyn_.state();
            let imu = ImuSample {
                linear_acceleration: state.acceleration,
                angular_rate: Vec3::ZERO,
                attitude: state.attitude,
            };
            let gps = GpsFix {
                position: state.position,
                velocity: state.velocity,
                hdop: 0.8,
                vdop: 1.2,
            };
            ap.sense(
                &imu,
                (i % 10 == 0).then_some(&gps),
                Some(state.position.z),
                None,
                dt,
            );
            let cmd = ap.control(dt);
            dyn_.step(&cmd, Vec3::new(3.0, 1.0, 0.0), 0.0, dt);
        }
        assert!(
            dyn_.state().position.horizontal_distance(hold_start) < 1.5,
            "hold drift {:?}",
            dyn_.state().position
        );
    }

    #[test]
    fn estimated_pose_follows_estimate_not_truth() {
        let mut ap = Autopilot::new(AutopilotConfig::default(), Vec3::ZERO);
        // Feed a GPS fix far from the truth: the estimate moves toward it.
        let imu = ImuSample {
            linear_acceleration: Vec3::ZERO,
            angular_rate: Vec3::ZERO,
            attitude: Attitude::LEVEL,
        };
        let fix = GpsFix {
            position: Vec3::new(4.0, 0.0, 0.0),
            velocity: Vec3::ZERO,
            hdop: 1.0,
            vdop: 1.0,
        };
        for _ in 0..100 {
            ap.sense(&imu, Some(&fix), None, None, 0.02);
        }
        assert!(ap.estimated_pose().position.x > 2.0);
        assert!(ap.position_uncertainty() < 2.0);
    }
}
