//! Scalar PID controller with output limiting and anti-windup, the building
//! block of the cascaded position/velocity controller (the role PX4's
//! multicopter position controller plays on the paper's vehicles).

use serde::{Deserialize, Serialize};

/// Gains and limits of a scalar PID loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PidConfig {
    /// Proportional gain.
    pub kp: f64,
    /// Integral gain.
    pub ki: f64,
    /// Derivative gain.
    pub kd: f64,
    /// Symmetric output limit (absolute value).
    pub output_limit: f64,
    /// Symmetric integral-term limit (anti-windup).
    pub integral_limit: f64,
}

impl PidConfig {
    /// A proportional-only controller.
    pub fn p(kp: f64, output_limit: f64) -> Self {
        Self {
            kp,
            ki: 0.0,
            kd: 0.0,
            output_limit,
            integral_limit: 0.0,
        }
    }

    /// A PD controller.
    pub fn pd(kp: f64, kd: f64, output_limit: f64) -> Self {
        Self {
            kp,
            ki: 0.0,
            kd,
            output_limit,
            integral_limit: 0.0,
        }
    }

    /// A full PID controller.
    pub fn pid(kp: f64, ki: f64, kd: f64, output_limit: f64, integral_limit: f64) -> Self {
        Self {
            kp,
            ki,
            kd,
            output_limit,
            integral_limit,
        }
    }
}

/// A stateful scalar PID loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pid {
    config: PidConfig,
    integral: f64,
    previous_error: Option<f64>,
}

impl Pid {
    /// Creates a PID loop with zeroed state.
    pub fn new(config: PidConfig) -> Self {
        Self {
            config,
            integral: 0.0,
            previous_error: None,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &PidConfig {
        &self.config
    }

    /// Resets the integral and derivative memory.
    pub fn reset(&mut self) {
        self.integral = 0.0;
        self.previous_error = None;
    }

    /// Advances the loop with the current `error` over `dt` seconds and
    /// returns the limited output.
    pub fn update(&mut self, error: f64, dt: f64) -> f64 {
        let dt = dt.max(1e-6);
        let cfg = self.config;
        self.integral =
            (self.integral + error * dt * cfg.ki).clamp(-cfg.integral_limit, cfg.integral_limit);
        let derivative = match self.previous_error {
            Some(prev) => (error - prev) / dt,
            None => 0.0,
        };
        self.previous_error = Some(error);
        let output = cfg.kp * error + self.integral + cfg.kd * derivative;
        output.clamp(-cfg.output_limit, cfg.output_limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportional_response_is_linear_until_limit() {
        let mut pid = Pid::new(PidConfig::p(2.0, 5.0));
        assert!((pid.update(1.0, 0.02) - 2.0).abs() < 1e-12);
        assert!((pid.update(10.0, 0.02) - 5.0).abs() < 1e-12, "limited");
        assert!((pid.update(-10.0, 0.02) + 5.0).abs() < 1e-12);
    }

    #[test]
    fn integral_winds_up_to_limit_only() {
        let mut pid = Pid::new(PidConfig::pid(0.0, 1.0, 0.0, 10.0, 0.5));
        for _ in 0..1000 {
            pid.update(1.0, 0.1);
        }
        let out = pid.update(1.0, 0.1);
        assert!(out <= 0.5 + 1e-9, "integral must be clamped, got {out}");
    }

    #[test]
    fn derivative_damps_fast_changes() {
        let mut pid = Pid::new(PidConfig::pd(1.0, 0.5, 100.0));
        pid.update(0.0, 0.1);
        let out = pid.update(1.0, 0.1);
        // P term 1.0 plus D term (1.0 - 0.0)/0.1 * 0.5 = 5.0.
        assert!((out - 6.0).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_memory() {
        let mut pid = Pid::new(PidConfig::pid(1.0, 1.0, 1.0, 100.0, 10.0));
        pid.update(5.0, 0.1);
        pid.update(3.0, 0.1);
        pid.reset();
        let out = pid.update(1.0, 0.1);
        // After reset the derivative term is zero and the integral restarts.
        assert!((out - (1.0 + 0.1)).abs() < 1e-9);
    }

    #[test]
    fn closed_loop_converges_on_first_order_plant() {
        // Plant: velocity follows commanded acceleration; PID drives position
        // to a setpoint.
        let mut pid = Pid::new(PidConfig::pd(1.2, 1.8, 4.0));
        let mut position = 0.0;
        let mut velocity = 0.0;
        let dt = 0.02;
        for _ in 0..2500 {
            let accel = pid.update(10.0 - position, dt);
            velocity += accel * dt;
            velocity *= 0.995;
            position += velocity * dt;
        }
        assert!((position - 10.0).abs() < 0.3, "position {position}");
    }
}
