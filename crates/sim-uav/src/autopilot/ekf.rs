//! State estimator fusing IMU, GNSS, barometer and rangefinder.
//!
//! PX4 runs a full 24-state EKF; the behaviours the paper's evaluation
//! depends on are much narrower: (a) the position/velocity estimate follows
//! the GNSS solution, so GNSS random-walk drift in poor weather corrupts the
//! estimate and with it the map and the landing accuracy (Fig. 5c/5d), and
//! (b) lower-grade IMUs (Pixhawk 2.4.8 vs Cuav X7+) produce noisier local
//! estimates. A decoupled per-axis Kalman filter over `[position, velocity]`
//! with acceleration as the control input captures both effects while staying
//! small enough to unit-test exhaustively.

use mls_geom::Vec3;
use serde::{Deserialize, Serialize};

/// Process / measurement noise configuration of the estimator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EkfConfig {
    /// Acceleration (process) noise density, m/s² per √Hz.
    pub accel_noise: f64,
    /// GNSS horizontal position noise, metres (1σ).
    pub gps_position_noise: f64,
    /// GNSS velocity noise, m/s (1σ).
    pub gps_velocity_noise: f64,
    /// Barometric altitude noise, metres (1σ).
    pub baro_noise: f64,
    /// Rangefinder altitude noise, metres (1σ).
    pub range_noise: f64,
    /// Initial position uncertainty, metres (1σ).
    pub initial_position_sigma: f64,
    /// Initial velocity uncertainty, m/s (1σ).
    pub initial_velocity_sigma: f64,
}

impl Default for EkfConfig {
    fn default() -> Self {
        Self {
            accel_noise: 0.35,
            gps_position_noise: 0.8,
            gps_velocity_noise: 0.25,
            baro_noise: 0.5,
            range_noise: 0.08,
            initial_position_sigma: 1.0,
            initial_velocity_sigma: 0.5,
        }
    }
}

/// Per-axis `[position, velocity]` Kalman filter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct AxisFilter {
    position: f64,
    velocity: f64,
    // Covariance [[p_pp, p_pv], [p_pv, p_vv]].
    p_pp: f64,
    p_pv: f64,
    p_vv: f64,
}

impl AxisFilter {
    fn new(position: f64, config: &EkfConfig) -> Self {
        Self {
            position,
            velocity: 0.0,
            p_pp: config.initial_position_sigma.powi(2),
            p_pv: 0.0,
            p_vv: config.initial_velocity_sigma.powi(2),
        }
    }

    fn predict(&mut self, accel: f64, dt: f64, accel_noise: f64) {
        self.position += self.velocity * dt + 0.5 * accel * dt * dt;
        self.velocity += accel * dt;
        // P = F P Fᵀ + Q with F = [[1, dt], [0, 1]].
        let p_pp = self.p_pp + 2.0 * dt * self.p_pv + dt * dt * self.p_vv;
        let p_pv = self.p_pv + dt * self.p_vv;
        let p_vv = self.p_vv;
        let q = accel_noise * accel_noise;
        self.p_pp = p_pp + 0.25 * dt.powi(4) * q;
        self.p_pv = p_pv + 0.5 * dt.powi(3) * q;
        self.p_vv = p_vv + dt * dt * q;
    }

    fn update_position(&mut self, measurement: f64, noise: f64) {
        let r = noise * noise;
        let s = self.p_pp + r;
        if s <= 0.0 {
            return;
        }
        let k_p = self.p_pp / s;
        let k_v = self.p_pv / s;
        let innovation = measurement - self.position;
        self.position += k_p * innovation;
        self.velocity += k_v * innovation;
        let p_pp = (1.0 - k_p) * self.p_pp;
        let p_pv = (1.0 - k_p) * self.p_pv;
        let p_vv = self.p_vv - k_v * self.p_pv;
        self.p_pp = p_pp;
        self.p_pv = p_pv;
        self.p_vv = p_vv;
    }

    fn update_velocity(&mut self, measurement: f64, noise: f64) {
        let r = noise * noise;
        let s = self.p_vv + r;
        if s <= 0.0 {
            return;
        }
        let k_p = self.p_pv / s;
        let k_v = self.p_vv / s;
        let innovation = measurement - self.velocity;
        self.position += k_p * innovation;
        self.velocity += k_v * innovation;
        let p_pp = self.p_pp - k_p * self.p_pv;
        let p_pv = (1.0 - k_v) * self.p_pv;
        let p_vv = (1.0 - k_v) * self.p_vv;
        self.p_pp = p_pp;
        self.p_pv = p_pv;
        self.p_vv = p_vv;
    }
}

/// Decoupled-axis position/velocity estimator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ekf {
    config: EkfConfig,
    x: AxisFilter,
    y: AxisFilter,
    z: AxisFilter,
}

impl Ekf {
    /// Creates an estimator initialised at `position` with zero velocity.
    pub fn new(config: EkfConfig, position: Vec3) -> Self {
        Self {
            config,
            x: AxisFilter::new(position.x, &config),
            y: AxisFilter::new(position.y, &config),
            z: AxisFilter::new(position.z, &config),
        }
    }

    /// The noise configuration.
    pub fn config(&self) -> &EkfConfig {
        &self.config
    }

    /// Estimated position.
    pub fn position(&self) -> Vec3 {
        Vec3::new(self.x.position, self.y.position, self.z.position)
    }

    /// Estimated velocity.
    pub fn velocity(&self) -> Vec3 {
        Vec3::new(self.x.velocity, self.y.velocity, self.z.velocity)
    }

    /// 1σ position uncertainty per axis.
    pub fn position_sigma(&self) -> Vec3 {
        Vec3::new(
            self.x.p_pp.max(0.0).sqrt(),
            self.y.p_pp.max(0.0).sqrt(),
            self.z.p_pp.max(0.0).sqrt(),
        )
    }

    /// Prediction step with the measured world-frame acceleration.
    pub fn predict(&mut self, accel: Vec3, dt: f64) {
        let q = self.config.accel_noise;
        self.x.predict(accel.x, dt, q);
        self.y.predict(accel.y, dt, q);
        self.z.predict(accel.z, dt, q);
    }

    /// GNSS position + velocity update. `quality` in `(0, 1]` scales the
    /// trusted noise (lower quality → measurements weighted less).
    pub fn update_gps(&mut self, position: Vec3, velocity: Vec3, quality: f64) {
        let quality = quality.clamp(0.05, 1.0);
        let pos_noise = self.config.gps_position_noise / quality;
        let vel_noise = self.config.gps_velocity_noise / quality;
        self.x.update_position(position.x, pos_noise);
        self.y.update_position(position.y, pos_noise);
        self.z.update_position(position.z, pos_noise * 1.5);
        self.x.update_velocity(velocity.x, vel_noise);
        self.y.update_velocity(velocity.y, vel_noise);
        self.z.update_velocity(velocity.z, vel_noise * 1.5);
    }

    /// Barometric altitude update.
    pub fn update_baro(&mut self, altitude: f64) {
        self.z.update_position(altitude, self.config.baro_noise);
    }

    /// Rangefinder altitude-above-ground update (only valid over flat ground
    /// within sensor range, which is how the landing phase uses it).
    pub fn update_range(&mut self, altitude: f64) {
        self.z.update_position(altitude, self.config.range_noise);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_to_static_truth_from_offset_start() {
        let mut ekf = Ekf::new(EkfConfig::default(), Vec3::new(5.0, -5.0, 2.0));
        let truth = Vec3::new(0.0, 0.0, 10.0);
        for _ in 0..200 {
            ekf.predict(Vec3::ZERO, 0.02);
            ekf.update_gps(truth, Vec3::ZERO, 1.0);
            ekf.update_baro(truth.z);
        }
        assert!(ekf.position().distance(truth) < 0.1, "{:?}", ekf.position());
        assert!(ekf.velocity().norm() < 0.1);
    }

    #[test]
    fn uncertainty_shrinks_with_measurements_and_grows_without() {
        let mut ekf = Ekf::new(EkfConfig::default(), Vec3::ZERO);
        let initial = ekf.position_sigma().x;
        for _ in 0..50 {
            ekf.predict(Vec3::ZERO, 0.02);
            ekf.update_gps(Vec3::ZERO, Vec3::ZERO, 1.0);
        }
        let converged = ekf.position_sigma().x;
        assert!(converged < initial);
        for _ in 0..500 {
            ekf.predict(Vec3::ZERO, 0.02);
        }
        assert!(ekf.position_sigma().x > converged);
    }

    #[test]
    fn tracks_constant_velocity_motion() {
        let mut ekf = Ekf::new(EkfConfig::default(), Vec3::ZERO);
        let mut truth = Vec3::ZERO;
        let v = Vec3::new(2.0, 0.0, 0.0);
        for i in 0..500 {
            truth += v * 0.02;
            ekf.predict(Vec3::ZERO, 0.02);
            if i % 10 == 0 {
                ekf.update_gps(truth, v, 1.0);
            }
        }
        assert!(ekf.position().distance(truth) < 0.5);
        assert!((ekf.velocity().x - 2.0).abs() < 0.3);
    }

    #[test]
    fn gps_drift_pulls_the_estimate_away_from_truth() {
        // The Fig. 5d failure: a drifting GNSS solution drags the estimate
        // with it even though the vehicle is stationary.
        let mut ekf = Ekf::new(EkfConfig::default(), Vec3::ZERO);
        let mut drift = Vec3::ZERO;
        for _ in 0..600 {
            drift += Vec3::new(0.01, 0.005, 0.0);
            ekf.predict(Vec3::ZERO, 0.02);
            ekf.update_gps(drift, Vec3::ZERO, 0.6);
        }
        assert!(
            ekf.position().horizontal_distance(Vec3::ZERO) > 2.0,
            "drifting GPS should corrupt the estimate, got {:?}",
            ekf.position()
        );
    }

    #[test]
    fn rangefinder_tightens_altitude_during_descent() {
        let mut ekf = Ekf::new(EkfConfig::default(), Vec3::new(0.0, 0.0, 8.0));
        for _ in 0..100 {
            ekf.predict(Vec3::ZERO, 0.02);
            ekf.update_baro(8.4); // biased baro
            ekf.update_range(8.0); // accurate lidar
        }
        assert!((ekf.position().z - 8.0).abs() < 0.15);
    }

    #[test]
    fn low_quality_gps_is_down_weighted() {
        let mut good = Ekf::new(EkfConfig::default(), Vec3::ZERO);
        let mut poor = Ekf::new(EkfConfig::default(), Vec3::ZERO);
        let bogus = Vec3::new(3.0, 0.0, 0.0);
        for _ in 0..5 {
            good.predict(Vec3::ZERO, 0.02);
            poor.predict(Vec3::ZERO, 0.02);
            good.update_gps(bogus, Vec3::ZERO, 1.0);
            poor.update_gps(bogus, Vec3::ZERO, 0.1);
        }
        assert!(good.position().x > poor.position().x);
    }
}
