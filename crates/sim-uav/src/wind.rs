//! Wind model: steady mean wind plus correlated gusts.
//!
//! The paper attributes part of the real-world landing error ("60 cm ...
//! primarily due to GPS inaccuracies and wind during the final descent") to
//! wind disturbance. The model is a mean wind vector from the scenario
//! weather plus an Ornstein–Uhlenbeck gust process, so gusts are temporally
//! correlated instead of white noise.

use mls_geom::Vec3;
use mls_sim_world::Weather;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of the gust process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindConfig {
    /// Gust correlation time constant, seconds.
    pub gust_time_constant: f64,
    /// Fraction of the gust magnitude applied vertically.
    pub vertical_fraction: f64,
}

impl Default for WindConfig {
    fn default() -> Self {
        Self {
            gust_time_constant: 2.5,
            vertical_fraction: 0.25,
        }
    }
}

/// Stateful wind generator.
#[derive(Debug, Clone)]
pub struct WindModel {
    config: WindConfig,
    mean: Vec3,
    gust_magnitude: f64,
    gust_state: Vec3,
    rng: StdRng,
}

impl WindModel {
    /// Creates a wind model from scenario weather.
    pub fn from_weather(weather: &Weather, seed: u64) -> Self {
        Self::new(
            WindConfig::default(),
            weather.wind_mean,
            weather.wind_gust,
            seed,
        )
    }

    /// Creates a wind model with explicit mean and gust magnitude.
    pub fn new(config: WindConfig, mean: Vec3, gust_magnitude: f64, seed: u64) -> Self {
        Self {
            config,
            mean,
            gust_magnitude: gust_magnitude.max(0.0),
            gust_state: Vec3::ZERO,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The configured mean wind.
    pub fn mean(&self) -> Vec3 {
        self.mean
    }

    /// Advances the gust process and returns the instantaneous wind vector.
    pub fn sample(&mut self, dt: f64) -> Vec3 {
        let tau = self.config.gust_time_constant.max(1e-3);
        let alpha = (dt / tau).clamp(0.0, 1.0);
        let noise = Vec3::new(
            self.gaussian(),
            self.gaussian(),
            self.gaussian() * self.config.vertical_fraction,
        ) * self.gust_magnitude;
        self.gust_state = self.gust_state * (1.0 - alpha) + noise * alpha;
        self.mean + self.gust_state
    }

    fn gaussian(&mut self) -> f64 {
        let u1: f64 = self.rng.random::<f64>().max(1e-12);
        let u2: f64 = self.rng.random();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calm_weather_gives_near_mean_wind() {
        let mut model = WindModel::new(WindConfig::default(), Vec3::new(1.0, 0.0, 0.0), 0.0, 1);
        for _ in 0..100 {
            let w = model.sample(0.02);
            assert!((w - Vec3::new(1.0, 0.0, 0.0)).norm() < 1e-9);
        }
    }

    #[test]
    fn gusts_stay_bounded_and_correlated() {
        let mut model = WindModel::from_weather(&Weather::windy(), 3);
        let mut prev = model.sample(0.02);
        let mut max_step = 0.0f64;
        let mut max_speed = 0.0f64;
        for _ in 0..2000 {
            let w = model.sample(0.02);
            max_step = max_step.max((w - prev).norm());
            max_speed = max_speed.max(w.norm());
            prev = w;
        }
        let weather = Weather::windy();
        assert!(max_speed < weather.wind_mean.norm() + 6.0 * weather.wind_gust + 1.0);
        // Correlated gusts change slowly step to step.
        assert!(max_step < 1.0, "gust step {max_step} too jumpy");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mut a = WindModel::from_weather(&Weather::rain(), 7);
        let mut b = WindModel::from_weather(&Weather::rain(), 7);
        for _ in 0..50 {
            assert_eq!(a.sample(0.02), b.sample(0.02));
        }
    }
}
