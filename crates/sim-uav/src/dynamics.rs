//! Simplified quadrotor rigid-body dynamics.
//!
//! The reproduction does not need blade-element aerodynamics: the behaviours
//! that matter to the paper's evaluation are (a) bounded acceleration and
//! tilt, (b) a first-order lag between commanded and achieved acceleration
//! (which makes the vehicle cut or overshoot sharp RRT* corners — the V3
//! failure mode), and (c) susceptibility to wind, especially during the final
//! descent (the real-world accuracy degradation of §V-C).

use mls_geom::{Attitude, Pose, Vec3};
use serde::{Deserialize, Serialize};

/// Standard gravity, m/s².
pub const GRAVITY: f64 = 9.81;

/// Physical and actuation limits of the simulated airframe (defaults model
/// the paper's F450 quadrotor).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AirframeConfig {
    /// Vehicle mass, kg.
    pub mass: f64,
    /// Collision radius used for clearance checks, metres.
    pub radius: f64,
    /// Maximum horizontal acceleration, m/s².
    pub max_horizontal_accel: f64,
    /// Maximum vertical acceleration (up or down), m/s².
    pub max_vertical_accel: f64,
    /// Maximum horizontal speed, m/s.
    pub max_horizontal_speed: f64,
    /// Maximum climb/descent speed, m/s.
    pub max_vertical_speed: f64,
    /// Maximum tilt angle, radians.
    pub max_tilt: f64,
    /// First-order lag time constant between commanded and achieved
    /// acceleration, seconds.
    pub accel_time_constant: f64,
    /// Aerodynamic drag coefficient (per-axis, relative to airspeed).
    pub drag_coefficient: f64,
    /// Yaw slew rate, rad/s.
    pub max_yaw_rate: f64,
}

impl Default for AirframeConfig {
    fn default() -> Self {
        Self {
            mass: 1.6,
            radius: 0.35,
            max_horizontal_accel: 4.0,
            max_vertical_accel: 3.0,
            max_horizontal_speed: 8.0,
            max_vertical_speed: 2.5,
            max_tilt: 0.5,
            accel_time_constant: 0.35,
            drag_coefficient: 0.25,
            max_yaw_rate: 1.2,
        }
    }
}

/// Instantaneous true state of the vehicle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VehicleState {
    /// World-frame position, metres (ENU).
    pub position: Vec3,
    /// World-frame velocity, m/s.
    pub velocity: Vec3,
    /// World-frame acceleration achieved on the last step, m/s².
    pub acceleration: Vec3,
    /// Attitude (roll, pitch, yaw).
    pub attitude: Attitude,
    /// `true` once the vehicle has touched the ground with low speed.
    pub landed: bool,
}

impl VehicleState {
    /// A vehicle at rest on the ground at `position`.
    pub fn grounded(position: Vec3) -> Self {
        Self {
            position,
            velocity: Vec3::ZERO,
            acceleration: Vec3::ZERO,
            attitude: Attitude::LEVEL,
            landed: true,
        }
    }

    /// The vehicle pose (position + attitude).
    pub fn pose(&self) -> Pose {
        Pose::new(self.position, self.attitude)
    }

    /// Ground speed, m/s.
    pub fn ground_speed(&self) -> f64 {
        self.velocity.horizontal().norm()
    }
}

/// Acceleration-level command produced by the autopilot's cascades.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControlCommand {
    /// Desired world-frame acceleration (gravity-compensated), m/s².
    pub acceleration: Vec3,
    /// Desired yaw, radians.
    pub yaw: f64,
}

impl ControlCommand {
    /// Hover in place with the given yaw.
    pub fn hover(yaw: f64) -> Self {
        Self {
            acceleration: Vec3::ZERO,
            yaw,
        }
    }
}

/// Point-mass quadrotor dynamics with actuation lag, drag and wind.
#[derive(Debug, Clone)]
pub struct QuadrotorDynamics {
    config: AirframeConfig,
    state: VehicleState,
    commanded_accel: Vec3,
}

impl QuadrotorDynamics {
    /// Creates the dynamics with a vehicle resting at `start`.
    pub fn new(config: AirframeConfig, start: Vec3) -> Self {
        Self {
            config,
            state: VehicleState::grounded(start),
            commanded_accel: Vec3::ZERO,
        }
    }

    /// The airframe configuration.
    pub fn config(&self) -> &AirframeConfig {
        &self.config
    }

    /// The current true state.
    pub fn state(&self) -> &VehicleState {
        &self.state
    }

    /// Overrides the true state (used by failure-injection tests).
    pub fn set_state(&mut self, state: VehicleState) {
        self.state = state;
    }

    /// Advances the dynamics by `dt` seconds under `command` and `wind`
    /// (world-frame wind velocity, m/s), over ground at `ground_z`.
    ///
    /// Returns the new state. Ground contact below ~0.3 m/s vertical speed is
    /// treated as a landing; faster contact still clamps to the ground but
    /// keeps `landed = false` so the caller can classify it as a hard impact.
    pub fn step(
        &mut self,
        command: &ControlCommand,
        wind: Vec3,
        ground_z: f64,
        dt: f64,
    ) -> VehicleState {
        let cfg = &self.config;
        let dt = dt.max(1e-4);

        // A landed vehicle stays put until a clear climb command arrives:
        // ground friction dominates the small residual forces, so gusts do
        // not shuffle a disarmed vehicle around.
        if self.state.landed && command.acceleration.z <= 0.5 {
            self.commanded_accel = Vec3::ZERO;
            self.state.velocity = Vec3::ZERO;
            self.state.acceleration = Vec3::ZERO;
            self.state.position.z = ground_z;
            return self.state;
        }

        // Saturate the commanded acceleration to the airframe envelope.
        let mut desired = command.acceleration;
        let horizontal = desired.horizontal().clamp_norm(cfg.max_horizontal_accel);
        desired = Vec3::new(
            horizontal.x,
            horizontal.y,
            desired
                .z
                .clamp(-cfg.max_vertical_accel, cfg.max_vertical_accel),
        );
        // Tilt limit: horizontal acceleration implies tilt atan(a_h / g).
        let max_h_from_tilt = GRAVITY * cfg.max_tilt.tan();
        let limited_h = desired.horizontal().clamp_norm(max_h_from_tilt);
        desired = Vec3::new(limited_h.x, limited_h.y, desired.z);

        // First-order actuation lag.
        let alpha = (dt / (cfg.accel_time_constant + dt)).clamp(0.0, 1.0);
        self.commanded_accel = self.commanded_accel.lerp(desired, alpha);

        // Drag acts on airspeed (velocity relative to the wind).
        let airspeed = self.state.velocity - wind;
        let drag = airspeed * (-cfg.drag_coefficient);

        let accel = self.commanded_accel + drag;

        // Integrate.
        let mut velocity = self.state.velocity + accel * dt;
        let horizontal_v = velocity.horizontal().clamp_norm(cfg.max_horizontal_speed);
        velocity = Vec3::new(
            horizontal_v.x,
            horizontal_v.y,
            velocity
                .z
                .clamp(-cfg.max_vertical_speed, cfg.max_vertical_speed),
        );
        let mut position = self.state.position + velocity * dt;

        // Yaw slew.
        let yaw_error = mls_geom::wrap_angle(command.yaw - self.state.attitude.yaw);
        let yaw_step = yaw_error.clamp(-cfg.max_yaw_rate * dt, cfg.max_yaw_rate * dt);
        let yaw = mls_geom::wrap_angle(self.state.attitude.yaw + yaw_step);

        // Attitude follows the achieved horizontal acceleration.
        let pitch = (-self.commanded_accel.x / GRAVITY)
            .atan()
            .clamp(-cfg.max_tilt, cfg.max_tilt);
        let roll = (self.commanded_accel.y / GRAVITY)
            .atan()
            .clamp(-cfg.max_tilt, cfg.max_tilt);

        // Ground contact.
        let mut landed = false;
        if position.z <= ground_z {
            position.z = ground_z;
            landed = velocity.z.abs() <= 1.0;
            velocity = Vec3::ZERO;
        }

        self.state = VehicleState {
            position,
            velocity,
            acceleration: accel,
            attitude: Attitude::new(roll, pitch, yaw),
            landed,
        };
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hover_dynamics() -> QuadrotorDynamics {
        let mut d = QuadrotorDynamics::new(AirframeConfig::default(), Vec3::ZERO);
        d.set_state(VehicleState {
            position: Vec3::new(0.0, 0.0, 10.0),
            velocity: Vec3::ZERO,
            acceleration: Vec3::ZERO,
            attitude: Attitude::LEVEL,
            landed: false,
        });
        d
    }

    #[test]
    fn grounded_vehicle_stays_put_without_commands() {
        let mut d = QuadrotorDynamics::new(AirframeConfig::default(), Vec3::ZERO);
        for _ in 0..100 {
            d.step(&ControlCommand::hover(0.0), Vec3::ZERO, 0.0, 0.02);
        }
        assert!(d.state().position.norm() < 1e-6);
        assert!(d.state().landed);
    }

    #[test]
    fn commanded_acceleration_moves_vehicle_forward() {
        let mut d = hover_dynamics();
        let cmd = ControlCommand {
            acceleration: Vec3::new(2.0, 0.0, 0.0),
            yaw: 0.0,
        };
        for _ in 0..100 {
            d.step(&cmd, Vec3::ZERO, 0.0, 0.02);
        }
        assert!(d.state().position.x > 1.0);
        assert!(d.state().velocity.x > 0.5);
        // Pitch should be non-zero while accelerating forward.
        assert!(d.state().attitude.pitch.abs() > 0.01);
    }

    #[test]
    fn acceleration_lag_delays_response() {
        let mut d = hover_dynamics();
        let cmd = ControlCommand {
            acceleration: Vec3::new(3.0, 0.0, 0.0),
            yaw: 0.0,
        };
        d.step(&cmd, Vec3::ZERO, 0.0, 0.02);
        // After a single 20 ms step the achieved acceleration is far below
        // the commanded 3 m/s² because of the actuation lag.
        assert!(d.state().acceleration.x < 1.0);
    }

    #[test]
    fn speed_limits_are_enforced() {
        let mut d = hover_dynamics();
        let cmd = ControlCommand {
            acceleration: Vec3::new(10.0, 0.0, 5.0),
            yaw: 0.0,
        };
        for _ in 0..1000 {
            d.step(&cmd, Vec3::ZERO, 0.0, 0.02);
        }
        let cfg = AirframeConfig::default();
        assert!(d.state().ground_speed() <= cfg.max_horizontal_speed + 1e-6);
        assert!(d.state().velocity.z <= cfg.max_vertical_speed + 1e-6);
    }

    #[test]
    fn wind_pushes_a_hovering_vehicle() {
        let mut d = hover_dynamics();
        let wind = Vec3::new(6.0, 0.0, 0.0);
        for _ in 0..250 {
            d.step(&ControlCommand::hover(0.0), wind, 0.0, 0.02);
        }
        assert!(
            d.state().position.x > 0.5,
            "steady wind should displace an uncontrolled hover, got {:?}",
            d.state().position
        );
    }

    #[test]
    fn gentle_descent_lands_hard_descent_does_not() {
        let mut d = hover_dynamics();
        // Gentle descent.
        let cmd = ControlCommand {
            acceleration: Vec3::new(0.0, 0.0, -0.4),
            yaw: 0.0,
        };
        let mut landed = false;
        for _ in 0..4000 {
            let s = d.step(&cmd, Vec3::ZERO, 0.0, 0.02);
            if s.landed {
                landed = true;
                break;
            }
        }
        assert!(landed, "gentle descent should land");

        // Hard descent: start high with a large downward velocity.
        let mut d = hover_dynamics();
        d.set_state(VehicleState {
            position: Vec3::new(0.0, 0.0, 3.0),
            velocity: Vec3::new(0.0, 0.0, -2.5),
            acceleration: Vec3::ZERO,
            attitude: Attitude::LEVEL,
            landed: false,
        });
        let cmd = ControlCommand {
            acceleration: Vec3::new(0.0, 0.0, -3.0),
            yaw: 0.0,
        };
        let mut hard_contact = false;
        for _ in 0..500 {
            let s = d.step(&cmd, Vec3::ZERO, 0.0, 0.02);
            if s.position.z <= 0.0 {
                hard_contact = !s.landed;
                break;
            }
        }
        assert!(
            hard_contact,
            "fast contact should not count as a clean landing"
        );
    }

    #[test]
    fn yaw_tracks_command_at_limited_rate() {
        let mut d = hover_dynamics();
        let cmd = ControlCommand {
            acceleration: Vec3::ZERO,
            yaw: 1.5,
        };
        d.step(&cmd, Vec3::ZERO, 0.0, 0.02);
        let after_one = d.state().attitude.yaw;
        assert!(after_one < 0.1, "yaw must slew, not jump");
        for _ in 0..200 {
            d.step(&cmd, Vec3::ZERO, 0.0, 0.02);
        }
        assert!((d.state().attitude.yaw - 1.5).abs() < 0.05);
    }

    #[test]
    fn tilt_never_exceeds_limit() {
        let mut d = hover_dynamics();
        let cmd = ControlCommand {
            acceleration: Vec3::new(50.0, 50.0, 0.0),
            yaw: 0.0,
        };
        for _ in 0..200 {
            let s = d.step(&cmd, Vec3::ZERO, 0.0, 0.02);
            assert!(s.attitude.tilt() <= AirframeConfig::default().max_tilt + 1e-6);
        }
    }
}
