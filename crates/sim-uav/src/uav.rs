//! The assembled simulated vehicle: airframe, flight controller and the full
//! sensor suite, stepped together on a fixed physics tick.
//!
//! [`Uav`] is what the landing-system executor drives: it exposes offboard
//! commands (take-off, position/velocity setpoints, land), the estimated
//! pose the onboard software believes, the true state the metrics are scored
//! against, and on-demand depth/RGB captures for the mapping and detection
//! modules.

use mls_geom::{Pose, Vec3};
use mls_sim_world::{Weather, WorldMap};
use mls_vision::{GrayImage, MarkerDictionary};
use serde::{Deserialize, Serialize};

use crate::autopilot::{Autopilot, AutopilotConfig, FlightMode};
use crate::dynamics::{AirframeConfig, QuadrotorDynamics, VehicleState};
use crate::sensors::{
    Barometer, BarometerConfig, DepthCamera, DepthCameraConfig, GpsConfig, GpsSensor, ImuConfig,
    ImuSensor, PointCloud, Rangefinder, RangefinderConfig, RgbCamera, RgbCameraConfig,
};
use crate::wind::WindModel;

/// Configuration of the whole simulated vehicle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UavConfig {
    /// Airframe limits (F450 class by default).
    pub airframe: AirframeConfig,
    /// Flight-controller gains and estimator noise.
    pub autopilot: AutopilotConfig,
    /// IMU grade (Cuav X7+ by default; use [`ImuConfig::pixhawk_2_4_8`] to
    /// reproduce the first real-world configuration).
    pub imu: ImuConfig,
    /// GNSS receiver overrides. When `None` the receiver is derived from the
    /// scenario weather (the usual case).
    pub gps_override: Option<GpsConfig>,
    /// Barometer characteristics.
    pub baro: BarometerConfig,
    /// Downward rangefinder characteristics.
    pub rangefinder: RangefinderConfig,
    /// Forward depth camera characteristics.
    pub depth_camera: DepthCameraConfig,
    /// Downward RGB camera characteristics.
    pub rgb_camera: RgbCameraConfig,
    /// Physics step rate, Hz.
    pub physics_rate_hz: f64,
    /// Barometer / rangefinder update rate, Hz.
    pub baro_rate_hz: f64,
    /// Altitude below which the rangefinder feeds the estimator, metres.
    pub range_fusion_altitude: f64,
}

impl Default for UavConfig {
    fn default() -> Self {
        Self {
            airframe: AirframeConfig::default(),
            autopilot: AutopilotConfig::default(),
            imu: ImuConfig::default(),
            gps_override: None,
            baro: BarometerConfig::default(),
            rangefinder: RangefinderConfig::default(),
            depth_camera: DepthCameraConfig::default(),
            rgb_camera: RgbCameraConfig::default(),
            physics_rate_hz: 50.0,
            baro_rate_hz: 20.0,
            range_fusion_altitude: 10.0,
        }
    }
}

/// The simulated vehicle.
#[derive(Debug, Clone)]
pub struct Uav {
    config: UavConfig,
    weather: Weather,
    dynamics: QuadrotorDynamics,
    autopilot: Autopilot,
    wind: WindModel,
    gps: GpsSensor,
    imu: ImuSensor,
    baro: Barometer,
    rangefinder: Rangefinder,
    depth_camera: DepthCamera,
    rgb_camera: RgbCamera,
    time: f64,
    next_gps: f64,
    next_baro: f64,
    gps_bias: Vec3,
    wind_disturbance: Vec3,
}

impl Uav {
    /// Assembles a vehicle at `start` under the given weather.
    pub fn new(
        config: UavConfig,
        weather: Weather,
        start: Vec3,
        dictionary: MarkerDictionary,
        seed: u64,
    ) -> Self {
        let gps_config = config
            .gps_override
            .unwrap_or_else(|| GpsConfig::from_weather(&weather));
        Self {
            dynamics: QuadrotorDynamics::new(config.airframe.clone(), start),
            autopilot: Autopilot::new(config.autopilot, start),
            wind: WindModel::from_weather(&weather, seed ^ 0x1),
            gps: GpsSensor::new(gps_config, seed ^ 0x2),
            imu: ImuSensor::new(config.imu, seed ^ 0x3),
            baro: Barometer::new(config.baro, seed ^ 0x4),
            rangefinder: Rangefinder::new(config.rangefinder, seed ^ 0x5),
            depth_camera: DepthCamera::new(config.depth_camera, seed ^ 0x6),
            rgb_camera: RgbCamera::new(dictionary, config.rgb_camera, seed ^ 0x7),
            weather,
            config,
            time: 0.0,
            next_gps: 0.0,
            next_baro: 0.0,
            gps_bias: Vec3::ZERO,
            wind_disturbance: Vec3::ZERO,
        }
    }

    /// The vehicle configuration.
    pub fn config(&self) -> &UavConfig {
        &self.config
    }

    /// Simulation time, seconds.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Physics step, seconds.
    pub fn physics_dt(&self) -> f64 {
        1.0 / self.config.physics_rate_hz.max(1.0)
    }

    /// The true vehicle state (used for scoring, never by the onboard
    /// software).
    pub fn true_state(&self) -> &VehicleState {
        self.dynamics.state()
    }

    /// The pose the onboard software believes (EKF position + AHRS attitude).
    pub fn estimated_pose(&self) -> Pose {
        self.autopilot.estimated_pose()
    }

    /// Horizontal error between the estimated and true position, metres.
    pub fn estimation_error(&self) -> f64 {
        self.autopilot
            .estimated_position()
            .horizontal_distance(self.dynamics.state().position)
    }

    /// Accumulated GNSS drift (analysis only).
    pub fn gps_drift(&self) -> Vec3 {
        self.gps.drift()
    }

    /// Sets an additive bias applied to every subsequent GNSS fix, metres
    /// (fault injection: a receiver bias step the DOP values do not reveal).
    pub fn set_gps_bias(&mut self, bias: Vec3) {
        self.gps_bias = bias;
    }

    /// Sets an additional wind velocity applied on top of the scenario's wind
    /// model, m/s (fault injection: gust spikes beyond the weather preset).
    pub fn set_wind_disturbance(&mut self, wind: Vec3) {
        self.wind_disturbance = wind;
    }

    /// Read-only access to the flight controller.
    pub fn autopilot(&self) -> &Autopilot {
        &self.autopilot
    }

    /// Mutable access to the flight controller (to issue commands).
    pub fn autopilot_mut(&mut self) -> &mut Autopilot {
        &mut self.autopilot
    }

    /// The pinhole camera model of the downward camera (needed to lift
    /// detections into the world).
    pub fn downward_camera(&self) -> &mls_vision::Camera {
        self.rgb_camera.camera()
    }

    /// Advances physics, sensing and control by one physics tick.
    pub fn step(&mut self, world: &WorldMap) -> VehicleState {
        let dt = self.physics_dt();
        self.time += dt;

        let truth = *self.dynamics.state();
        let imu = self.imu.sample(&truth, dt);

        let gps_fix = if self.time >= self.next_gps {
            self.next_gps = self.time + self.gps.interval();
            let mut fix = self.gps.sample(&truth, self.gps.interval());
            fix.position += self.gps_bias;
            Some(fix)
        } else {
            None
        };

        let (baro_alt, range_alt) = if self.time >= self.next_baro {
            self.next_baro = self.time + 1.0 / self.config.baro_rate_hz.max(1.0);
            let baro = self
                .baro
                .sample(&truth, 1.0 / self.config.baro_rate_hz.max(1.0));
            let range = self
                .rangefinder
                .sample(&truth, world)
                .filter(|_| truth.position.z - world.ground_z <= self.config.range_fusion_altitude)
                .map(|d| world.ground_z + d);
            (Some(baro), range)
        } else {
            (None, None)
        };

        self.autopilot
            .sense(&imu, gps_fix.as_ref(), baro_alt, range_alt, dt);
        let command = self.autopilot.control(dt);
        let wind = self.wind.sample(dt) + self.wind_disturbance;
        let state = self.dynamics.step(&command, wind, world.ground_z, dt);
        if state.landed && matches!(self.autopilot.mode(), FlightMode::Landing) {
            self.autopilot.notify_touchdown();
        }
        state
    }

    /// Captures a depth point cloud (physically from the true pose,
    /// reconstructed through the estimated pose).
    pub fn capture_depth(&mut self, world: &WorldMap) -> PointCloud {
        let true_pose = self.dynamics.state().pose();
        let est_pose = self.autopilot.estimated_pose();
        self.depth_camera.capture(world, &true_pose, &est_pose)
    }

    /// Captures a downward camera frame.
    pub fn capture_image(&mut self, world: &WorldMap) -> GrayImage {
        let truth = self.dynamics.state();
        let pose = truth.pose();
        let speed = truth.ground_speed();
        self.rgb_camera.capture(world, &self.weather, &pose, speed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mls_sim_world::{MapStyle, MarkerSite, Obstacle};

    fn flat_world() -> WorldMap {
        WorldMap::empty("flat", MapStyle::Rural, 100.0).with_marker(MarkerSite::target(
            2,
            Vec3::new(10.0, 5.0, 0.0),
            1.5,
            0.0,
        ))
    }

    fn fly_seconds(uav: &mut Uav, world: &WorldMap, seconds: f64) {
        let steps = (seconds / uav.physics_dt()) as usize;
        for _ in 0..steps {
            uav.step(world);
        }
    }

    #[test]
    fn full_mission_takeoff_transit_land() {
        let world = flat_world();
        let mut uav = Uav::new(
            UavConfig::default(),
            Weather::clear(),
            Vec3::ZERO,
            MarkerDictionary::standard(),
            42,
        );
        uav.autopilot_mut().arm_and_takeoff(10.0);
        fly_seconds(&mut uav, &world, 20.0);
        assert!((uav.true_state().position.z - 10.0).abs() < 1.5);

        uav.autopilot_mut().goto(Vec3::new(10.0, 5.0, 10.0), 0.0);
        fly_seconds(&mut uav, &world, 25.0);
        assert!(
            uav.true_state()
                .position
                .horizontal_distance(Vec3::new(10.0, 5.0, 0.0))
                < 2.0
        );

        uav.autopilot_mut().land();
        fly_seconds(&mut uav, &world, 40.0);
        assert!(uav.true_state().landed, "vehicle should be on the ground");
        assert_eq!(uav.autopilot().mode(), FlightMode::Disarmed);
        // Landing accuracy in clear weather: bounded by the accumulated GNSS
        // drift plus control error, which stays under two metres. (The paper's
        // ~25 cm SIL figure is for marker-guided descent; this mission lands
        // on dead-reckoned GPS alone.)
        assert!(
            uav.true_state()
                .position
                .horizontal_distance(Vec3::new(10.0, 5.0, 0.0))
                < 2.0
        );
    }

    #[test]
    fn estimation_error_grows_in_bad_weather() {
        let world = flat_world();
        let mut clear = Uav::new(
            UavConfig::default(),
            Weather::clear(),
            Vec3::ZERO,
            MarkerDictionary::standard(),
            7,
        );
        let mut rainy = Uav::new(
            UavConfig::default(),
            Weather::rain(),
            Vec3::ZERO,
            MarkerDictionary::standard(),
            7,
        );
        for uav in [&mut clear, &mut rainy] {
            uav.autopilot_mut().arm_and_takeoff(10.0);
            fly_seconds(uav, &world, 120.0);
        }
        assert!(
            rainy.estimation_error() > clear.estimation_error(),
            "rain {} vs clear {}",
            rainy.estimation_error(),
            clear.estimation_error()
        );
    }

    #[test]
    fn rtk_override_limits_drift() {
        let world = flat_world();
        let cfg = UavConfig {
            gps_override: Some(GpsConfig::from_weather(&Weather::rain()).with_rtk()),
            ..UavConfig::default()
        };
        let mut uav = Uav::new(
            cfg,
            Weather::rain(),
            Vec3::ZERO,
            MarkerDictionary::standard(),
            7,
        );
        uav.autopilot_mut().arm_and_takeoff(10.0);
        fly_seconds(&mut uav, &world, 120.0);
        assert!(
            uav.gps_drift().norm() < 0.6,
            "rtk drift {:?}",
            uav.gps_drift()
        );
    }

    #[test]
    fn depth_capture_sees_a_building_in_front() {
        let world = WorldMap::empty("b", MapStyle::Urban, 100.0).with_obstacle(Obstacle::building(
            Vec3::new(15.0, 0.0, 0.0),
            8.0,
            8.0,
            12.0,
        ));
        let mut uav = Uav::new(
            UavConfig::default(),
            Weather::clear(),
            Vec3::ZERO,
            MarkerDictionary::standard(),
            3,
        );
        uav.autopilot_mut().arm_and_takeoff(6.0);
        for _ in 0..(20.0 / uav.physics_dt()) as usize {
            uav.step(&world);
        }
        let cloud = uav.capture_depth(&world);
        assert!(cloud
            .points
            .iter()
            .any(|p| (p.x - 11.0).abs() < 1.0 && p.z > 1.0));
        assert!(cloud.max_range > 0.0);
    }

    #[test]
    fn image_capture_contains_detectable_marker_overhead() {
        let world = flat_world();
        let mut uav = Uav::new(
            UavConfig::default(),
            Weather::clear(),
            Vec3::ZERO,
            MarkerDictionary::standard(),
            3,
        );
        uav.autopilot_mut().arm_and_takeoff(8.0);
        let world_ref = &world;
        for _ in 0..(15.0 / uav.physics_dt()) as usize {
            uav.step(world_ref);
        }
        uav.autopilot_mut().goto(Vec3::new(10.0, 5.0, 8.0), 0.0);
        for _ in 0..(20.0 / uav.physics_dt()) as usize {
            uav.step(world_ref);
        }
        let frame = uav.capture_image(world_ref);
        let detector = mls_vision::LearnedDetector::new(MarkerDictionary::standard());
        use mls_vision::MarkerDetector as _;
        let detections = detector.detect(&frame);
        assert!(
            detections.iter().any(|d| d.id == 2),
            "marker under the vehicle should be detectable, got {detections:?}"
        );
    }
}
