//! Simulated UAV platform: quadrotor dynamics, PX4-style autopilot (flight
//! modes, cascaded control, EKF) and the sensor suite of the paper's F450
//! test vehicle (GNSS, IMU, barometer, downward LiDAR rangefinder, forward
//! depth camera, downward RGB camera).
//!
//! Together with [`mls_sim_world`] this crate replaces the AirSim + PX4 SITL
//! stack the paper runs its Software-in-the-Loop and Hardware-in-the-Loop
//! campaigns on. The fidelity target is behavioural, not aerodynamic: the
//! phenomena the evaluation depends on — GNSS drift corrupting the EKF and
//! the map, late discovery of porous tree canopies, trajectory-following lag
//! at sharp corners, wind pushing the final descent — are all modelled.
//!
//! # Examples
//!
//! ```
//! use mls_geom::Vec3;
//! use mls_sim_world::{MapStyle, Weather, WorldMap};
//! use mls_sim_uav::{Uav, UavConfig};
//! use mls_vision::MarkerDictionary;
//!
//! let world = WorldMap::empty("flat", MapStyle::Rural, 100.0);
//! let mut uav = Uav::new(
//!     UavConfig::default(),
//!     Weather::clear(),
//!     Vec3::ZERO,
//!     MarkerDictionary::standard(),
//!     1,
//! );
//! uav.autopilot_mut().arm_and_takeoff(5.0);
//! for _ in 0..500 {
//!     uav.step(&world);
//! }
//! assert!(uav.true_state().position.z > 3.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod autopilot;
mod dynamics;
pub mod sensors;
mod uav;
mod wind;

pub use autopilot::{Autopilot, AutopilotConfig, Ekf, EkfConfig, FlightMode, Pid, PidConfig};
pub use dynamics::{AirframeConfig, ControlCommand, QuadrotorDynamics, VehicleState, GRAVITY};
pub use sensors::{
    Barometer, BarometerConfig, DepthCamera, DepthCameraConfig, GpsConfig, GpsFix, GpsSensor,
    ImuConfig, ImuSample, ImuSensor, PointCloud, Rangefinder, RangefinderConfig, RgbCamera,
    RgbCameraConfig,
};
pub use uav::{Uav, UavConfig};
pub use wind::{WindConfig, WindModel};
