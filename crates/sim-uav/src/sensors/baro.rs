//! Barometric altimeter with slow pressure drift.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::dynamics::VehicleState;

/// Barometer characteristics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BarometerConfig {
    /// White altitude noise, metres (1σ).
    pub noise: f64,
    /// Pressure-drift rate, metres per √second.
    pub drift_rate: f64,
    /// Maximum accumulated drift, metres.
    pub drift_limit: f64,
}

impl Default for BarometerConfig {
    fn default() -> Self {
        Self {
            noise: 0.35,
            drift_rate: 0.02,
            drift_limit: 1.5,
        }
    }
}

/// Stateful barometric altimeter.
#[derive(Debug, Clone)]
pub struct Barometer {
    config: BarometerConfig,
    drift: f64,
    rng: StdRng,
}

impl Barometer {
    /// Creates a barometer.
    pub fn new(config: BarometerConfig, seed: u64) -> Self {
        Self {
            config,
            drift: 0.0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &BarometerConfig {
        &self.config
    }

    /// Measured altitude for the true state after `dt` seconds.
    pub fn sample(&mut self, truth: &VehicleState, dt: f64) -> f64 {
        let cfg = self.config;
        self.drift = (self.drift + self.gaussian() * cfg.drift_rate * dt.max(1e-4).sqrt())
            .clamp(-cfg.drift_limit, cfg.drift_limit);
        truth.position.z + self.drift + self.gaussian() * cfg.noise
    }

    fn gaussian(&mut self) -> f64 {
        let u1: f64 = self.rng.random::<f64>().max(1e-12);
        let u2: f64 = self.rng.random();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mls_geom::Vec3;

    #[test]
    fn altitude_is_near_truth_with_bounded_drift() {
        let mut truth = VehicleState::grounded(Vec3::new(0.0, 0.0, 25.0));
        truth.landed = false;
        let mut baro = Barometer::new(BarometerConfig::default(), 4);
        let mut worst = 0.0f64;
        for _ in 0..5000 {
            let alt = baro.sample(&truth, 0.05);
            worst = worst.max((alt - 25.0).abs());
        }
        assert!(
            worst < 1.5 + 4.0 * BarometerConfig::default().noise,
            "worst {worst}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let truth = VehicleState::grounded(Vec3::ZERO);
        let mut a = Barometer::new(BarometerConfig::default(), 7);
        let mut b = Barometer::new(BarometerConfig::default(), 7);
        for _ in 0..10 {
            assert_eq!(a.sample(&truth, 0.05), b.sample(&truth, 0.05));
        }
    }
}
