//! IMU / AHRS model.
//!
//! The paper upgraded from a Pixhawk 2.4.8 to a Cuav X7+ Pro because "poor
//! local positioning due to low-quality acceleration and rotational data"
//! degraded the state estimate. The two [`ImuConfig`] presets reproduce that
//! difference: the older board has higher accelerometer noise and a larger,
//! faster-wandering bias, which feeds straight into the EKF prediction.

use mls_geom::{Attitude, Vec3};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::dynamics::VehicleState;

/// One IMU/AHRS sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImuSample {
    /// Measured world-frame linear acceleration (gravity removed), m/s².
    pub linear_acceleration: Vec3,
    /// Measured body angular rate, rad/s.
    pub angular_rate: Vec3,
    /// Attitude solution of the AHRS.
    pub attitude: Attitude,
}

/// IMU noise and bias characteristics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImuConfig {
    /// Accelerometer white noise, m/s² (1σ).
    pub accel_noise: f64,
    /// Accelerometer bias random-walk rate, m/s² per √second.
    pub accel_bias_walk: f64,
    /// Maximum accelerometer bias magnitude, m/s².
    pub accel_bias_limit: f64,
    /// Gyro white noise, rad/s (1σ).
    pub gyro_noise: f64,
    /// Attitude solution error, radians (1σ).
    pub attitude_noise: f64,
}

impl ImuConfig {
    /// The Pixhawk 2.4.8-class sensor suite the project started with.
    pub fn pixhawk_2_4_8() -> Self {
        Self {
            accel_noise: 0.35,
            accel_bias_walk: 0.05,
            accel_bias_limit: 0.6,
            gyro_noise: 0.02,
            attitude_noise: 0.02,
        }
    }

    /// The Cuav X7+ Pro-class suite (triple IMU, better sensors) the project
    /// upgraded to.
    pub fn cuav_x7_pro() -> Self {
        Self {
            accel_noise: 0.08,
            accel_bias_walk: 0.008,
            accel_bias_limit: 0.15,
            gyro_noise: 0.004,
            attitude_noise: 0.005,
        }
    }
}

impl Default for ImuConfig {
    fn default() -> Self {
        Self::cuav_x7_pro()
    }
}

/// Stateful IMU model.
#[derive(Debug, Clone)]
pub struct ImuSensor {
    config: ImuConfig,
    accel_bias: Vec3,
    rng: StdRng,
}

impl ImuSensor {
    /// Creates an IMU with the given characteristics.
    pub fn new(config: ImuConfig, seed: u64) -> Self {
        Self {
            config,
            accel_bias: Vec3::ZERO,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ImuConfig {
        &self.config
    }

    /// Produces a sample for the true state after `dt` seconds.
    pub fn sample(&mut self, truth: &VehicleState, dt: f64) -> ImuSample {
        let cfg = self.config;
        let walk = cfg.accel_bias_walk * dt.max(1e-4).sqrt();
        self.accel_bias = (self.accel_bias
            + Vec3::new(
                self.gaussian() * walk,
                self.gaussian() * walk,
                self.gaussian() * walk,
            ))
        .clamp_norm(cfg.accel_bias_limit);

        let accel_noise = Vec3::new(
            self.gaussian() * cfg.accel_noise,
            self.gaussian() * cfg.accel_noise,
            self.gaussian() * cfg.accel_noise,
        );
        let attitude = Attitude::new(
            truth.attitude.roll + self.gaussian() * cfg.attitude_noise,
            truth.attitude.pitch + self.gaussian() * cfg.attitude_noise,
            truth.attitude.yaw + self.gaussian() * cfg.attitude_noise,
        );
        ImuSample {
            linear_acceleration: truth.acceleration + self.accel_bias + accel_noise,
            angular_rate: Vec3::new(
                self.gaussian() * cfg.gyro_noise,
                self.gaussian() * cfg.gyro_noise,
                self.gaussian() * cfg.gyro_noise,
            ),
            attitude,
        }
    }

    fn gaussian(&mut self) -> f64 {
        let u1: f64 = self.rng.random::<f64>().max(1e-12);
        let u2: f64 = self.rng.random();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hover_state() -> VehicleState {
        let mut s = VehicleState::grounded(Vec3::new(0.0, 0.0, 10.0));
        s.landed = false;
        s
    }

    #[test]
    fn pixhawk_is_noisier_than_cuav() {
        let truth = hover_state();
        let mut old = ImuSensor::new(ImuConfig::pixhawk_2_4_8(), 1);
        let mut new = ImuSensor::new(ImuConfig::cuav_x7_pro(), 1);
        let mut old_err = 0.0;
        let mut new_err = 0.0;
        for _ in 0..500 {
            old_err += old.sample(&truth, 0.005).linear_acceleration.norm();
            new_err += new.sample(&truth, 0.005).linear_acceleration.norm();
        }
        assert!(old_err > new_err * 2.0, "old {old_err} vs new {new_err}");
    }

    #[test]
    fn bias_stays_bounded() {
        let truth = hover_state();
        let mut imu = ImuSensor::new(ImuConfig::pixhawk_2_4_8(), 5);
        for _ in 0..20_000 {
            imu.sample(&truth, 0.005);
        }
        assert!(imu.accel_bias.norm() <= ImuConfig::pixhawk_2_4_8().accel_bias_limit + 1e-9);
    }

    #[test]
    fn attitude_solution_tracks_truth() {
        let mut truth = hover_state();
        truth.attitude = Attitude::new(0.1, -0.05, 1.2);
        let mut imu = ImuSensor::new(ImuConfig::cuav_x7_pro(), 3);
        let s = imu.sample(&truth, 0.005);
        assert!((s.attitude.yaw - 1.2).abs() < 0.05);
        assert!((s.attitude.roll - 0.1).abs() < 0.05);
    }

    #[test]
    fn deterministic_per_seed() {
        let truth = hover_state();
        let mut a = ImuSensor::new(ImuConfig::default(), 2);
        let mut b = ImuSensor::new(ImuConfig::default(), 2);
        for _ in 0..10 {
            assert_eq!(a.sample(&truth, 0.005), b.sample(&truth, 0.005));
        }
    }
}
