//! Sensor simulation: GNSS, IMU, barometer, rangefinder, depth camera and the
//! downward RGB camera.
//!
//! Each sensor consumes the *true* vehicle state and produces the imperfect
//! measurement the flight stack actually sees. The imperfections are the ones
//! the paper's campaigns ran into: GNSS random-walk drift in poor weather,
//! low-grade IMU noise on the Pixhawk 2.4.8, porous tree canopies that the
//! depth camera only registers sporadically, and point clouds that end up in
//! the wrong place because they are projected through a drifting pose
//! estimate (Fig. 5c).

mod baro;
mod depth_camera;
mod gps;
mod imu;
mod rangefinder;
mod rgb_camera;

pub use baro::{Barometer, BarometerConfig};
pub use depth_camera::{DepthCamera, DepthCameraConfig, PointCloud};
pub use gps::{GpsConfig, GpsFix, GpsSensor};
pub use imu::{ImuConfig, ImuSample, ImuSensor};
pub use rangefinder::{Rangefinder, RangefinderConfig};
pub use rgb_camera::{RgbCamera, RgbCameraConfig};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensor_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GpsSensor>();
        assert_send_sync::<ImuSensor>();
        assert_send_sync::<Barometer>();
        assert_send_sync::<Rangefinder>();
        assert_send_sync::<DepthCamera>();
        assert_send_sync::<RgbCamera>();
        assert_send_sync::<PointCloud>();
    }
}
