//! GNSS receiver model with weather-correlated random-walk drift.
//!
//! The paper's real-world campaign hit "GPS positioning drift ... despite
//! VDOP/HDOP values being within 2–8", which corrupted the EKF, the map, and
//! the landing accuracy. The model therefore separates *reported* quality
//! (DOP values that look acceptable) from *actual* error (white noise plus a
//! slow random walk whose rate grows with the weather's GNSS degradation).
//! An RTK option removes almost all drift — one of the mitigations §V-C
//! proposes.

use mls_geom::Vec3;
use mls_sim_world::Weather;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::dynamics::VehicleState;

/// One GNSS solution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpsFix {
    /// Reported local position, metres.
    pub position: Vec3,
    /// Reported velocity, m/s.
    pub velocity: Vec3,
    /// Horizontal dilution of precision.
    pub hdop: f64,
    /// Vertical dilution of precision.
    pub vdop: f64,
}

impl GpsFix {
    /// Quality factor in `(0, 1]` derived from the reported DOP values, used
    /// by the EKF to weight the measurement. Note that during the drift
    /// events the paper describes the DOPs — and therefore this factor —
    /// still look healthy, which is exactly why the drift leaks into the
    /// estimate.
    pub fn quality(&self) -> f64 {
        (2.0 / (self.hdop + self.vdop)).clamp(0.05, 1.0)
    }
}

/// GNSS receiver configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpsConfig {
    /// White position noise, metres (1σ).
    pub position_noise: f64,
    /// White velocity noise, m/s (1σ).
    pub velocity_noise: f64,
    /// Random-walk drift rate, metres per √second.
    pub drift_rate: f64,
    /// Baseline horizontal DOP.
    pub base_hdop: f64,
    /// Baseline vertical DOP.
    pub base_vdop: f64,
    /// `true` for an RTK-corrected receiver (removes nearly all drift).
    pub rtk: bool,
    /// Update rate, Hz.
    pub rate_hz: f64,
}

impl Default for GpsConfig {
    fn default() -> Self {
        Self {
            position_noise: 0.25,
            velocity_noise: 0.1,
            drift_rate: 0.02,
            base_hdop: 0.9,
            base_vdop: 1.4,
            rtk: false,
            rate_hz: 5.0,
        }
    }
}

impl GpsConfig {
    /// Derives a configuration from the scenario weather (the drift rate and
    /// reported DOPs grow with the GNSS degradation).
    pub fn from_weather(weather: &Weather) -> Self {
        Self {
            drift_rate: weather.gps_drift_rate(),
            position_noise: 0.25 + 0.5 * weather.gps_degradation,
            base_hdop: 0.9 + 5.0 * weather.gps_degradation,
            base_vdop: 1.4 + 6.0 * weather.gps_degradation,
            ..Self::default()
        }
    }

    /// Returns the same configuration with RTK corrections enabled (§V-C's
    /// proposed mitigation).
    pub fn with_rtk(mut self) -> Self {
        self.rtk = true;
        self
    }
}

/// Stateful GNSS receiver.
#[derive(Debug, Clone)]
pub struct GpsSensor {
    config: GpsConfig,
    drift: Vec3,
    rng: StdRng,
}

impl GpsSensor {
    /// Creates a receiver with an explicit configuration.
    pub fn new(config: GpsConfig, seed: u64) -> Self {
        Self {
            config,
            drift: Vec3::ZERO,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Creates a receiver configured from the scenario weather.
    pub fn from_weather(weather: &Weather, seed: u64) -> Self {
        Self::new(GpsConfig::from_weather(weather), seed)
    }

    /// The configuration.
    pub fn config(&self) -> &GpsConfig {
        &self.config
    }

    /// The current accumulated drift (useful for analysis/plots).
    pub fn drift(&self) -> Vec3 {
        self.drift
    }

    /// Update interval, seconds.
    pub fn interval(&self) -> f64 {
        1.0 / self.config.rate_hz.max(0.1)
    }

    /// Produces a fix for the true state after `dt` seconds since the last
    /// fix.
    pub fn sample(&mut self, truth: &VehicleState, dt: f64) -> GpsFix {
        let cfg = self.config;
        let effective_drift_rate = if cfg.rtk {
            cfg.drift_rate * 0.02
        } else {
            cfg.drift_rate
        };
        let scale = effective_drift_rate * dt.max(1e-3).sqrt();
        let step = Vec3::new(
            self.gaussian() * scale,
            self.gaussian() * scale,
            self.gaussian() * scale * 0.6,
        );
        self.drift += step;
        let noise = Vec3::new(
            self.gaussian() * cfg.position_noise,
            self.gaussian() * cfg.position_noise,
            self.gaussian() * cfg.position_noise * 1.5,
        );
        let velocity_noise = Vec3::new(
            self.gaussian() * cfg.velocity_noise,
            self.gaussian() * cfg.velocity_noise,
            self.gaussian() * cfg.velocity_noise,
        );
        GpsFix {
            position: truth.position + self.drift + noise,
            velocity: truth.velocity + velocity_noise,
            hdop: cfg.base_hdop * (1.0 + 0.15 * self.rng.random::<f64>()),
            vdop: cfg.base_vdop * (1.0 + 0.15 * self.rng.random::<f64>()),
        }
    }

    fn gaussian(&mut self) -> f64 {
        let u1: f64 = self.rng.random::<f64>().max(1e-12);
        let u2: f64 = self.rng.random();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hover_state() -> VehicleState {
        let mut s = VehicleState::grounded(Vec3::new(0.0, 0.0, 10.0));
        s.landed = false;
        s
    }

    #[test]
    fn clear_weather_fix_is_close_to_truth() {
        let mut gps = GpsSensor::from_weather(&Weather::clear(), 1);
        let truth = hover_state();
        let mut worst = 0.0f64;
        for _ in 0..100 {
            let fix = gps.sample(&truth, 0.2);
            worst = worst.max(fix.position.horizontal_distance(truth.position));
        }
        assert!(worst < 2.0, "clear-sky error {worst}");
    }

    #[test]
    fn poor_weather_accumulates_drift() {
        let mut gps = GpsSensor::from_weather(&Weather::rain(), 2);
        let truth = hover_state();
        // Simulate ten minutes of fixes at 5 Hz.
        for _ in 0..3000 {
            gps.sample(&truth, 0.2);
        }
        assert!(
            gps.drift().horizontal().norm() > 1.0,
            "rainy-weather drift should accumulate, got {:?}",
            gps.drift()
        );
    }

    #[test]
    fn rtk_removes_most_drift() {
        let cfg = GpsConfig::from_weather(&Weather::rain()).with_rtk();
        let mut rtk = GpsSensor::new(cfg, 2);
        let truth = hover_state();
        for _ in 0..3000 {
            rtk.sample(&truth, 0.2);
        }
        assert!(rtk.drift().norm() < 0.5, "rtk drift {:?}", rtk.drift());
    }

    #[test]
    fn degraded_weather_reports_higher_dop_but_quality_stays_plausible() {
        let mut clear = GpsSensor::from_weather(&Weather::clear(), 3);
        let mut rain = GpsSensor::from_weather(&Weather::rain(), 3);
        let truth = hover_state();
        let clear_fix = clear.sample(&truth, 0.2);
        let rain_fix = rain.sample(&truth, 0.2);
        assert!(rain_fix.hdop > clear_fix.hdop);
        // The paper saw HDOP/VDOP "within 2–8" during drift events.
        assert!(rain_fix.hdop < 8.0 && rain_fix.vdop < 10.0);
        assert!(rain_fix.quality() < clear_fix.quality());
        assert!(rain_fix.quality() > 0.05);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let truth = hover_state();
        let mut a = GpsSensor::from_weather(&Weather::fog(), 9);
        let mut b = GpsSensor::from_weather(&Weather::fog(), 9);
        for _ in 0..20 {
            assert_eq!(a.sample(&truth, 0.2), b.sample(&truth, 0.2));
        }
    }
}
