//! Forward-facing depth camera (RealSense D435 class) producing world-frame
//! point clouds.
//!
//! Two modelling decisions matter for reproducing the paper's failure modes:
//!
//! * rays are cast from the vehicle's **true** pose (physics), but the
//!   returned points are reconstructed through the **estimated** pose — so a
//!   drifting EKF paints obstacles in the wrong place, exactly the
//!   "erroneous pointclouds" of Fig. 5c;
//! * porous tree canopy returns are dropped with high probability, so the
//!   map only learns about foliage late — the V2 trap-in-the-tree failure.

use mls_geom::{Pose, Vec3};
use mls_sim_world::WorldMap;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A world-frame point cloud with the sensor origin it was captured from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointCloud {
    /// Sensor origin in the frame the points are expressed in (the estimated
    /// world frame).
    pub origin: Vec3,
    /// Reconstructed obstacle points.
    pub points: Vec<Vec3>,
    /// Maximum sensor range, metres, used by mapping for free-space carving.
    pub max_range: f64,
}

impl PointCloud {
    /// An empty cloud from the given origin.
    pub fn empty(origin: Vec3, max_range: f64) -> Self {
        Self {
            origin,
            points: Vec::new(),
            max_range,
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when no point was returned.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// Depth camera configuration (defaults follow the D435's field of view at a
/// companion-computer-friendly resolution).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DepthCameraConfig {
    /// Horizontal field of view, radians.
    pub horizontal_fov: f64,
    /// Vertical field of view, radians.
    pub vertical_fov: f64,
    /// Number of ray columns.
    pub columns: usize,
    /// Number of ray rows.
    pub rows: usize,
    /// Maximum range, metres.
    pub max_range: f64,
    /// Range noise, metres (1σ).
    pub range_noise: f64,
    /// Probability that a valid return is dropped.
    pub dropout: f64,
    /// Probability that a porous (canopy) surface produces a return at all.
    pub canopy_return_probability: f64,
    /// Camera pitch below the horizon, radians (a slight down-tilt so the
    /// sensor sees obstacles at and below flight altitude).
    pub down_tilt: f64,
}

impl Default for DepthCameraConfig {
    fn default() -> Self {
        Self {
            horizontal_fov: 87.0f64.to_radians(),
            vertical_fov: 58.0f64.to_radians(),
            columns: 24,
            rows: 18,
            max_range: 18.0,
            range_noise: 0.05,
            dropout: 0.02,
            canopy_return_probability: 0.25,
            down_tilt: 0.35,
        }
    }
}

/// Stateful depth camera.
#[derive(Debug, Clone)]
pub struct DepthCamera {
    config: DepthCameraConfig,
    rng: StdRng,
}

impl DepthCamera {
    /// Creates a depth camera.
    pub fn new(config: DepthCameraConfig, seed: u64) -> Self {
        Self {
            config,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DepthCameraConfig {
        &self.config
    }

    /// Captures a point cloud.
    ///
    /// `true_pose` drives the physical ray casting; `estimated_pose` is the
    /// frame the points are reconstructed in (pass the same pose for an
    /// idealised sensor).
    pub fn capture(
        &mut self,
        world: &WorldMap,
        true_pose: &Pose,
        estimated_pose: &Pose,
    ) -> PointCloud {
        let cfg = self.config;
        let mut cloud = PointCloud::empty(estimated_pose.position, cfg.max_range);
        for row in 0..cfg.rows {
            for col in 0..cfg.columns {
                let azimuth =
                    (col as f64 / (cfg.columns - 1).max(1) as f64 - 0.5) * cfg.horizontal_fov;
                let elevation = (0.5 - row as f64 / (cfg.rows - 1).max(1) as f64)
                    * cfg.vertical_fov
                    - cfg.down_tilt;
                // Body-frame direction: +x forward, +y left, +z up.
                let dir_body = Vec3::new(
                    azimuth.cos() * elevation.cos(),
                    azimuth.sin() * elevation.cos(),
                    elevation.sin(),
                );
                let dir_world_true = true_pose.transform_direction(dir_body);
                let ray = mls_geom::Ray::new(true_pose.position, dir_world_true);
                let Some(hit) = world.raycast(&ray, cfg.max_range) else {
                    continue;
                };
                if hit.porous && self.rng.random::<f64>() > cfg.canopy_return_probability {
                    continue;
                }
                if self.rng.random::<f64>() < cfg.dropout {
                    continue;
                }
                let distance = (hit.distance + self.gaussian() * cfg.range_noise).max(0.05);
                // Reconstruct through the *estimated* pose.
                let dir_world_est = estimated_pose.transform_direction(dir_body);
                cloud
                    .points
                    .push(estimated_pose.position + dir_world_est * distance);
            }
        }
        cloud
    }

    fn gaussian(&mut self) -> f64 {
        let u1: f64 = self.rng.random::<f64>().max(1e-12);
        let u2: f64 = self.rng.random();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mls_sim_world::{MapStyle, Obstacle};

    fn world_with_building() -> WorldMap {
        WorldMap::empty("t", MapStyle::Urban, 60.0).with_obstacle(Obstacle::building(
            Vec3::new(12.0, 0.0, 0.0),
            8.0,
            8.0,
            12.0,
        ))
    }

    #[test]
    fn sees_building_ahead() {
        let world = world_with_building();
        let pose = Pose::from_position_yaw(Vec3::new(0.0, 0.0, 6.0), 0.0);
        let mut cam = DepthCamera::new(DepthCameraConfig::default(), 1);
        let cloud = cam.capture(&world, &pose, &pose);
        assert!(!cloud.is_empty());
        // A good fraction of the returns should lie on the building's front
        // face (x ≈ 8 m).
        let on_face = cloud
            .points
            .iter()
            .filter(|p| (p.x - 8.0).abs() < 0.5 && p.z > 0.5)
            .count();
        assert!(on_face > 20, "only {on_face} returns on the building face");
    }

    #[test]
    fn empty_world_returns_only_ground() {
        let world = WorldMap::empty("flat", MapStyle::Rural, 60.0);
        let pose = Pose::from_position_yaw(Vec3::new(0.0, 0.0, 5.0), 0.0);
        let mut cam = DepthCamera::new(DepthCameraConfig::default(), 1);
        let cloud = cam.capture(&world, &pose, &pose);
        for p in &cloud.points {
            assert!(p.z < 0.6, "ground returns only, got {p:?}");
        }
    }

    #[test]
    fn pose_error_displaces_the_reconstruction() {
        let world = world_with_building();
        let true_pose = Pose::from_position_yaw(Vec3::new(0.0, 0.0, 6.0), 0.0);
        // The estimate is 3 m off to the left: every point shifts with it.
        let est_pose = Pose::from_position_yaw(Vec3::new(0.0, 3.0, 6.0), 0.0);
        let mut cam = DepthCamera::new(DepthCameraConfig::default(), 1);
        let cloud = cam.capture(&world, &true_pose, &est_pose);
        let mean_y: f64 = cloud.points.iter().map(|p| p.y).sum::<f64>() / cloud.len() as f64;
        assert!(
            mean_y > 1.5,
            "reconstructed cloud should shift with the estimate, mean y {mean_y}"
        );
    }

    #[test]
    fn canopy_returns_are_sparse() {
        let world = WorldMap::empty("trees", MapStyle::Rural, 60.0).with_obstacle(Obstacle::tree(
            Vec3::new(10.0, 0.0, 0.0),
            4.0,
            3.0,
        ));
        let pose = Pose::from_position_yaw(Vec3::new(0.0, 0.0, 6.0), 0.0);
        let mut sparse_cam = DepthCamera::new(DepthCameraConfig::default(), 2);
        let solid_cfg = DepthCameraConfig {
            canopy_return_probability: 1.0,
            ..DepthCameraConfig::default()
        };
        let mut solid_cam = DepthCamera::new(solid_cfg, 2);
        let canopy_points = |cloud: &PointCloud| {
            cloud
                .points
                .iter()
                .filter(|p| p.z > 3.0 && (p.x - 10.0).abs() < 4.0)
                .count()
        };
        let sparse = canopy_points(&sparse_cam.capture(&world, &pose, &pose));
        let solid = canopy_points(&solid_cam.capture(&world, &pose, &pose));
        assert!(
            sparse * 2 < solid.max(1),
            "porous canopy should return far fewer points ({sparse} vs {solid})"
        );
    }

    #[test]
    fn respects_max_range() {
        let world = world_with_building();
        let pose = Pose::from_position_yaw(Vec3::new(-30.0, 0.0, 6.0), 0.0);
        let cfg = DepthCameraConfig {
            max_range: 10.0,
            ..DepthCameraConfig::default()
        };
        let mut cam = DepthCamera::new(cfg, 1);
        let cloud = cam.capture(&world, &pose, &pose);
        for p in &cloud.points {
            assert!(p.distance(pose.position) <= 10.5);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let world = world_with_building();
        let pose = Pose::from_position_yaw(Vec3::new(0.0, 0.0, 6.0), 0.0);
        let a = DepthCamera::new(DepthCameraConfig::default(), 5).capture(&world, &pose, &pose);
        let b = DepthCamera::new(DepthCameraConfig::default(), 5).capture(&world, &pose, &pose);
        assert_eq!(a, b);
    }
}
