//! Downward-facing single-beam LiDAR rangefinder (TFMini Plus class).
//!
//! Used for accurate altitude above ground during the final descent; limited
//! range and a single beam mean it only helps below ~12 m and over whatever
//! is directly beneath the vehicle (a roof counts!).

use mls_geom::{Ray, Vec3};
use mls_sim_world::WorldMap;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::dynamics::VehicleState;

/// Rangefinder characteristics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RangefinderConfig {
    /// Maximum measurable range, metres.
    pub max_range: f64,
    /// Minimum measurable range, metres.
    pub min_range: f64,
    /// White range noise, metres (1σ).
    pub noise: f64,
}

impl Default for RangefinderConfig {
    fn default() -> Self {
        Self {
            max_range: 12.0,
            min_range: 0.1,
            noise: 0.04,
        }
    }
}

/// Stateful rangefinder.
#[derive(Debug, Clone)]
pub struct Rangefinder {
    config: RangefinderConfig,
    rng: StdRng,
}

impl Rangefinder {
    /// Creates a rangefinder.
    pub fn new(config: RangefinderConfig, seed: u64) -> Self {
        Self {
            config,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &RangefinderConfig {
        &self.config
    }

    /// Measures the distance straight down from the vehicle (along body -z,
    /// approximated as world -z because the vehicle is near-level whenever
    /// the reading matters). Returns `None` when nothing is within range.
    pub fn sample(&mut self, truth: &VehicleState, world: &WorldMap) -> Option<f64> {
        let cfg = self.config;
        if truth.position.z <= world.ground_z + cfg.min_range {
            return Some(cfg.min_range);
        }
        let ray = Ray::new(truth.position, Vec3::new(0.0, 0.0, -1.0));
        let hit = world.raycast(&ray, cfg.max_range)?;
        let noisy = hit.distance + self.gaussian() * cfg.noise;
        Some(noisy.clamp(cfg.min_range, cfg.max_range))
    }

    fn gaussian(&mut self) -> f64 {
        let u1: f64 = self.rng.random::<f64>().max(1e-12);
        let u2: f64 = self.rng.random();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mls_sim_world::{MapStyle, Obstacle};

    fn world_with_building() -> WorldMap {
        WorldMap::empty("t", MapStyle::Suburban, 50.0).with_obstacle(Obstacle::building(
            Vec3::new(10.0, 0.0, 0.0),
            6.0,
            6.0,
            8.0,
        ))
    }

    fn state_at(p: Vec3) -> VehicleState {
        let mut s = VehicleState::grounded(p);
        s.landed = false;
        s
    }

    #[test]
    fn reads_height_above_open_ground() {
        let world = world_with_building();
        let mut rf = Rangefinder::new(RangefinderConfig::default(), 1);
        let d = rf
            .sample(&state_at(Vec3::new(0.0, 0.0, 6.0)), &world)
            .unwrap();
        assert!((d - 6.0).abs() < 0.3);
    }

    #[test]
    fn reads_height_above_roof_not_ground() {
        let world = world_with_building();
        let mut rf = Rangefinder::new(RangefinderConfig::default(), 1);
        let d = rf
            .sample(&state_at(Vec3::new(10.0, 0.0, 11.0)), &world)
            .unwrap();
        assert!(
            (d - 3.0).abs() < 0.3,
            "roof at 8 m, vehicle at 11 m, got {d}"
        );
    }

    #[test]
    fn out_of_range_returns_none() {
        let world = world_with_building();
        let mut rf = Rangefinder::new(RangefinderConfig::default(), 1);
        assert!(rf
            .sample(&state_at(Vec3::new(0.0, 0.0, 30.0)), &world)
            .is_none());
    }

    #[test]
    fn very_low_altitude_clamps_to_min_range() {
        let world = world_with_building();
        let mut rf = Rangefinder::new(RangefinderConfig::default(), 1);
        let d = rf
            .sample(&state_at(Vec3::new(0.0, 0.0, 0.05)), &world)
            .unwrap();
        assert!((d - RangefinderConfig::default().min_range).abs() < 1e-9);
    }
}
