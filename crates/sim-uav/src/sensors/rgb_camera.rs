//! Downward-facing RGB (here: grayscale) camera bridge.
//!
//! Renders what the marker-detection camera would see by converting the
//! world's marker sites into a `mls_vision` ground scene, rendering it from
//! the vehicle's true pose, and degrading the frame according to the weather
//! and the vehicle's motion. This is the substitute for the D435i colour
//! stream the paper feeds to OpenCV / TPH-YOLO.

use mls_geom::Pose;
use mls_sim_world::{Weather, WorldMap};
use mls_vision::{
    Camera, DegradationConfig, GrayImage, GroundScene, ImageDegrader, MarkerDictionary,
    MarkerPlacement, MarkerRenderer, RendererConfig,
};
use serde::{Deserialize, Serialize};

/// RGB camera configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RgbCameraConfig {
    /// Apply weather/motion degradation to the rendered frames.
    pub degrade: bool,
    /// Motion blur in pixels per metre-per-second of ground speed.
    pub motion_blur_per_mps: f64,
    /// Only markers within this many metres (horizontally) of the vehicle are
    /// added to the rendered scene (cheap culling).
    pub render_radius: f64,
    /// Per-axis supersampling of the renderer (1 keeps mission rendering
    /// cheap; 2 matches the offline training quality).
    pub supersampling: u8,
}

impl Default for RgbCameraConfig {
    fn default() -> Self {
        Self {
            degrade: true,
            motion_blur_per_mps: 0.6,
            render_radius: 40.0,
            supersampling: 1,
        }
    }
}

/// Stateful camera bridge.
#[derive(Debug, Clone)]
pub struct RgbCamera {
    config: RgbCameraConfig,
    camera: Camera,
    renderer: MarkerRenderer,
    seed: u64,
    frame_index: u64,
}

impl RgbCamera {
    /// Creates a camera bridge rendering markers from `dictionary`.
    pub fn new(dictionary: MarkerDictionary, config: RgbCameraConfig, seed: u64) -> Self {
        let renderer_config = RendererConfig {
            supersampling: config.supersampling.max(1),
            ..RendererConfig::default()
        };
        Self {
            config,
            camera: Camera::downward(),
            renderer: MarkerRenderer::with_config(dictionary, renderer_config),
            seed,
            frame_index: 0,
        }
    }

    /// The pinhole camera model used for projection and for lifting
    /// detections back into the world.
    pub fn camera(&self) -> &Camera {
        &self.camera
    }

    /// The configuration.
    pub fn config(&self) -> &RgbCameraConfig {
        &self.config
    }

    /// Number of frames captured so far.
    pub fn frames_captured(&self) -> u64 {
        self.frame_index
    }

    /// Captures one frame from the vehicle's true pose.
    pub fn capture(
        &mut self,
        world: &WorldMap,
        weather: &Weather,
        true_pose: &Pose,
        ground_speed: f64,
    ) -> GrayImage {
        let mut scene = GroundScene::new();
        for marker in &world.markers {
            if marker.position.horizontal_distance(true_pose.position) <= self.config.render_radius
            {
                scene = scene.with_marker(MarkerPlacement::new(
                    marker.id,
                    marker.position.xy(),
                    marker.size,
                    marker.yaw,
                ));
            }
        }
        let frame = self.renderer.render(&self.camera, true_pose, &scene);
        self.frame_index += 1;
        if !self.config.degrade {
            return frame;
        }
        let degradation = DegradationConfig::from_intensities(
            weather.fog,
            weather.rain,
            weather.glare,
            weather.low_light,
            ground_speed * self.config.motion_blur_per_mps,
        );
        ImageDegrader::new(degradation, self.seed.wrapping_add(self.frame_index)).apply(&frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mls_geom::Vec3;
    use mls_sim_world::{MapStyle, MarkerSite};
    use mls_vision::{ClassicalDetector, MarkerDetector};

    fn world_with_marker() -> WorldMap {
        WorldMap::empty("t", MapStyle::Rural, 60.0).with_marker(MarkerSite::target(
            4,
            Vec3::new(0.0, 0.0, 0.0),
            1.5,
            0.1,
        ))
    }

    #[test]
    fn rendered_marker_is_detectable_in_clear_weather() {
        let dict = MarkerDictionary::standard();
        let mut cam = RgbCamera::new(dict.clone(), RgbCameraConfig::default(), 1);
        let world = world_with_marker();
        let pose = Pose::from_position_yaw(Vec3::new(0.0, 0.0, 8.0), 0.0);
        let frame = cam.capture(&world, &Weather::clear(), &pose, 0.0);
        let detections = ClassicalDetector::new(dict).detect(&frame);
        assert!(detections.iter().any(|d| d.id == 4));
        assert_eq!(cam.frames_captured(), 1);
    }

    #[test]
    fn distant_markers_are_culled() {
        let dict = MarkerDictionary::standard();
        let cfg = RgbCameraConfig {
            render_radius: 5.0,
            degrade: false,
            ..RgbCameraConfig::default()
        };
        let mut cam = RgbCamera::new(dict, cfg, 1);
        let world = WorldMap::empty("t", MapStyle::Rural, 200.0).with_marker(MarkerSite::target(
            4,
            Vec3::new(100.0, 0.0, 0.0),
            1.5,
            0.0,
        ));
        let pose = Pose::from_position_yaw(Vec3::new(0.0, 0.0, 8.0), 0.0);
        let frame = cam.capture(&world, &Weather::clear(), &pose, 0.0);
        // Frame is pure ground texture; its contrast is low.
        let (min, max) = frame.min_max();
        assert!(max - min < 0.4);
    }

    #[test]
    fn adverse_weather_degrades_the_frame() {
        let dict = MarkerDictionary::standard();
        let world = world_with_marker();
        let pose = Pose::from_position_yaw(Vec3::new(0.0, 0.0, 8.0), 0.0);
        let mut clear_cam = RgbCamera::new(dict.clone(), RgbCameraConfig::default(), 1);
        let mut foggy_cam = RgbCamera::new(dict, RgbCameraConfig::default(), 1);
        let clear = clear_cam.capture(&world, &Weather::clear(), &pose, 0.0);
        let foggy = foggy_cam.capture(&world, &Weather::fog(), &pose, 0.0);
        let (cmin, cmax) = clear.min_max();
        let (fmin, fmax) = foggy.min_max();
        assert!(fmax - fmin < cmax - cmin, "fog must compress contrast");
    }

    #[test]
    fn frames_differ_between_captures_due_to_noise() {
        let dict = MarkerDictionary::standard();
        let mut cam = RgbCamera::new(dict, RgbCameraConfig::default(), 9);
        let world = world_with_marker();
        let pose = Pose::from_position_yaw(Vec3::new(0.0, 0.0, 8.0), 0.0);
        let a = cam.capture(&world, &Weather::clear(), &pose, 0.0);
        let b = cam.capture(&world, &Weather::clear(), &pose, 0.0);
        assert_ne!(a.data(), b.data());
    }
}
