//! Property-based tests of the vehicle substrate: dynamics envelopes, EKF
//! boundedness and closed-loop tracking over randomly drawn commands.

use mls_geom::Vec3;
use mls_sim_uav::{
    AirframeConfig, Autopilot, AutopilotConfig, ControlCommand, GpsFix, ImuSample,
    QuadrotorDynamics, VehicleState,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Whatever acceleration is commanded, the airframe never exceeds its
    /// speed and tilt envelopes and its state stays finite.
    #[test]
    fn dynamics_respect_the_envelope(
        ax in -50.0f64..50.0,
        ay in -50.0f64..50.0,
        az in -50.0f64..50.0,
        wind_x in -10.0f64..10.0,
        wind_y in -10.0f64..10.0,
    ) {
        let config = AirframeConfig::default();
        let mut dynamics = QuadrotorDynamics::new(config.clone(), Vec3::ZERO);
        let mut state = VehicleState::grounded(Vec3::new(0.0, 0.0, 20.0));
        state.landed = false;
        dynamics.set_state(state);
        let command = ControlCommand { acceleration: Vec3::new(ax, ay, az), yaw: 0.3 };
        let wind = Vec3::new(wind_x, wind_y, 0.0);
        for _ in 0..500 {
            let s = dynamics.step(&command, wind, 0.0, 0.02);
            prop_assert!(s.position.is_finite());
            prop_assert!(s.velocity.is_finite());
            prop_assert!(s.ground_speed() <= config.max_horizontal_speed + 1e-6);
            prop_assert!(s.velocity.z.abs() <= config.max_vertical_speed + 1e-6);
            prop_assert!(s.attitude.tilt() <= config.max_tilt + 1e-6);
            prop_assert!(s.position.z >= -1e-9);
        }
    }

    /// The closed-loop autopilot reaches any reasonable setpoint within the
    /// arena and holds it, whatever the (bounded) wind.
    #[test]
    fn autopilot_tracks_setpoints_under_wind(
        gx in -25.0f64..25.0,
        gy in -25.0f64..25.0,
        gz in 6.0f64..18.0,
        wind_x in -3.0f64..3.0,
        wind_y in -3.0f64..3.0,
    ) {
        let mut autopilot = Autopilot::new(AutopilotConfig::default(), Vec3::ZERO);
        let mut dynamics = QuadrotorDynamics::new(AirframeConfig::default(), Vec3::ZERO);
        autopilot.arm_and_takeoff(gz);
        let goal = Vec3::new(gx, gy, gz);
        let wind = Vec3::new(wind_x, wind_y, 0.0);
        let dt = 0.02;
        let mut commanded_goto = false;
        for i in 0..4500 {
            let state = *dynamics.state();
            let imu = ImuSample {
                linear_acceleration: state.acceleration,
                angular_rate: Vec3::ZERO,
                attitude: state.attitude,
            };
            let fix = GpsFix { position: state.position, velocity: state.velocity, hdop: 0.9, vdop: 1.3 };
            autopilot.sense(&imu, (i % 10 == 0).then_some(&fix), Some(state.position.z), None, dt);
            if i == 1000 {
                autopilot.goto(goal, 0.0);
                commanded_goto = true;
            }
            let command = autopilot.control(dt);
            dynamics.step(&command, wind, 0.0, dt);
        }
        prop_assert!(commanded_goto);
        prop_assert!(
            dynamics.state().position.distance(goal) < 2.5,
            "final position {:?} too far from goal {:?}",
            dynamics.state().position,
            goal
        );
    }
}
