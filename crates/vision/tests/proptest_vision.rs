//! Property-based tests of the vision substrate: dictionary coding, the
//! degradation pipeline and detector sanity over randomly drawn scenes.

use mls_geom::{Pose, Vec2, Vec3};
use mls_vision::{
    Camera, ClassicalDetector, DegradationConfig, GrayImage, GroundScene, ImageDegrader,
    LearnedDetector, MarkerDetector, MarkerDictionary, MarkerObservation, MarkerPlacement,
    MarkerRenderer,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every dictionary code decodes back to its own id at every rotation,
    /// and single-bit errors are always corrected.
    #[test]
    fn dictionary_roundtrip_with_bit_errors(id in 0u32..50, rotation in 0u8..4, flipped_bit in 0usize..16) {
        let dictionary = MarkerDictionary::standard();
        let code = dictionary.code(id).unwrap();
        // Apply the rotation by re-encoding through the cell representation.
        let mut rotated = code;
        for _ in 0..rotation {
            let mut out = 0u16;
            for r in 0..4 {
                for c in 0..4 {
                    if rotated & (1 << (r * 4 + c)) != 0 {
                        out |= 1 << (c * 4 + (3 - r));
                    }
                }
            }
            rotated = out;
        }
        let observed = rotated ^ (1 << flipped_bit);
        let matched = dictionary.match_code(observed, 1);
        prop_assert!(matched.is_some());
        prop_assert_eq!(matched.unwrap().id, id);
    }

    /// Degradation never produces out-of-range luminance and clear weather is
    /// always gentler than the same frame under fog + low light.
    #[test]
    fn degradation_keeps_luminance_in_range(seed in 0u64..5_000, base in 0.1f32..0.9) {
        let image = GrayImage::filled(48, 36, base);
        let clear = ImageDegrader::new(DegradationConfig::clear(), seed).apply(&image);
        let foggy = ImageDegrader::new(
            DegradationConfig::from_intensities(0.9, 0.4, 0.3, 0.8, 3.0),
            seed,
        )
        .apply(&image);
        for img in [&clear, &foggy] {
            let (min, max) = img.min_max();
            prop_assert!(min >= 0.0 && max <= 1.0);
        }
        let clear_err: f32 = clear
            .data()
            .iter()
            .map(|v| (v - base).abs())
            .sum::<f32>() / clear.data().len() as f32;
        let foggy_err: f32 = foggy
            .data()
            .iter()
            .map(|v| (v - base).abs())
            .sum::<f32>() / foggy.data().len() as f32;
        prop_assert!(clear_err <= foggy_err + 0.02);
    }

    /// Whatever the marker pose and altitude (within the detectable band),
    /// a clean frame never yields a *wrong* id from either detector, and any
    /// detection lifts to a world position close to the true marker.
    #[test]
    fn detections_are_never_mislabelled_on_clean_frames(
        id in 0u32..50,
        altitude in 6.0f64..11.0,
        x in -1.5f64..1.5,
        y in -1.5f64..1.5,
        yaw in -3.1f64..3.1,
    ) {
        let dictionary = MarkerDictionary::standard();
        let renderer = MarkerRenderer::new(dictionary.clone());
        let camera = Camera::downward();
        let scene = GroundScene::new().with_marker(MarkerPlacement::new(id, Vec2::new(x, y), 1.5, yaw));
        let pose = Pose::from_position_yaw(Vec3::new(0.0, 0.0, altitude), 0.0);
        let frame = renderer.render(&camera, &pose, &scene);

        let classical = ClassicalDetector::new(dictionary.clone());
        let learned = LearnedDetector::new(dictionary);
        for detector in [&classical as &dyn MarkerDetector, &learned as &dyn MarkerDetector] {
            for detection in detector.detect(&frame) {
                prop_assert_eq!(detection.id, id, "{} mislabelled the marker", detector.name());
                let observation = MarkerObservation::from_detection(&camera, &pose, &detection, 0.0)
                    .expect("nadir detection lifts to the ground");
                prop_assert!(
                    observation.world_position.horizontal_distance(Vec3::new(x, y, 0.0)) < 0.6,
                    "{} lifted the marker {:.2} m away",
                    detector.name(),
                    observation.world_position.horizontal_distance(Vec3::new(x, y, 0.0))
                );
            }
        }
    }
}
