//! Pinhole camera model for the downward-facing marker camera.

use mls_geom::{Pose, Ray, Vec2, Vec3};
use serde::{Deserialize, Serialize};

use crate::VisionError;

/// Pinhole camera intrinsics.
///
/// The camera frame follows the usual computer-vision convention: `+x` right
/// in the image, `+y` down in the image, `+z` out of the lens along the
/// optical axis. [`CameraMount`] maps this frame onto the vehicle body.
///
/// # Examples
///
/// ```
/// use mls_geom::Vec3;
/// use mls_vision::CameraIntrinsics;
///
/// let cam = CameraIntrinsics::with_horizontal_fov(160, 120, 70f64.to_radians());
/// // A point straight ahead on the optical axis projects to the center.
/// let px = cam.project(Vec3::new(0.0, 0.0, 5.0)).unwrap();
/// assert!((px.x - 80.0).abs() < 1e-9);
/// assert!((px.y - 60.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CameraIntrinsics {
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Focal length along x, pixels.
    pub fx: f64,
    /// Focal length along y, pixels.
    pub fy: f64,
    /// Principal point x, pixels.
    pub cx: f64,
    /// Principal point y, pixels.
    pub cy: f64,
}

impl CameraIntrinsics {
    /// Creates intrinsics from explicit parameters.
    pub fn new(width: usize, height: usize, fx: f64, fy: f64, cx: f64, cy: f64) -> Self {
        Self {
            width,
            height,
            fx,
            fy,
            cx,
            cy,
        }
    }

    /// Creates intrinsics from a horizontal field of view (radians) with the
    /// principal point at the image center and square pixels.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the field of view is not in `(0, π)`.
    pub fn with_horizontal_fov(width: usize, height: usize, fov: f64) -> Self {
        debug_assert!(
            fov > 0.0 && fov < std::f64::consts::PI,
            "fov must be in (0, pi)"
        );
        let fx = width as f64 / (2.0 * (fov / 2.0).tan());
        Self {
            width,
            height,
            fx,
            fy: fx,
            cx: width as f64 / 2.0,
            cy: height as f64 / 2.0,
        }
    }

    /// Default configuration mimicking the downward RealSense D435i colour
    /// stream scaled to a companion-computer-friendly resolution.
    pub fn downward_default() -> Self {
        Self::with_horizontal_fov(160, 120, 69.4f64.to_radians())
    }

    /// Projects a point expressed in the camera frame into pixel coordinates.
    ///
    /// Returns `None` for points at or behind the image plane (`z <= 0`);
    /// points outside the sensor bounds are still returned (callers check
    /// [`CameraIntrinsics::in_bounds`] when needed).
    pub fn project(&self, p_cam: Vec3) -> Option<Vec2> {
        if p_cam.z <= 1e-9 {
            return None;
        }
        Some(Vec2::new(
            self.cx + self.fx * p_cam.x / p_cam.z,
            self.cy + self.fy * p_cam.y / p_cam.z,
        ))
    }

    /// The unit-norm direction in the camera frame corresponding to a pixel.
    pub fn unproject(&self, pixel: Vec2) -> Vec3 {
        Vec3::new(
            (pixel.x - self.cx) / self.fx,
            (pixel.y - self.cy) / self.fy,
            1.0,
        )
        .normalized_or_x()
    }

    /// `true` if the pixel lies inside the sensor bounds.
    pub fn in_bounds(&self, pixel: Vec2) -> bool {
        pixel.x >= 0.0
            && pixel.y >= 0.0
            && pixel.x < self.width as f64
            && pixel.y < self.height as f64
    }
}

/// Mounting of a camera on the vehicle body.
///
/// The downward marker camera looks along `-z` of the body (straight down in
/// level flight); the forward depth camera looks along `+x`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CameraMount {
    /// Optical axis along body `-z` (down), image `+x` along body `+x`.
    Downward,
    /// Optical axis along body `+x` (forward), image `+x` along body `+y`.
    Forward,
}

/// A camera with intrinsics and a body mounting, able to map pixels to world
/// rays given the vehicle pose.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Camera {
    /// Intrinsic parameters.
    pub intrinsics: CameraIntrinsics,
    /// How the camera is mounted on the body.
    pub mount: CameraMount,
}

impl Camera {
    /// Creates a camera from intrinsics and a mount.
    pub fn new(intrinsics: CameraIntrinsics, mount: CameraMount) -> Self {
        Self { intrinsics, mount }
    }

    /// The standard downward-facing marker camera.
    pub fn downward() -> Self {
        Self::new(CameraIntrinsics::downward_default(), CameraMount::Downward)
    }

    /// The standard forward-facing depth camera (used for obstacle sensing).
    pub fn forward(intrinsics: CameraIntrinsics) -> Self {
        Self::new(intrinsics, CameraMount::Forward)
    }

    /// Converts a camera-frame vector to a body-frame vector.
    fn camera_to_body(&self, v: Vec3) -> Vec3 {
        match self.mount {
            // Camera +x -> body +y (right), camera +y -> body -x? We define:
            // camera x (image right) -> body +y, camera y (image down) -> body +x,
            // camera z (optical axis) -> body -z. This yields an image whose
            // "up" direction is body -x; the exact in-plane orientation is
            // irrelevant for detection but must be consistent with
            // `body_to_camera`.
            CameraMount::Downward => Vec3::new(v.y, v.x, -v.z),
            // camera z (optical axis) -> body +x, camera x (image right) ->
            // body -y, camera y (image down) -> body -z.
            CameraMount::Forward => Vec3::new(v.z, -v.x, -v.y),
        }
    }

    /// Converts a body-frame vector to a camera-frame vector.
    fn body_to_camera(&self, v: Vec3) -> Vec3 {
        match self.mount {
            CameraMount::Downward => Vec3::new(v.y, v.x, -v.z),
            CameraMount::Forward => Vec3::new(-v.y, -v.z, v.x),
        }
    }

    /// The world-frame ray passing through `pixel` for a vehicle at
    /// `vehicle_pose`.
    pub fn pixel_ray(&self, vehicle_pose: &Pose, pixel: Vec2) -> Ray {
        let dir_cam = self.intrinsics.unproject(pixel);
        let dir_body = self.camera_to_body(dir_cam);
        let dir_world = vehicle_pose.transform_direction(dir_body);
        Ray::new(vehicle_pose.position, dir_world)
    }

    /// Projects a world point into pixel coordinates for a vehicle at
    /// `vehicle_pose`.
    ///
    /// # Errors
    ///
    /// Returns [`VisionError::BehindCamera`] when the point is behind the
    /// image plane.
    pub fn project_world_point(
        &self,
        vehicle_pose: &Pose,
        world: Vec3,
    ) -> Result<Vec2, VisionError> {
        let body = vehicle_pose.inverse_transform_point(world);
        let cam = self.body_to_camera(body);
        self.intrinsics
            .project(cam)
            .ok_or(VisionError::BehindCamera)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mls_geom::Attitude;

    #[test]
    fn project_unproject_roundtrip() {
        let cam = CameraIntrinsics::with_horizontal_fov(160, 120, 1.2);
        for p in [
            Vec3::new(0.0, 0.0, 3.0),
            Vec3::new(0.5, -0.2, 2.0),
            Vec3::new(-1.0, 1.0, 10.0),
        ] {
            let px = cam.project(p).unwrap();
            let dir = cam.unproject(px);
            // Direction must be parallel to the original point vector.
            let cos = dir.dot(p.normalized().unwrap());
            assert!(cos > 1.0 - 1e-9, "roundtrip direction mismatch: {cos}");
        }
    }

    #[test]
    fn points_behind_camera_are_rejected() {
        let cam = CameraIntrinsics::downward_default();
        assert!(cam.project(Vec3::new(0.0, 0.0, -1.0)).is_none());
        assert!(cam.project(Vec3::new(0.0, 0.0, 0.0)).is_none());
    }

    #[test]
    fn center_pixel_is_optical_axis() {
        let cam = CameraIntrinsics::with_horizontal_fov(100, 80, 1.0);
        let center = Vec2::new(50.0, 40.0);
        let dir = cam.unproject(center);
        assert!((dir - Vec3::new(0.0, 0.0, 1.0)).norm() < 1e-9);
        assert!(cam.in_bounds(center));
        assert!(!cam.in_bounds(Vec2::new(-1.0, 0.0)));
        assert!(!cam.in_bounds(Vec2::new(0.0, 80.0)));
    }

    #[test]
    fn downward_camera_center_ray_points_down_in_level_flight() {
        let camera = Camera::downward();
        let pose = Pose::from_position_yaw(Vec3::new(0.0, 0.0, 10.0), 0.3);
        let center = Vec2::new(camera.intrinsics.cx, camera.intrinsics.cy);
        let ray = camera.pixel_ray(&pose, center);
        assert!((ray.direction - Vec3::new(0.0, 0.0, -1.0)).norm() < 1e-9);
        assert_eq!(ray.origin, pose.position);
    }

    #[test]
    fn forward_camera_center_ray_points_forward() {
        let camera = Camera::forward(CameraIntrinsics::with_horizontal_fov(64, 48, 1.5));
        let pose = Pose::from_position_yaw(Vec3::new(1.0, 2.0, 5.0), 0.0);
        let center = Vec2::new(32.0, 24.0);
        let ray = camera.pixel_ray(&pose, center);
        assert!((ray.direction - Vec3::UNIT_X).norm() < 1e-9);
    }

    #[test]
    fn world_projection_roundtrip_downward() {
        let camera = Camera::downward();
        let pose = Pose::new(Vec3::new(2.0, -3.0, 12.0), Attitude::from_yaw(0.8));
        // A point on the ground below-ish the vehicle.
        let ground = Vec3::new(3.0, -2.0, 0.0);
        let px = camera.project_world_point(&pose, ground).unwrap();
        let ray = camera.pixel_ray(&pose, px);
        let t = ray.intersect_horizontal_plane(0.0).unwrap();
        let hit = ray.point_at(t);
        assert!((hit - ground).norm() < 1e-6, "hit {hit} != {ground}");
    }

    #[test]
    fn world_point_above_vehicle_is_behind_downward_camera() {
        let camera = Camera::downward();
        let pose = Pose::from_position_yaw(Vec3::new(0.0, 0.0, 10.0), 0.0);
        let above = Vec3::new(0.0, 0.0, 20.0);
        assert!(matches!(
            camera.project_world_point(&pose, above),
            Err(VisionError::BehindCamera)
        ));
    }
}
