//! Synthetic rendering of the downward camera view.
//!
//! This module replaces the AirSim / Unreal Engine image stream of the paper:
//! it renders the ground plane (with procedural texture), any fiducial
//! markers placed on it, and simple shadow/occlusion discs, as seen by a
//! pinhole camera mounted on the vehicle. The rendered [`GrayImage`] then
//! flows through the degradation model and the detectors exactly as a real
//! camera frame would.

use mls_geom::{Pose, Vec2};
use serde::{Deserialize, Serialize};

use crate::{Camera, GrayImage, MarkerDictionary, VisionError, MARKER_CELLS};

/// A fiducial marker placed flat on the ground plane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MarkerPlacement {
    /// Dictionary id of the marker.
    pub id: u32,
    /// Ground-plane position of the marker center (metres).
    pub center: Vec2,
    /// Side length of the printed marker including the black border (metres).
    pub size: f64,
    /// Yaw of the marker pattern on the ground (radians).
    pub yaw: f64,
}

impl MarkerPlacement {
    /// Creates a marker placement.
    pub fn new(id: u32, center: Vec2, size: f64, yaw: f64) -> Self {
        Self {
            id,
            center,
            size,
            yaw,
        }
    }
}

/// A dark elliptical patch on the ground, used to model shadows and partial
/// occlusions (e.g. foliage between the camera and the marker).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShadowDisc {
    /// Ground-plane center of the shadow (metres).
    pub center: Vec2,
    /// Radius of the shadow (metres).
    pub radius: f64,
    /// How much luminance the shadow removes, `0.0` (none) to `1.0` (black).
    pub darkness: f32,
}

/// Appearance of the terrain surrounding the markers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroundAppearance {
    /// Height of the ground plane (metres, world z).
    pub ground_z: f64,
    /// Base luminance of the terrain.
    pub base_luminance: f32,
    /// Amplitude of the procedural texture noise.
    pub texture_amplitude: f32,
    /// Spatial scale of the texture (metres per noise cell).
    pub texture_scale: f64,
}

impl Default for GroundAppearance {
    fn default() -> Self {
        Self {
            ground_z: 0.0,
            base_luminance: 0.42,
            texture_amplitude: 0.08,
            texture_scale: 0.35,
        }
    }
}

/// Everything visible to the downward camera.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct GroundScene {
    /// Terrain appearance.
    pub ground: GroundAppearance,
    /// Markers lying on the ground.
    pub markers: Vec<MarkerPlacement>,
    /// Shadows / occlusions.
    pub shadows: Vec<ShadowDisc>,
}

impl GroundScene {
    /// Creates an empty scene with default ground appearance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a marker and returns `self` for chaining.
    pub fn with_marker(mut self, marker: MarkerPlacement) -> Self {
        self.markers.push(marker);
        self
    }

    /// Adds a shadow and returns `self` for chaining.
    pub fn with_shadow(mut self, shadow: ShadowDisc) -> Self {
        self.shadows.push(shadow);
        self
    }
}

/// Renderer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RendererConfig {
    /// Luminance of white marker cells.
    pub marker_white: f32,
    /// Luminance of black marker cells.
    pub marker_black: f32,
    /// Width of the white quiet zone around the marker, as a fraction of the
    /// marker size.
    pub quiet_zone_fraction: f64,
    /// Luminance returned for rays that never hit the ground (sky).
    pub sky_luminance: f32,
    /// Per-axis supersampling factor for anti-aliasing (1 = off, 2 = 4 rays
    /// per pixel).
    pub supersampling: u8,
}

impl Default for RendererConfig {
    fn default() -> Self {
        Self {
            marker_white: 0.92,
            marker_black: 0.06,
            quiet_zone_fraction: 0.15,
            sky_luminance: 0.85,
            supersampling: 2,
        }
    }
}

/// Renders ground scenes into grayscale camera frames.
///
/// # Examples
///
/// ```
/// use mls_geom::{Pose, Vec2, Vec3};
/// use mls_vision::{Camera, GroundScene, MarkerDictionary, MarkerPlacement, MarkerRenderer};
///
/// let renderer = MarkerRenderer::new(MarkerDictionary::standard());
/// let scene = GroundScene::new().with_marker(MarkerPlacement::new(0, Vec2::ZERO, 1.0, 0.0));
/// let pose = Pose::from_position_yaw(Vec3::new(0.0, 0.0, 8.0), 0.0);
/// let frame = renderer.render(&Camera::downward(), &pose, &scene);
/// assert_eq!(frame.width(), 160);
/// ```
#[derive(Debug, Clone)]
pub struct MarkerRenderer {
    dictionary: MarkerDictionary,
    config: RendererConfig,
}

impl MarkerRenderer {
    /// Creates a renderer with the default configuration.
    pub fn new(dictionary: MarkerDictionary) -> Self {
        Self {
            dictionary,
            config: RendererConfig::default(),
        }
    }

    /// Creates a renderer with an explicit configuration.
    pub fn with_config(dictionary: MarkerDictionary, config: RendererConfig) -> Self {
        Self { dictionary, config }
    }

    /// The dictionary used for marker appearance.
    pub fn dictionary(&self) -> &MarkerDictionary {
        &self.dictionary
    }

    /// The renderer configuration.
    pub fn config(&self) -> &RendererConfig {
        &self.config
    }

    /// Renders the scene as seen by `camera` on a vehicle at `vehicle_pose`.
    ///
    /// Markers whose id is not in the dictionary are rendered as plain white
    /// squares (they still look like "something marker-like", which is how
    /// false-positive markers are modelled in the scenario generator).
    pub fn render(&self, camera: &Camera, vehicle_pose: &Pose, scene: &GroundScene) -> GrayImage {
        let w = camera.intrinsics.width;
        let h = camera.intrinsics.height;
        let mut image = GrayImage::new(w, h);
        let ss = self.config.supersampling.max(1) as usize;
        let inv_ss = 1.0 / ss as f64;
        for y in 0..h {
            for x in 0..w {
                let mut sum = 0.0f32;
                for sy in 0..ss {
                    for sx in 0..ss {
                        let px = Vec2::new(
                            x as f64 + (sx as f64 + 0.5) * inv_ss,
                            y as f64 + (sy as f64 + 0.5) * inv_ss,
                        );
                        sum += self.shade_pixel(camera, vehicle_pose, scene, px);
                    }
                }
                image.set(x, y, sum / (ss * ss) as f32);
            }
        }
        image
    }

    /// Luminance seen along the ray through a single (sub)pixel.
    fn shade_pixel(
        &self,
        camera: &Camera,
        vehicle_pose: &Pose,
        scene: &GroundScene,
        pixel: Vec2,
    ) -> f32 {
        let ray = camera.pixel_ray(vehicle_pose, pixel);
        let Some(t) = ray.intersect_horizontal_plane(scene.ground.ground_z) else {
            return self.config.sky_luminance;
        };
        let hit = ray.point_at(t);
        let ground_point = Vec2::new(hit.x, hit.y);
        let mut lum = self.ground_luminance(&scene.ground, ground_point);
        // Markers are painted on top of the terrain (last marker wins if they
        // overlap, which scenario generation avoids).
        for marker in &scene.markers {
            if let Some(marker_lum) = self.marker_luminance(marker, ground_point) {
                lum = marker_lum;
            }
        }
        // Shadows multiply whatever is underneath, markers included.
        for shadow in &scene.shadows {
            let d = ground_point.distance(shadow.center);
            if d <= shadow.radius {
                // Soft edge over the outer 20 % of the radius.
                let edge_start = shadow.radius * 0.8;
                let strength = if d <= edge_start || shadow.radius <= edge_start {
                    1.0
                } else {
                    1.0 - ((d - edge_start) / (shadow.radius - edge_start)) as f32
                };
                lum *= 1.0 - shadow.darkness * strength;
            }
        }
        lum.clamp(0.0, 1.0)
    }

    /// Procedural terrain luminance at a ground point (deterministic).
    fn ground_luminance(&self, ground: &GroundAppearance, p: Vec2) -> f32 {
        let scale = ground.texture_scale.max(1e-3);
        let gx = p.x / scale;
        let gy = p.y / scale;
        let x0 = gx.floor();
        let y0 = gy.floor();
        let fx = (gx - x0) as f32;
        let fy = (gy - y0) as f32;
        let n00 = hash_noise(x0 as i64, y0 as i64);
        let n10 = hash_noise(x0 as i64 + 1, y0 as i64);
        let n01 = hash_noise(x0 as i64, y0 as i64 + 1);
        let n11 = hash_noise(x0 as i64 + 1, y0 as i64 + 1);
        let top = n00 * (1.0 - fx) + n10 * fx;
        let bottom = n01 * (1.0 - fx) + n11 * fx;
        let noise = top * (1.0 - fy) + bottom * fy;
        ground.base_luminance + ground.texture_amplitude * (noise - 0.5) * 2.0
    }

    /// Luminance contributed by a marker at a ground point, or `None` when
    /// the point is outside the marker (and its quiet zone).
    fn marker_luminance(&self, marker: &MarkerPlacement, p: Vec2) -> Option<f32> {
        // Transform into the marker's local frame.
        let local = (p - marker.center).rotated(-marker.yaw);
        let half = marker.size / 2.0;
        let quiet = marker.size * self.config.quiet_zone_fraction;
        let outer = half + quiet;
        if local.x.abs() > outer || local.y.abs() > outer {
            return None;
        }
        if local.x.abs() > half || local.y.abs() > half {
            // Quiet zone: white paper around the printed pattern.
            return Some(self.config.marker_white);
        }
        // Inside the printed pattern: which cell?
        let cell_size = marker.size / MARKER_CELLS as f64;
        let col = (((local.x + half) / cell_size).floor() as i64).clamp(0, MARKER_CELLS as i64 - 1)
            as usize;
        let row = (((half - local.y) / cell_size).floor() as i64).clamp(0, MARKER_CELLS as i64 - 1)
            as usize;
        let value = match self.dictionary.cells(marker.id) {
            Ok(cells) => cells[row][col],
            // Unknown ids render as a blank white square (decoy marker).
            Err(VisionError::UnknownMarkerId { .. }) => 1.0,
            Err(_) => 1.0,
        };
        Some(if value > 0.5 {
            self.config.marker_white
        } else {
            self.config.marker_black
        })
    }
}

/// Deterministic per-cell noise in `[0, 1]` from integer coordinates.
fn hash_noise(x: i64, y: i64) -> f32 {
    let mut h = (x as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (y as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    (h & 0xFFFF) as f32 / 65535.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use mls_geom::Vec3;

    fn setup() -> (MarkerRenderer, Camera, Pose) {
        let renderer = MarkerRenderer::new(MarkerDictionary::standard());
        let camera = Camera::downward();
        let pose = Pose::from_position_yaw(Vec3::new(0.0, 0.0, 6.0), 0.0);
        (renderer, camera, pose)
    }

    #[test]
    fn renders_expected_dimensions() {
        let (renderer, camera, pose) = setup();
        let frame = renderer.render(&camera, &pose, &GroundScene::new());
        assert_eq!(frame.width(), camera.intrinsics.width);
        assert_eq!(frame.height(), camera.intrinsics.height);
    }

    #[test]
    fn empty_scene_is_textured_ground() {
        let (renderer, camera, pose) = setup();
        let frame = renderer.render(&camera, &pose, &GroundScene::new());
        let mean = frame.mean();
        assert!(mean > 0.3 && mean < 0.55, "ground mean {mean} out of range");
        // The procedural texture must produce some variation but no extremes.
        let (lo, hi) = frame.min_max();
        assert!(hi - lo > 0.01, "texture should vary");
        assert!(lo > 0.2 && hi < 0.7);
    }

    #[test]
    fn marker_under_vehicle_creates_dark_and_bright_pixels() {
        let (renderer, camera, pose) = setup();
        let scene = GroundScene::new().with_marker(MarkerPlacement::new(0, Vec2::ZERO, 1.2, 0.0));
        let frame = renderer.render(&camera, &pose, &scene);
        let (lo, hi) = frame.min_max();
        assert!(lo < 0.15, "black marker cells should be visible, min {lo}");
        assert!(hi > 0.8, "white marker cells should be visible, max {hi}");
    }

    #[test]
    fn marker_center_pixel_differs_from_plain_ground() {
        let (renderer, camera, pose) = setup();
        let without = renderer.render(&camera, &pose, &GroundScene::new());
        let with = renderer.render(
            &camera,
            &pose,
            &GroundScene::new().with_marker(MarkerPlacement::new(3, Vec2::ZERO, 1.2, 0.4)),
        );
        let cx = camera.intrinsics.width / 2;
        let cy = camera.intrinsics.height / 2;
        // A reasonably sized patch around the image center must change.
        let mut diff = 0.0f32;
        for dy in 0..10 {
            for dx in 0..10 {
                diff += (with.get(cx - 5 + dx, cy - 5 + dy)
                    - without.get(cx - 5 + dx, cy - 5 + dy))
                .abs();
            }
        }
        assert!(
            diff > 1.0,
            "marker should alter the image center, diff {diff}"
        );
    }

    #[test]
    fn shadow_darkens_region() {
        let (renderer, camera, pose) = setup();
        let plain = renderer.render(&camera, &pose, &GroundScene::new());
        let shadowed_scene = GroundScene::new().with_shadow(ShadowDisc {
            center: Vec2::ZERO,
            radius: 2.0,
            darkness: 0.8,
        });
        let shadowed = renderer.render(&camera, &pose, &shadowed_scene);
        let cx = camera.intrinsics.width / 2;
        let cy = camera.intrinsics.height / 2;
        assert!(shadowed.get(cx, cy) < plain.get(cx, cy) * 0.5);
    }

    #[test]
    fn sky_is_rendered_when_camera_points_up() {
        let renderer = MarkerRenderer::new(MarkerDictionary::standard());
        let camera = Camera::downward();
        // Roll the vehicle fully upside down: the downward camera now sees sky.
        let pose = Pose::new(
            Vec3::new(0.0, 0.0, 5.0),
            mls_geom::Attitude::new(std::f64::consts::PI, 0.0, 0.0),
        );
        let frame = renderer.render(&camera, &pose, &GroundScene::new());
        assert!((frame.mean() - renderer.config().sky_luminance).abs() < 0.05);
    }

    #[test]
    fn unknown_marker_id_renders_as_blank_square() {
        let (renderer, camera, pose) = setup();
        let scene =
            GroundScene::new().with_marker(MarkerPlacement::new(9999, Vec2::ZERO, 1.2, 0.0));
        let frame = renderer.render(&camera, &pose, &scene);
        // Center of the image should be bright (white square), never panic.
        let cx = camera.intrinsics.width / 2;
        let cy = camera.intrinsics.height / 2;
        assert!(frame.get(cx, cy) > 0.8);
    }

    #[test]
    fn higher_altitude_shrinks_marker_footprint() {
        let renderer = MarkerRenderer::new(MarkerDictionary::standard());
        let camera = Camera::downward();
        let scene = GroundScene::new().with_marker(MarkerPlacement::new(0, Vec2::ZERO, 1.0, 0.0));
        let count_dark = |altitude: f64| {
            let pose = Pose::from_position_yaw(Vec3::new(0.0, 0.0, altitude), 0.0);
            let frame = renderer.render(&camera, &pose, &scene);
            frame.data().iter().filter(|&&v| v < 0.15).count()
        };
        let low = count_dark(4.0);
        let high = count_dark(16.0);
        assert!(
            low > high * 4,
            "marker should cover many more pixels at low altitude ({low} vs {high})"
        );
    }

    #[test]
    fn hash_noise_is_deterministic_and_bounded() {
        for x in -20..20 {
            for y in -20..20 {
                let n = hash_noise(x, y);
                assert!((0.0..=1.0).contains(&n));
                assert_eq!(n, hash_noise(x, y));
            }
        }
    }
}
