//! Synthetic camera imaging and fiducial-marker detection for the
//! autonomous-landing reproduction.
//!
//! The paper's marker-detection module exists in two generations:
//!
//! * **MLS-V1** uses a *classical* OpenCV ArUco pipeline (adaptive threshold,
//!   quad extraction, perspective unwarp, bit decoding). We re-implement that
//!   pipeline from scratch in [`classical`].
//! * **MLS-V2/V3** use *TPH-YOLO*, a transformer-augmented YOLOv5 trained on a
//!   synthetic AirSim dataset. We cannot train a deep network here, so
//!   [`learned`] provides a *trained-model surrogate*: a multi-scale
//!   template-correlation detector whose robustness margins are calibrated by
//!   an offline synthetic training pass ([`training`]). The surrogate keeps
//!   the property the paper actually measures — markedly better detection
//!   under blur, occlusion, glare, low light and sensor noise — while running
//!   on the very same rendered frames as the classical detector.
//!
//! Everything upstream of the detectors is also here: a tiny grayscale image
//! type ([`GrayImage`]), a pinhole camera ([`Camera`]), an ArUco-style marker
//! dictionary ([`MarkerDictionary`]), a ground-scene renderer
//! ([`MarkerRenderer`]) and an image-degradation pipeline ([`ImageDegrader`])
//! modelling the weather and lighting effects of the paper's evaluation.
//!
//! # Examples
//!
//! Render a frame of a marker from 8 m altitude and detect it with both
//! detectors:
//!
//! ```
//! use mls_geom::{Pose, Vec2, Vec3};
//! use mls_vision::{
//!     Camera, ClassicalDetector, GroundScene, LearnedDetector, MarkerDetector,
//!     MarkerDictionary, MarkerPlacement, MarkerRenderer,
//! };
//!
//! let dictionary = MarkerDictionary::standard();
//! let renderer = MarkerRenderer::new(dictionary.clone());
//! let scene = GroundScene::new().with_marker(MarkerPlacement::new(3, Vec2::ZERO, 1.0, 0.0));
//! let pose = Pose::from_position_yaw(Vec3::new(0.0, 0.0, 8.0), 0.0);
//! let camera = Camera::downward();
//! let frame = renderer.render(&camera, &pose, &scene);
//!
//! let classical = ClassicalDetector::new(dictionary.clone());
//! let learned = LearnedDetector::new(dictionary);
//! assert!(classical.detect(&frame).iter().any(|d| d.id == 3));
//! assert!(learned.detect(&frame).iter().any(|d| d.id == 3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

mod camera;
pub mod classical;
mod degrade;
mod detection;
mod dictionary;
mod homography;
mod image;
pub mod learned;
mod renderer;
pub mod training;

pub use camera::{Camera, CameraIntrinsics, CameraMount};
pub use classical::{ClassicalDetector, ClassicalDetectorConfig};
pub use degrade::{DegradationConfig, ImageDegrader, LightingCondition, WeatherKind};
pub use detection::{Detection, MarkerDetector, MarkerObservation};
pub use dictionary::{DictionaryMatch, MarkerCode, MarkerDictionary, MARKER_CELLS, PAYLOAD_CELLS};
pub use homography::Homography;
pub use image::{GrayImage, IntegralImage};
pub use learned::{LearnedDetector, LearnedDetectorConfig};
pub use renderer::{
    GroundAppearance, GroundScene, MarkerPlacement, MarkerRenderer, RendererConfig, ShadowDisc,
};
pub use training::{TrainingConfig, TrainingReport, TrainingSample};

/// Errors produced by the vision crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VisionError {
    /// Raw pixel buffer length did not match the requested dimensions.
    DimensionMismatch {
        /// Number of samples implied by `width * height`.
        expected: usize,
        /// Number of samples actually supplied.
        actual: usize,
    },
    /// The dictionary generator could not produce the requested number of
    /// codes at the requested minimum Hamming distance.
    DictionaryGeneration {
        /// Number of codes requested.
        requested: usize,
        /// Number of codes that could be generated.
        generated: usize,
    },
    /// A marker id was requested that is not present in the dictionary.
    UnknownMarkerId {
        /// The offending id.
        id: u32,
    },
    /// A world point projected behind the camera.
    BehindCamera,
    /// A homography or pose-estimation problem was geometrically degenerate
    /// (collinear correspondences, zero-area quads, ...).
    DegenerateGeometry,
    /// A detector or training configuration value was out of range.
    InvalidConfig {
        /// Human-readable description of the invalid parameter.
        reason: String,
    },
}

impl fmt::Display for VisionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VisionError::DimensionMismatch { expected, actual } => {
                write!(f, "pixel buffer has {actual} samples, expected {expected}")
            }
            VisionError::DictionaryGeneration {
                requested,
                generated,
            } => write!(
                f,
                "could only generate {generated} of {requested} dictionary codes"
            ),
            VisionError::UnknownMarkerId { id } => {
                write!(f, "marker id {id} is not in the dictionary")
            }
            VisionError::BehindCamera => write!(f, "point projects behind the camera"),
            VisionError::DegenerateGeometry => write!(f, "degenerate geometry"),
            VisionError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
        }
    }
}

impl Error for VisionError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_send_sync_and_display() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<VisionError>();
        let err = VisionError::UnknownMarkerId { id: 7 };
        assert!(err.to_string().contains('7'));
        let err = VisionError::DimensionMismatch {
            expected: 4,
            actual: 3,
        };
        assert!(err.to_string().contains("expected 4"));
    }
}
