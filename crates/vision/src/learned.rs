//! Learned-detector surrogate for TPH-YOLO.
//!
//! The paper replaces the OpenCV ArUco pipeline with TPH-YOLO — a YOLOv5
//! variant with transformer prediction heads — trained on a synthetic AirSim
//! dataset with brightness/contrast/noise augmentation. Training a deep
//! network is out of scope for this reproduction, so this module provides a
//! *trained-model surrogate* that preserves the property the paper measures:
//! markedly higher detection robustness under degraded imaging (fog, glare,
//! low light, motion blur, partial occlusion, small apparent marker size)
//! at a much higher computational cost per frame.
//!
//! The surrogate works like a modern detector head rather than a hard-coded
//! decoder:
//!
//! 1. local contrast normalisation of the whole frame (the "backbone"),
//! 2. permissive candidate proposal from dark connected components
//!    (the "region proposals"),
//! 3. corner refinement by hill-climbing on the decode score
//!    (the "regression head"),
//! 4. soft-bit decoding: every cell contributes a weighted vote against every
//!    dictionary code in all four rotations (the "classification head"),
//! 5. an acceptance threshold on the soft score that is *calibrated offline*
//!    by [`crate::training`] on synthetic degraded imagery (the "training").

use mls_geom::Vec2;
use serde::{Deserialize, Serialize};

use crate::classical::{
    adaptive_dark_mask, connected_components, dedupe_detections, quad_from_points,
    quad_is_plausible, sample_cells,
};
use crate::{Detection, GrayImage, MarkerDetector, MarkerDictionary, MARKER_CELLS};

/// Configuration of the learned-detector surrogate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LearnedDetectorConfig {
    /// Half-size (pixels) of the local-normalisation window.
    pub normalization_window: usize,
    /// Adaptive-threshold constant used for candidate proposal (much more
    /// permissive than the classical pipeline).
    pub proposal_constant: f32,
    /// Minimum proposal area in pixels.
    pub min_component_area: usize,
    /// Maximum proposal area as a fraction of the image.
    pub max_component_area_fraction: f64,
    /// Minimum quad side length in pixels (the surrogate decodes smaller
    /// markers than the classical pipeline).
    pub min_quad_side: f64,
    /// Maximum allowed ratio between the longest and shortest quad side.
    pub max_side_ratio: f64,
    /// Per-axis sub-samples per marker cell.
    pub cell_subsamples: usize,
    /// Corner-refinement hill-climbing iterations.
    pub refinement_iterations: usize,
    /// Corner-refinement step in pixels.
    pub refinement_step: f64,
    /// Soft-score acceptance threshold in `[0, 1]`; calibrated by training.
    pub acceptance_threshold: f64,
    /// Required margin between the best and second-best dictionary code.
    pub min_margin: f64,
    /// Relative inference cost versus the classical pipeline (TensorRT-
    /// optimised TPH-YOLO is still far heavier than ArUco decoding).
    pub relative_cost: f64,
}

impl Default for LearnedDetectorConfig {
    fn default() -> Self {
        Self {
            normalization_window: 10,
            proposal_constant: 0.035,
            min_component_area: 16,
            max_component_area_fraction: 0.5,
            min_quad_side: 4.0,
            max_side_ratio: 2.6,
            cell_subsamples: 4,
            refinement_iterations: 2,
            refinement_step: 0.75,
            acceptance_threshold: 0.72,
            min_margin: 0.08,
            relative_cost: 35.0,
        }
    }
}

/// A scored marker hypothesis produced before thresholding.
///
/// [`crate::training`] uses these raw scores to calibrate the acceptance
/// threshold; [`LearnedDetector::detect`] simply filters them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoredCandidate {
    /// Best-matching dictionary id.
    pub id: u32,
    /// Refined quad corners.
    pub corners: [Vec2; 4],
    /// Candidate centre in pixels.
    pub center: Vec2,
    /// Soft match score in `[0, 1]`.
    pub score: f64,
    /// Margin to the second-best dictionary code.
    pub margin: f64,
}

/// The MLS-V2/V3 marker detector (TPH-YOLO surrogate).
///
/// # Examples
///
/// ```
/// use mls_geom::{Pose, Vec2, Vec3};
/// use mls_vision::{
///     Camera, GroundScene, LearnedDetector, MarkerDetector, MarkerDictionary,
///     MarkerPlacement, MarkerRenderer,
/// };
///
/// let dict = MarkerDictionary::standard();
/// let renderer = MarkerRenderer::new(dict.clone());
/// let scene = GroundScene::new().with_marker(MarkerPlacement::new(9, Vec2::ZERO, 1.0, 0.2));
/// let pose = Pose::from_position_yaw(Vec3::new(0.0, 0.0, 9.0), 0.0);
/// let frame = renderer.render(&Camera::downward(), &pose, &scene);
/// let detections = LearnedDetector::new(dict).detect(&frame);
/// assert_eq!(detections[0].id, 9);
/// ```
#[derive(Debug, Clone)]
pub struct LearnedDetector {
    dictionary: MarkerDictionary,
    config: LearnedDetectorConfig,
}

impl LearnedDetector {
    /// Creates a detector with the default (pre-calibrated) configuration.
    pub fn new(dictionary: MarkerDictionary) -> Self {
        Self::with_config(dictionary, LearnedDetectorConfig::default())
    }

    /// Creates a detector with an explicit configuration.
    pub fn with_config(dictionary: MarkerDictionary, config: LearnedDetectorConfig) -> Self {
        Self { dictionary, config }
    }

    /// The dictionary markers are decoded against.
    pub fn dictionary(&self) -> &MarkerDictionary {
        &self.dictionary
    }

    /// The active configuration.
    pub fn config(&self) -> &LearnedDetectorConfig {
        &self.config
    }

    /// Replaces the acceptance threshold (used by offline calibration).
    pub fn set_acceptance_threshold(&mut self, threshold: f64) {
        self.config.acceptance_threshold = threshold.clamp(0.0, 1.0);
    }

    /// Produces every scored hypothesis for a frame, *without* applying the
    /// acceptance threshold. Sorted by descending score.
    pub fn score_candidates(&self, image: &GrayImage) -> Vec<ScoredCandidate> {
        let cfg = &self.config;
        let normalized = normalize_local_contrast(image, cfg.normalization_window);
        let mask = adaptive_dark_mask(&normalized, cfg.normalization_window, cfg.proposal_constant);
        let components = connected_components(
            &mask,
            image.width(),
            image.height(),
            cfg.min_component_area,
            (cfg.max_component_area_fraction * (image.width() * image.height()) as f64) as usize,
        );

        let mut candidates = Vec::new();
        for component in &components {
            let Some(mut corners) = quad_from_points(component) else {
                continue;
            };
            if !quad_is_plausible(&corners, cfg.min_quad_side, cfg.max_side_ratio) {
                continue;
            }
            // Corner refinement: hill-climb each corner to maximise the soft
            // decode score on the *normalised* image.
            let mut best = self.soft_score(&normalized, &corners);
            for _ in 0..cfg.refinement_iterations {
                let mut improved = false;
                for i in 0..4 {
                    let original = corners[i];
                    let mut best_offset = original;
                    for (dx, dy) in [
                        (-1.0, 0.0),
                        (1.0, 0.0),
                        (0.0, -1.0),
                        (0.0, 1.0),
                        (-1.0, -1.0),
                        (1.0, 1.0),
                        (-1.0, 1.0),
                        (1.0, -1.0),
                    ] {
                        corners[i] = Vec2::new(
                            original.x + dx * cfg.refinement_step,
                            original.y + dy * cfg.refinement_step,
                        );
                        if let Some(s) = self.soft_score(&normalized, &corners) {
                            if best.as_ref().map(|b| s.score > b.score).unwrap_or(true) {
                                best_offset = corners[i];
                                best = Some(s);
                                improved = true;
                            }
                        }
                    }
                    corners[i] = best_offset;
                }
                if !improved {
                    break;
                }
            }
            if let Some(scored) = best {
                candidates.push(scored);
            }
        }
        candidates.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        candidates
    }

    /// Soft-decodes the quad against the whole dictionary.
    fn soft_score(&self, image: &GrayImage, corners: &[Vec2; 4]) -> Option<ScoredCandidate> {
        let cells = sample_cells(image, corners, self.config.cell_subsamples)?;
        let (mut min, mut max) = (f32::INFINITY, f32::NEG_INFINITY);
        for row in &cells {
            for &v in row {
                min = min.min(v);
                max = max.max(v);
            }
        }
        let contrast = (max - min).max(1e-4);
        let threshold = (min + max) / 2.0;

        // Per-cell soft bit and confidence weight.
        let bit = |row: usize, col: usize| -> (f64, f64) {
            let v = cells[row][col];
            let value = if v >= threshold { 1.0 } else { 0.0 };
            let weight = (((v - threshold).abs() / (contrast / 2.0)) as f64).clamp(0.0, 1.0);
            (value, weight)
        };

        // Border score: border cells should be black.
        let mut border_score = 0.0;
        let mut border_cells = 0.0;
        for row in 0..MARKER_CELLS {
            for col in 0..MARKER_CELLS {
                let is_border =
                    row == 0 || col == 0 || row == MARKER_CELLS - 1 || col == MARKER_CELLS - 1;
                if is_border {
                    let (value, weight) = bit(row, col);
                    let agreement = if value < 0.5 { 1.0 } else { 0.0 };
                    border_score += weight * agreement + (1.0 - weight) * 0.5;
                    border_cells += 1.0;
                }
            }
        }
        border_score /= border_cells;

        // Payload score against every code and rotation.
        let payload_cells = MARKER_CELLS - 2;
        let mut observed = [[0.0f64; 4]; 4];
        let mut weights = [[0.0f64; 4]; 4];
        for row in 0..payload_cells {
            for col in 0..payload_cells {
                let (value, weight) = bit(row + 1, col + 1);
                observed[row][col] = value;
                weights[row][col] = weight;
            }
        }

        let mut scored_codes: Vec<(u32, f64)> = Vec::with_capacity(self.dictionary.len());
        for (id, code) in self.dictionary.iter() {
            let mut best_rotation_score = 0.0f64;
            for rotation in 0..4 {
                let mut score = 0.0;
                for row in 0..payload_cells {
                    for col in 0..payload_cells {
                        let (r, c) = rotate_cell(row, col, rotation, payload_cells);
                        let expected = if code & (1 << (r * payload_cells + c)) != 0 {
                            1.0
                        } else {
                            0.0
                        };
                        let w = weights[row][col];
                        let agreement = if (observed[row][col] - expected).abs() < 0.5 {
                            1.0
                        } else {
                            0.0
                        };
                        score += w * agreement + (1.0 - w) * 0.5;
                    }
                }
                best_rotation_score =
                    best_rotation_score.max(score / (payload_cells * payload_cells) as f64);
            }
            scored_codes.push((id, best_rotation_score));
        }
        scored_codes.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let (id, payload_score) = *scored_codes.first()?;
        let second = scored_codes.get(1).map(|s| s.1).unwrap_or(0.0);
        let contrast_factor = ((contrast as f64) / 0.12).clamp(0.0, 1.0);
        let score = (0.6 * payload_score + 0.4 * border_score) * (0.4 + 0.6 * contrast_factor);
        Some(ScoredCandidate {
            id,
            corners: *corners,
            center: Vec2::new(
                corners.iter().map(|c| c.x).sum::<f64>() / 4.0,
                corners.iter().map(|c| c.y).sum::<f64>() / 4.0,
            ),
            score,
            margin: payload_score - second,
        })
    }
}

impl MarkerDetector for LearnedDetector {
    fn detect(&self, image: &GrayImage) -> Vec<Detection> {
        let cfg = &self.config;
        let detections: Vec<Detection> = self
            .score_candidates(image)
            .into_iter()
            .filter(|c| c.score >= cfg.acceptance_threshold && c.margin >= cfg.min_margin)
            .map(|c| {
                // Like the paper's TPH-YOLO, the surrogate does not estimate
                // marker orientation.
                Detection::from_corners(c.id, c.corners, c.score)
            })
            .collect();
        dedupe_detections(detections)
    }

    fn name(&self) -> &str {
        "tph-yolo-surrogate"
    }

    fn relative_cost(&self) -> f64 {
        self.config.relative_cost
    }
}

/// Rotates payload cell coordinates by `rotation` clockwise quarter turns.
fn rotate_cell(row: usize, col: usize, rotation: usize, n: usize) -> (usize, usize) {
    match rotation % 4 {
        0 => (row, col),
        1 => (col, n - 1 - row),
        2 => (n - 1 - row, n - 1 - col),
        _ => (n - 1 - col, row),
    }
}

/// Subtracts the local mean and re-expands the local contrast of a frame,
/// producing an image whose marker/background separation survives fog, glare
/// and low light much better than the raw luminance.
pub(crate) fn normalize_local_contrast(image: &GrayImage, window: usize) -> GrayImage {
    let w = image.width();
    let h = image.height();
    let integral = image.integral();
    let mut out = GrayImage::new(w, h);
    let r = window as i64;
    // First pass: local mean removal.
    let mut centred = vec![0.0f32; w * h];
    let mut max_abs = 1e-4f32;
    for y in 0..h {
        for x in 0..w {
            let mean = integral.region_mean(x as i64 - r, y as i64 - r, x as i64 + r, y as i64 + r);
            let v = image.get(x, y) - mean;
            centred[y * w + x] = v;
            max_abs = max_abs.max(v.abs());
        }
    }
    // Second pass: re-expand into [0, 1] around 0.5.
    for y in 0..h {
        for x in 0..w {
            out.set(x, y, 0.5 + 0.5 * centred[y * w + x] / max_abs);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        Camera, ClassicalDetector, DegradationConfig, GroundScene, ImageDegrader,
        LightingCondition, MarkerPlacement, MarkerRenderer, WeatherKind,
    };
    use mls_geom::{Pose, Vec3};

    fn render(id: u32, altitude: f64, size: f64, yaw: f64) -> GrayImage {
        let dict = MarkerDictionary::standard();
        let renderer = MarkerRenderer::new(dict);
        let scene = GroundScene::new().with_marker(MarkerPlacement::new(id, Vec2::ZERO, size, yaw));
        let pose = Pose::from_position_yaw(Vec3::new(0.0, 0.0, altitude), 0.0);
        renderer.render(&Camera::downward(), &pose, &scene)
    }

    #[test]
    fn detects_clean_marker() {
        let frame = render(9, 8.0, 1.0, 0.3);
        let detections = LearnedDetector::new(MarkerDictionary::standard()).detect(&frame);
        assert!(!detections.is_empty());
        assert_eq!(detections[0].id, 9);
        // The surrogate, like TPH-YOLO, does not report orientation.
        assert!(detections[0].orientation.is_none());
    }

    #[test]
    fn more_robust_than_classical_under_degradation() {
        // Sweep a handful of degraded conditions; the learned surrogate must
        // detect in at least as many conditions as the classical detector,
        // and strictly more across the sweep (the Table II property).
        let dict = MarkerDictionary::standard();
        let classical = ClassicalDetector::new(dict.clone());
        let learned = LearnedDetector::new(dict);
        let mut classical_hits = 0;
        let mut learned_hits = 0;
        let mut cases = 0;
        for (i, weather) in WeatherKind::ALL.iter().enumerate() {
            for (j, lighting) in LightingCondition::ALL.iter().enumerate() {
                for (k, altitude) in [7.0, 10.0, 13.0].iter().enumerate() {
                    let frame = render(5, *altitude, 1.5, 0.2);
                    let cfg = DegradationConfig::for_conditions(*weather, *lighting);
                    let seed = (i * 100 + j * 10 + k) as u64;
                    let degraded = ImageDegrader::new(cfg, seed).apply(&frame);
                    cases += 1;
                    if classical.detect(&degraded).iter().any(|d| d.id == 5) {
                        classical_hits += 1;
                    }
                    if learned.detect(&degraded).iter().any(|d| d.id == 5) {
                        learned_hits += 1;
                    }
                }
            }
        }
        assert!(
            learned_hits > classical_hits,
            "learned {learned_hits}/{cases} should beat classical {classical_hits}/{cases}"
        );
        assert!(
            learned_hits as f64 >= 0.6 * cases as f64,
            "learned should detect in most conditions, got {learned_hits}/{cases}"
        );
    }

    #[test]
    fn no_detection_on_empty_scene() {
        let dict = MarkerDictionary::standard();
        let renderer = MarkerRenderer::new(dict.clone());
        let pose = Pose::from_position_yaw(Vec3::new(0.0, 0.0, 10.0), 0.0);
        let frame = renderer.render(&Camera::downward(), &pose, &GroundScene::new());
        assert!(LearnedDetector::new(dict).detect(&frame).is_empty());
    }

    #[test]
    fn score_candidates_reports_scores_in_unit_range() {
        let frame = render(3, 9.0, 1.0, 0.0);
        let detector = LearnedDetector::new(MarkerDictionary::standard());
        let candidates = detector.score_candidates(&frame);
        assert!(!candidates.is_empty());
        for c in &candidates {
            assert!((0.0..=1.0).contains(&c.score), "score {}", c.score);
        }
        // Best candidate should identify the true marker.
        assert_eq!(candidates[0].id, 3);
    }

    #[test]
    fn threshold_can_be_recalibrated() {
        let mut detector = LearnedDetector::new(MarkerDictionary::standard());
        detector.set_acceptance_threshold(0.99);
        let frame = render(3, 9.0, 1.0, 0.0);
        // With an absurd threshold nothing passes.
        assert!(detector.detect(&frame).is_empty());
        detector.set_acceptance_threshold(0.5);
        assert!(!detector.detect(&frame).is_empty());
    }

    #[test]
    fn rotate_cell_is_a_bijection() {
        for rotation in 0..4 {
            let mut seen = [[false; 4]; 4];
            for row in 0..4 {
                for col in 0..4 {
                    let (r, c) = rotate_cell(row, col, rotation, 4);
                    assert!(!seen[r][c]);
                    seen[r][c] = true;
                }
            }
        }
    }

    #[test]
    fn normalization_recovers_contrast_under_fog() {
        let frame = render(5, 8.0, 1.0, 0.0);
        let cfg = DegradationConfig::for_conditions(WeatherKind::Fog, LightingCondition::LowLight);
        let degraded = ImageDegrader::new(cfg, 3).apply(&frame);
        let normalized = normalize_local_contrast(&degraded, 10);
        let (dmin, dmax) = degraded.min_max();
        let (nmin, nmax) = normalized.min_max();
        assert!(nmax - nmin > (dmax - dmin) * 0.9);
    }

    #[test]
    fn relative_cost_reflects_heavier_model() {
        let detector = LearnedDetector::new(MarkerDictionary::standard());
        assert!(detector.relative_cost() > 10.0);
    }
}
