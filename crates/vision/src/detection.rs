//! Detector-facing types: pixel-space detections, the [`MarkerDetector`]
//! trait implemented by the classical and learned pipelines, and the lifting
//! of detections into world-frame marker observations.

use mls_geom::{Pose, Vec2, Vec3};
use serde::{Deserialize, Serialize};

use crate::{Camera, GrayImage};

/// A single marker detection in pixel space.
///
/// Both detector generations produce this type. The classical pipeline also
/// estimates the in-plane marker orientation from the decoded rotation; the
/// learned surrogate — like the paper's TPH-YOLO, which "was not trained for
/// marker orientation estimation" — leaves [`Detection::orientation`] empty.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    /// Decoded marker id.
    pub id: u32,
    /// Pixel coordinates of the marker center.
    pub center: Vec2,
    /// Pixel coordinates of the four marker corners (counter-clockwise in
    /// image coordinates, starting from the corner that maps to the marker's
    /// top-left cell when known).
    pub corners: [Vec2; 4],
    /// Detector confidence in `[0, 1]`.
    pub confidence: f64,
    /// Apparent side length of the marker in pixels (mean of the four edges).
    pub apparent_size: f64,
    /// In-plane marker orientation in the image (radians), when the detector
    /// recovers it.
    pub orientation: Option<f64>,
}

impl Detection {
    /// Builds a detection, deriving `center` and `apparent_size` from the
    /// corners.
    pub fn from_corners(id: u32, corners: [Vec2; 4], confidence: f64) -> Self {
        let center = Vec2::new(
            corners.iter().map(|c| c.x).sum::<f64>() / 4.0,
            corners.iter().map(|c| c.y).sum::<f64>() / 4.0,
        );
        let mut perimeter = 0.0;
        for i in 0..4 {
            perimeter += corners[i].distance(corners[(i + 1) % 4]);
        }
        Self {
            id,
            center,
            corners,
            confidence: confidence.clamp(0.0, 1.0),
            apparent_size: perimeter / 4.0,
            orientation: None,
        }
    }

    /// Returns the same detection with an orientation estimate attached.
    pub fn with_orientation(mut self, orientation: f64) -> Self {
        self.orientation = Some(orientation);
        self
    }

    /// Quadrilateral area in square pixels (shoelace formula).
    pub fn area(&self) -> f64 {
        let c = &self.corners;
        let mut area = 0.0;
        for i in 0..4 {
            let j = (i + 1) % 4;
            area += c[i].x * c[j].y - c[j].x * c[i].y;
        }
        area.abs() / 2.0
    }
}

/// A marker detector operating on rendered (and possibly degraded) camera
/// frames.
///
/// The trait is object safe so the landing system can swap detector
/// generations behind a `Box<dyn MarkerDetector>`.
pub trait MarkerDetector: Send + Sync {
    /// Detects markers in a grayscale frame.
    ///
    /// Detections are returned in descending confidence order. An empty
    /// vector means no marker was found (a *false negative* when a marker was
    /// actually visible — the metric of Table II).
    fn detect(&self, image: &GrayImage) -> Vec<Detection>;

    /// Short human-readable name used in reports ("opencv-aruco",
    /// "tph-yolo-surrogate").
    fn name(&self) -> &str;

    /// Relative computational cost of one inference compared to the classical
    /// detector (used by the compute model; TPH-YOLO is far heavier than the
    /// OpenCV pipeline even after TensorRT conversion).
    fn relative_cost(&self) -> f64 {
        1.0
    }
}

impl<D: MarkerDetector + ?Sized> MarkerDetector for Box<D> {
    fn detect(&self, image: &GrayImage) -> Vec<Detection> {
        (**self).detect(image)
    }

    fn name(&self) -> &str {
        (**self).name()
    }

    fn relative_cost(&self) -> f64 {
        (**self).relative_cost()
    }
}

/// A detection lifted into the world frame using the camera geometry and the
/// vehicle's (estimated) pose.
///
/// This is what the decision-making module consumes: a marker id, an estimate
/// of where that marker sits on the ground, and how much the detector trusts
/// it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarkerObservation {
    /// Decoded marker id.
    pub id: u32,
    /// Estimated world position of the marker center (on the ground plane).
    pub world_position: Vec3,
    /// Detector confidence in `[0, 1]`.
    pub confidence: f64,
    /// Apparent marker size in pixels when observed.
    pub apparent_size: f64,
    /// Estimated physical marker side length in metres (from the apparent
    /// size and the range to the ground), useful for sanity checks against
    /// the expected marker size.
    pub estimated_size: f64,
    /// The pixel-space detection this observation was lifted from.
    pub detection: Detection,
}

impl MarkerObservation {
    /// Lifts a pixel-space detection into the world frame.
    ///
    /// The marker is assumed to lie on the horizontal plane `z = ground_z`
    /// (the paper lands on flat static targets). Returns `None` when the ray
    /// through the detection center does not hit that plane in front of the
    /// camera (e.g. the vehicle is banked so far the camera sees the sky).
    pub fn from_detection(
        camera: &Camera,
        vehicle_pose: &Pose,
        detection: &Detection,
        ground_z: f64,
    ) -> Option<Self> {
        let ray = camera.pixel_ray(vehicle_pose, detection.center);
        let t = ray.intersect_horizontal_plane(ground_z)?;
        let world = ray.point_at(t);

        // Estimate the physical size: project two adjacent corners onto the
        // ground plane and measure their separation.
        let mut estimated_size = 0.0;
        let mut edges = 0usize;
        for i in 0..4 {
            let a = camera.pixel_ray(vehicle_pose, detection.corners[i]);
            let b = camera.pixel_ray(vehicle_pose, detection.corners[(i + 1) % 4]);
            if let (Some(ta), Some(tb)) = (
                a.intersect_horizontal_plane(ground_z),
                b.intersect_horizontal_plane(ground_z),
            ) {
                estimated_size += a.point_at(ta).distance(b.point_at(tb));
                edges += 1;
            }
        }
        if edges > 0 {
            estimated_size /= edges as f64;
        }

        Some(Self {
            id: detection.id,
            world_position: world,
            confidence: detection.confidence,
            apparent_size: detection.apparent_size,
            estimated_size,
            detection: detection.clone(),
        })
    }

    /// Horizontal distance between this observation and another world point.
    pub fn horizontal_error_to(&self, truth: Vec3) -> f64 {
        self.world_position.horizontal_distance(truth)
    }
}

/// Orders a raw set of four corner points counter-clockwise (in image
/// coordinates, i.e. clockwise on screen where y grows downward) around
/// their centroid, starting from the corner with the smallest angle.
pub(crate) fn order_corners(mut corners: [Vec2; 4]) -> [Vec2; 4] {
    let cx = corners.iter().map(|c| c.x).sum::<f64>() / 4.0;
    let cy = corners.iter().map(|c| c.y).sum::<f64>() / 4.0;
    corners.sort_by(|a, b| {
        let aa = (a.y - cy).atan2(a.x - cx);
        let ab = (b.y - cy).atan2(b.x - cx);
        aa.partial_cmp(&ab).unwrap_or(std::cmp::Ordering::Equal)
    });
    corners
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CameraIntrinsics;
    use mls_geom::Attitude;

    fn square_detection(center: Vec2, half: f64) -> Detection {
        Detection::from_corners(
            5,
            [
                Vec2::new(center.x - half, center.y - half),
                Vec2::new(center.x + half, center.y - half),
                Vec2::new(center.x + half, center.y + half),
                Vec2::new(center.x - half, center.y + half),
            ],
            0.9,
        )
    }

    #[test]
    fn from_corners_derives_center_and_size() {
        let d = square_detection(Vec2::new(80.0, 60.0), 10.0);
        assert!((d.center.x - 80.0).abs() < 1e-9);
        assert!((d.center.y - 60.0).abs() < 1e-9);
        assert!((d.apparent_size - 20.0).abs() < 1e-9);
        assert!((d.area() - 400.0).abs() < 1e-9);
        assert!(d.orientation.is_none());
    }

    #[test]
    fn confidence_is_clamped() {
        let d = Detection::from_corners(1, [Vec2::ZERO; 4], 3.0);
        assert!((d.confidence - 1.0).abs() < 1e-12);
        let d = Detection::from_corners(1, [Vec2::ZERO; 4], -1.0);
        assert_eq!(d.confidence, 0.0);
    }

    #[test]
    fn observation_at_nadir_recovers_marker_under_vehicle() {
        let camera = Camera::downward();
        let pose = Pose::from_position_yaw(Vec3::new(2.0, -3.0, 10.0), 0.0);
        // A detection exactly at the principal point maps to the ground point
        // directly below the vehicle.
        let center = Vec2::new(camera.intrinsics.cx, camera.intrinsics.cy);
        let d = square_detection(center, 8.0);
        let obs = MarkerObservation::from_detection(&camera, &pose, &d, 0.0)
            .expect("nadir ray must hit the ground");
        assert!(
            obs.world_position
                .horizontal_distance(Vec3::new(2.0, -3.0, 0.0))
                < 1e-6
        );
        assert!((obs.world_position.z - 0.0).abs() < 1e-9);
        assert!(obs.estimated_size > 0.0);
    }

    #[test]
    fn observation_estimated_size_scales_with_altitude() {
        let camera = Camera::downward();
        let d = square_detection(Vec2::new(camera.intrinsics.cx, camera.intrinsics.cy), 10.0);
        let low = MarkerObservation::from_detection(
            &camera,
            &Pose::from_position_yaw(Vec3::new(0.0, 0.0, 5.0), 0.0),
            &d,
            0.0,
        )
        .unwrap();
        let high = MarkerObservation::from_detection(
            &camera,
            &Pose::from_position_yaw(Vec3::new(0.0, 0.0, 15.0), 0.0),
            &d,
            0.0,
        )
        .unwrap();
        // Same pixels seen from 3x the altitude correspond to a 3x larger
        // physical footprint.
        assert!((high.estimated_size / low.estimated_size - 3.0).abs() < 1e-6);
    }

    #[test]
    fn observation_fails_when_camera_sees_sky() {
        let camera = Camera::downward();
        // Rolled 180 degrees: the downward camera now looks up.
        let pose = Pose::new(
            Vec3::new(0.0, 0.0, 10.0),
            Attitude::new(std::f64::consts::PI, 0.0, 0.0),
        );
        let d = square_detection(Vec2::new(camera.intrinsics.cx, camera.intrinsics.cy), 8.0);
        assert!(MarkerObservation::from_detection(&camera, &pose, &d, 0.0).is_none());
    }

    #[test]
    fn order_corners_is_counter_clockwise_by_angle() {
        let shuffled = [
            Vec2::new(10.0, 0.0),
            Vec2::new(0.0, 0.0),
            Vec2::new(10.0, 10.0),
            Vec2::new(0.0, 10.0),
        ];
        let ordered = order_corners(shuffled);
        let cx = 5.0;
        let cy = 5.0;
        let mut prev = (ordered[0].y - cy).atan2(ordered[0].x - cx);
        for c in ordered.iter().skip(1) {
            let a = (c.y - cy).atan2(c.x - cx);
            assert!(a > prev);
            prev = a;
        }
    }

    #[test]
    fn trait_is_object_safe() {
        struct Null;
        impl MarkerDetector for Null {
            fn detect(&self, _image: &GrayImage) -> Vec<Detection> {
                Vec::new()
            }
            fn name(&self) -> &str {
                "null"
            }
        }
        let boxed: Box<dyn MarkerDetector> = Box::new(Null);
        assert_eq!(boxed.name(), "null");
        assert!(boxed.detect(&GrayImage::new(4, 4)).is_empty());
        assert!((boxed.relative_cost() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn intrinsics_default_matches_expected_resolution() {
        let i = CameraIntrinsics::downward_default();
        assert_eq!(i.width, 160);
        assert_eq!(i.height, 120);
    }
}
