//! Grayscale image container used by the synthetic camera and the detectors.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::VisionError;

/// A row-major grayscale image with `f32` luminance samples in `[0, 1]`.
///
/// The synthetic camera renders into this type and both marker detectors read
/// from it. A tiny, dependency-free image type is all the pipeline needs; it
/// stands in for the `cv::Mat` frames the paper's OpenCV / TPH-YOLO stack
/// consumes.
///
/// # Examples
///
/// ```
/// use mls_vision::GrayImage;
///
/// let mut img = GrayImage::new(64, 48);
/// img.set(10, 10, 0.75);
/// assert_eq!(img.get(10, 10), 0.75);
/// assert_eq!(img.get_clamped(-5, 1000), img.get(0, 47));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GrayImage {
    width: usize,
    height: usize,
    data: Vec<f32>,
}

impl GrayImage {
    /// Creates a black image of the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be non-zero");
        Self {
            width,
            height,
            data: vec![0.0; width * height],
        }
    }

    /// Creates an image filled with a constant luminance.
    pub fn filled(width: usize, height: usize, value: f32) -> Self {
        let mut img = Self::new(width, height);
        img.data.fill(value);
        img
    }

    /// Creates an image from raw row-major samples.
    ///
    /// # Errors
    ///
    /// Returns [`VisionError::DimensionMismatch`] when `data.len()` does not
    /// equal `width * height`.
    pub fn from_raw(width: usize, height: usize, data: Vec<f32>) -> Result<Self, VisionError> {
        if data.len() != width * height || width == 0 || height == 0 {
            return Err(VisionError::DimensionMismatch {
                expected: width * height,
                actual: data.len(),
            });
        }
        Ok(Self {
            width,
            height,
            data,
        })
    }

    /// Image width in pixels.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Raw sample buffer (row major).
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw sample buffer (row major).
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Luminance at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> f32 {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x}, {y}) out of bounds"
        );
        self.data[y * self.width + x]
    }

    /// Luminance at the pixel nearest to `(x, y)` after clamping to the image
    /// bounds; accepts signed coordinates.
    #[inline]
    pub fn get_clamped(&self, x: i64, y: i64) -> f32 {
        let cx = x.clamp(0, self.width as i64 - 1) as usize;
        let cy = y.clamp(0, self.height as i64 - 1) as usize;
        self.data[cy * self.width + cx]
    }

    /// Sets the luminance at `(x, y)`, clamping the value into `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, value: f32) {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x}, {y}) out of bounds"
        );
        self.data[y * self.width + x] = value.clamp(0.0, 1.0);
    }

    /// Bilinear sample at fractional pixel coordinates, clamped to the image.
    ///
    /// Non-finite coordinates (which can arise from degenerate homographies)
    /// sample as black.
    pub fn sample_bilinear(&self, x: f64, y: f64) -> f32 {
        if !x.is_finite() || !y.is_finite() {
            return 0.0;
        }
        let x = x.clamp(-1.0, self.width as f64 + 1.0);
        let y = y.clamp(-1.0, self.height as f64 + 1.0);
        let x0 = x.floor() as i64;
        let y0 = y.floor() as i64;
        let fx = (x - x0 as f64) as f32;
        let fy = (y - y0 as f64) as f32;
        let p00 = self.get_clamped(x0, y0);
        let p10 = self.get_clamped(x0 + 1, y0);
        let p01 = self.get_clamped(x0, y0 + 1);
        let p11 = self.get_clamped(x0 + 1, y0 + 1);
        let top = p00 * (1.0 - fx) + p10 * fx;
        let bottom = p01 * (1.0 - fx) + p11 * fx;
        top * (1.0 - fy) + bottom * fy
    }

    /// Mean luminance of the whole image.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().sum::<f32>() / self.data.len() as f32
    }

    /// Minimum and maximum luminance.
    pub fn min_max(&self) -> (f32, f32) {
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for &v in &self.data {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        (lo, hi)
    }

    /// Mean luminance inside the axis-aligned pixel rectangle
    /// `[x0, x1) x [y0, y1)`, intersected with the image bounds.
    ///
    /// Returns the global mean when the rectangle is empty after clipping.
    pub fn region_mean(&self, x0: i64, y0: i64, x1: i64, y1: i64) -> f32 {
        let x0 = x0.max(0) as usize;
        let y0 = y0.max(0) as usize;
        let x1 = (x1.max(0) as usize).min(self.width);
        let y1 = (y1.max(0) as usize).min(self.height);
        if x0 >= x1 || y0 >= y1 {
            return self.mean();
        }
        let mut sum = 0.0f64;
        for y in y0..y1 {
            let row = &self.data[y * self.width + x0..y * self.width + x1];
            sum += row.iter().map(|&v| v as f64).sum::<f64>();
        }
        (sum / ((x1 - x0) * (y1 - y0)) as f64) as f32
    }

    /// Computes the summed-area (integral) table of the image.
    ///
    /// The returned [`IntegralImage`] answers rectangle-sum queries in O(1)
    /// and is the workhorse of the adaptive threshold in the classical
    /// detector.
    pub fn integral(&self) -> IntegralImage {
        IntegralImage::from_image(self)
    }

    /// Returns a copy of the image convolved with a `radius`-pixel box blur.
    ///
    /// A radius of zero returns an unmodified copy.
    pub fn box_blurred(&self, radius: usize) -> GrayImage {
        if radius == 0 {
            return self.clone();
        }
        let integral = self.integral();
        let mut out = GrayImage::new(self.width, self.height);
        let r = radius as i64;
        for y in 0..self.height {
            for x in 0..self.width {
                let mean = integral.region_mean(
                    x as i64 - r,
                    y as i64 - r,
                    x as i64 + r + 1,
                    y as i64 + r + 1,
                );
                out.data[y * self.width + x] = mean;
            }
        }
        out
    }

    /// Downsamples the image by an integer factor using block averaging.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero or larger than either dimension.
    pub fn downsampled(&self, factor: usize) -> GrayImage {
        assert!(
            factor > 0 && factor <= self.width && factor <= self.height,
            "invalid downsample factor"
        );
        let nw = self.width / factor;
        let nh = self.height / factor;
        let mut out = GrayImage::new(nw, nh);
        for y in 0..nh {
            for x in 0..nw {
                let mut sum = 0.0f32;
                for dy in 0..factor {
                    for dx in 0..factor {
                        sum += self.get(x * factor + dx, y * factor + dy);
                    }
                }
                out.set(x, y, sum / (factor * factor) as f32);
            }
        }
        out
    }

    /// Global standard deviation of the luminance.
    pub fn std_dev(&self) -> f32 {
        let mean = self.mean() as f64;
        let var = self
            .data
            .iter()
            .map(|&v| {
                let d = v as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / self.data.len() as f64;
        var.sqrt() as f32
    }
}

impl fmt::Display for GrayImage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "GrayImage {}x{} (mean {:.3})",
            self.width,
            self.height,
            self.mean()
        )
    }
}

/// Summed-area table supporting O(1) rectangle mean queries.
///
/// # Examples
///
/// ```
/// use mls_vision::GrayImage;
///
/// let img = GrayImage::filled(10, 10, 0.5);
/// let integral = img.integral();
/// assert!((integral.region_mean(0, 0, 10, 10) - 0.5).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct IntegralImage {
    width: usize,
    height: usize,
    // (width + 1) x (height + 1) table, first row/column zero.
    table: Vec<f64>,
}

impl IntegralImage {
    /// Builds the integral table for `image`.
    pub fn from_image(image: &GrayImage) -> Self {
        let w = image.width();
        let h = image.height();
        let stride = w + 1;
        let mut table = vec![0.0f64; stride * (h + 1)];
        for y in 0..h {
            let mut row_sum = 0.0f64;
            for x in 0..w {
                row_sum += image.get(x, y) as f64;
                table[(y + 1) * stride + (x + 1)] = table[y * stride + (x + 1)] + row_sum;
            }
        }
        Self {
            width: w,
            height: h,
            table,
        }
    }

    /// Sum of the luminance in the rectangle `[x0, x1) x [y0, y1)` clipped to
    /// the image bounds.
    pub fn region_sum(&self, x0: i64, y0: i64, x1: i64, y1: i64) -> f64 {
        let stride = self.width + 1;
        let x0 = x0.clamp(0, self.width as i64) as usize;
        let y0 = y0.clamp(0, self.height as i64) as usize;
        let x1 = x1.clamp(0, self.width as i64) as usize;
        let y1 = y1.clamp(0, self.height as i64) as usize;
        if x0 >= x1 || y0 >= y1 {
            return 0.0;
        }
        self.table[y1 * stride + x1] - self.table[y0 * stride + x1] - self.table[y1 * stride + x0]
            + self.table[y0 * stride + x0]
    }

    /// Mean luminance in the rectangle `[x0, x1) x [y0, y1)` clipped to the
    /// image bounds. Returns `0.0` for an empty rectangle.
    pub fn region_mean(&self, x0: i64, y0: i64, x1: i64, y1: i64) -> f32 {
        let cx0 = x0.clamp(0, self.width as i64);
        let cy0 = y0.clamp(0, self.height as i64);
        let cx1 = x1.clamp(0, self.width as i64);
        let cy1 = y1.clamp(0, self.height as i64);
        let area = ((cx1 - cx0).max(0) * (cy1 - cy0).max(0)) as f64;
        if area == 0.0 {
            return 0.0;
        }
        (self.region_sum(x0, y0, x1, y1) / area) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut img = GrayImage::new(4, 3);
        assert_eq!(img.width(), 4);
        assert_eq!(img.height(), 3);
        assert_eq!(img.get(0, 0), 0.0);
        img.set(3, 2, 2.0); // clamped to 1.0
        assert_eq!(img.get(3, 2), 1.0);
        img.set(1, 1, -0.5); // clamped to 0.0
        assert_eq!(img.get(1, 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_panics() {
        let _ = GrayImage::new(0, 10);
    }

    #[test]
    fn from_raw_validates_length() {
        assert!(GrayImage::from_raw(2, 2, vec![0.0; 4]).is_ok());
        let err = GrayImage::from_raw(2, 2, vec![0.0; 5]).unwrap_err();
        assert!(format!("{err}").contains("expected"));
    }

    #[test]
    fn clamped_access() {
        let mut img = GrayImage::new(3, 3);
        img.set(0, 0, 0.25);
        img.set(2, 2, 0.75);
        assert_eq!(img.get_clamped(-10, -10), 0.25);
        assert_eq!(img.get_clamped(100, 100), 0.75);
    }

    #[test]
    fn bilinear_sampling_interpolates() {
        let mut img = GrayImage::new(2, 1);
        img.set(0, 0, 0.0);
        img.set(1, 0, 1.0);
        assert!((img.sample_bilinear(0.5, 0.0) - 0.5).abs() < 1e-6);
        assert!((img.sample_bilinear(0.0, 0.0) - 0.0).abs() < 1e-6);
        assert!((img.sample_bilinear(1.0, 0.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn statistics() {
        let img = GrayImage::filled(8, 8, 0.25);
        assert!((img.mean() - 0.25).abs() < 1e-6);
        assert!(img.std_dev() < 1e-6);
        let (lo, hi) = img.min_max();
        assert_eq!(lo, 0.25);
        assert_eq!(hi, 0.25);
    }

    #[test]
    fn region_mean_matches_integral() {
        let mut img = GrayImage::new(16, 16);
        for y in 0..16 {
            for x in 0..16 {
                img.set(x, y, ((x + y) % 5) as f32 / 5.0);
            }
        }
        let integral = img.integral();
        for (x0, y0, x1, y1) in [(0, 0, 16, 16), (2, 3, 10, 12), (5, 5, 6, 6)] {
            let direct = img.region_mean(x0, y0, x1, y1);
            let fast = integral.region_mean(x0, y0, x1, y1);
            assert!(
                (direct - fast).abs() < 1e-5,
                "mismatch for ({x0},{y0},{x1},{y1})"
            );
        }
    }

    #[test]
    fn integral_clipping_and_empty() {
        let img = GrayImage::filled(4, 4, 1.0);
        let integral = img.integral();
        assert!((integral.region_sum(-5, -5, 100, 100) - 16.0).abs() < 1e-9);
        assert_eq!(integral.region_sum(2, 2, 2, 2), 0.0);
        assert_eq!(integral.region_mean(3, 3, 3, 10), 0.0);
    }

    #[test]
    fn box_blur_preserves_constant_images() {
        let img = GrayImage::filled(10, 10, 0.6);
        let blurred = img.box_blurred(2);
        for &v in blurred.data() {
            assert!((v - 0.6).abs() < 1e-5);
        }
        // Radius zero is an exact copy.
        assert_eq!(img.box_blurred(0), img);
    }

    #[test]
    fn box_blur_smooths_edges() {
        let mut img = GrayImage::new(11, 1);
        for x in 0..11 {
            img.set(x, 0, if x < 5 { 0.0 } else { 1.0 });
        }
        let blurred = img.box_blurred(2);
        let edge = blurred.get(5, 0);
        assert!(
            edge > 0.1 && edge < 0.9,
            "edge should be smoothed, got {edge}"
        );
    }

    #[test]
    fn downsample_averages_blocks() {
        let mut img = GrayImage::new(4, 4);
        for y in 0..4 {
            for x in 0..4 {
                img.set(x, y, if x < 2 { 0.0 } else { 1.0 });
            }
        }
        let small = img.downsampled(2);
        assert_eq!(small.width(), 2);
        assert_eq!(small.height(), 2);
        assert!((small.get(0, 0) - 0.0).abs() < 1e-6);
        assert!((small.get(1, 0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", GrayImage::new(2, 2)).is_empty());
    }
}
