//! Classical (OpenCV-ArUco-style) marker detection pipeline.
//!
//! This is a from-scratch re-implementation of the fixed-algorithm detector
//! the paper's MLS-V1 uses: adaptive thresholding, connected-component / quad
//! extraction, perspective unwarping, cell-grid bit sampling and dictionary
//! matching with limited Hamming-distance error correction.
//!
//! The pipeline intentionally keeps OpenCV's strictness (hard binarisation,
//! all-black border requirement, single-bit error correction) so it exhibits
//! the failure modes the paper documents for the first-generation system:
//! markers that are small in the image (high-altitude flight), partially
//! occluded, washed out by sun glare, or blurred by motion are frequently
//! missed.

use mls_geom::Vec2;
use serde::{Deserialize, Serialize};

use crate::detection::order_corners;
use crate::{Detection, GrayImage, Homography, MarkerDetector, MarkerDictionary, MARKER_CELLS};

/// Configuration of the classical detection pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassicalDetectorConfig {
    /// Half-size (pixels) of the window used for the adaptive local mean.
    pub adaptive_window: usize,
    /// Constant subtracted from the local mean; pixels darker than
    /// `mean - adaptive_constant` are classified as marker-border candidates.
    pub adaptive_constant: f32,
    /// Minimum connected-component area (pixels) considered a candidate.
    pub min_component_area: usize,
    /// Maximum component area as a fraction of the image area.
    pub max_component_area_fraction: f64,
    /// Minimum quad side length in pixels.
    pub min_quad_side: f64,
    /// Maximum allowed ratio between the longest and shortest quad side.
    pub max_side_ratio: f64,
    /// Per-axis sub-samples taken inside each marker cell.
    pub cell_subsamples: usize,
    /// Minimum contrast (max cell mean − min cell mean) required to decode.
    pub min_cell_contrast: f32,
    /// Fraction of border cells that must decode as black.
    pub min_border_fraction: f64,
    /// Maximum number of payload bits the dictionary matcher may correct.
    pub max_bit_corrections: u32,
}

impl Default for ClassicalDetectorConfig {
    fn default() -> Self {
        Self {
            adaptive_window: 8,
            adaptive_constant: 0.08,
            min_component_area: 24,
            max_component_area_fraction: 0.4,
            min_quad_side: 6.0,
            max_side_ratio: 2.2,
            cell_subsamples: 3,
            min_cell_contrast: 0.15,
            min_border_fraction: 0.95,
            max_bit_corrections: 1,
        }
    }
}

/// The MLS-V1 marker detector (OpenCV-ArUco equivalent).
///
/// # Examples
///
/// ```
/// use mls_geom::{Pose, Vec2, Vec3};
/// use mls_vision::{
///     Camera, ClassicalDetector, GroundScene, MarkerDetector, MarkerDictionary,
///     MarkerPlacement, MarkerRenderer,
/// };
///
/// let dict = MarkerDictionary::standard();
/// let renderer = MarkerRenderer::new(dict.clone());
/// let scene = GroundScene::new().with_marker(MarkerPlacement::new(2, Vec2::ZERO, 1.2, 0.4));
/// let pose = Pose::from_position_yaw(Vec3::new(0.3, -0.2, 7.0), 0.1);
/// let frame = renderer.render(&Camera::downward(), &pose, &scene);
/// let detector = ClassicalDetector::new(dict);
/// let detections = detector.detect(&frame);
/// assert_eq!(detections[0].id, 2);
/// ```
#[derive(Debug, Clone)]
pub struct ClassicalDetector {
    dictionary: MarkerDictionary,
    config: ClassicalDetectorConfig,
}

impl ClassicalDetector {
    /// Creates a detector with the default configuration.
    pub fn new(dictionary: MarkerDictionary) -> Self {
        Self::with_config(dictionary, ClassicalDetectorConfig::default())
    }

    /// Creates a detector with an explicit configuration.
    pub fn with_config(dictionary: MarkerDictionary, config: ClassicalDetectorConfig) -> Self {
        Self { dictionary, config }
    }

    /// The dictionary markers are decoded against.
    pub fn dictionary(&self) -> &MarkerDictionary {
        &self.dictionary
    }

    /// The active configuration.
    pub fn config(&self) -> &ClassicalDetectorConfig {
        &self.config
    }

    /// Runs the full pipeline on one frame.
    fn run(&self, image: &GrayImage) -> Vec<Detection> {
        let cfg = &self.config;
        let mask = adaptive_dark_mask(image, cfg.adaptive_window, cfg.adaptive_constant);
        let components = connected_components(
            &mask,
            image.width(),
            image.height(),
            cfg.min_component_area,
            (cfg.max_component_area_fraction * (image.width() * image.height()) as f64) as usize,
        );

        let mut detections = Vec::new();
        for component in &components {
            let Some(corners) = quad_from_points(component) else {
                continue;
            };
            if !quad_is_plausible(&corners, cfg.min_quad_side, cfg.max_side_ratio) {
                continue;
            }
            let Some(cells) = sample_cells(image, &corners, cfg.cell_subsamples) else {
                continue;
            };
            let Some(decoded) =
                decode_cells(&cells, cfg.min_cell_contrast, cfg.min_border_fraction)
            else {
                continue;
            };
            let Some(matched) = self
                .dictionary
                .match_code(decoded.payload, cfg.max_bit_corrections)
            else {
                continue;
            };
            let confidence = (decoded.contrast as f64).min(1.0)
                * (1.0 - matched.hamming_distance as f64 * 0.25)
                * decoded.border_black_fraction;
            let orientation =
                quad_orientation(&corners) + matched.rotation as f64 * std::f64::consts::FRAC_PI_2;
            let detection =
                Detection::from_corners(matched.id, corners, confidence.clamp(0.05, 1.0))
                    .with_orientation(mls_geom::wrap_angle(orientation));
            detections.push(detection);
        }
        detections.sort_by(|a, b| {
            b.confidence
                .partial_cmp(&a.confidence)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        dedupe_detections(detections)
    }
}

impl MarkerDetector for ClassicalDetector {
    fn detect(&self, image: &GrayImage) -> Vec<Detection> {
        self.run(image)
    }

    fn name(&self) -> &str {
        "opencv-aruco"
    }

    fn relative_cost(&self) -> f64 {
        1.0
    }
}

/// Result of decoding a 6x6 cell grid.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DecodedCells {
    /// Row-major 16-bit payload (white = 1).
    pub payload: u16,
    /// Cell contrast (max mean − min mean) used as a confidence proxy.
    pub contrast: f32,
    /// Fraction of border cells that decoded black.
    pub border_black_fraction: f64,
}

/// Binary mask of pixels darker than their local neighbourhood.
pub(crate) fn adaptive_dark_mask(image: &GrayImage, window: usize, constant: f32) -> Vec<bool> {
    let w = image.width();
    let h = image.height();
    let integral = image.integral();
    let mut mask = vec![false; w * h];
    let r = window as i64;
    for y in 0..h {
        for x in 0..w {
            let local_mean =
                integral.region_mean(x as i64 - r, y as i64 - r, x as i64 + r, y as i64 + r);
            if image.get(x, y) < local_mean - constant {
                mask[y * w + x] = true;
            }
        }
    }
    mask
}

/// Extracts 8-connected components of the mask whose pixel count is within
/// the given bounds. Each component is returned as its pixel centre points.
pub(crate) fn connected_components(
    mask: &[bool],
    width: usize,
    height: usize,
    min_area: usize,
    max_area: usize,
) -> Vec<Vec<Vec2>> {
    let mut visited = vec![false; mask.len()];
    let mut components = Vec::new();
    let mut stack = Vec::new();
    for start in 0..mask.len() {
        if !mask[start] || visited[start] {
            continue;
        }
        let mut pixels = Vec::new();
        visited[start] = true;
        stack.push(start);
        while let Some(idx) = stack.pop() {
            let x = (idx % width) as i64;
            let y = (idx / width) as i64;
            pixels.push(Vec2::new(x as f64, y as f64));
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    if dx == 0 && dy == 0 {
                        continue;
                    }
                    let nx = x + dx;
                    let ny = y + dy;
                    if nx < 0 || ny < 0 || nx >= width as i64 || ny >= height as i64 {
                        continue;
                    }
                    let nidx = ny as usize * width + nx as usize;
                    if mask[nidx] && !visited[nidx] {
                        visited[nidx] = true;
                        stack.push(nidx);
                    }
                }
            }
        }
        if pixels.len() >= min_area && pixels.len() <= max_area {
            components.push(pixels);
        }
    }
    components
}

/// Convex hull (Andrew's monotone chain); returns points in counter-clockwise
/// order for a y-down image coordinate system.
pub(crate) fn convex_hull(points: &[Vec2]) -> Vec<Vec2> {
    if points.len() < 3 {
        return points.to_vec();
    }
    let mut pts = points.to_vec();
    pts.sort_by(|a, b| {
        a.x.partial_cmp(&b.x)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.y.partial_cmp(&b.y).unwrap_or(std::cmp::Ordering::Equal))
    });
    pts.dedup_by(|a, b| (a.x - b.x).abs() < 1e-12 && (a.y - b.y).abs() < 1e-12);
    if pts.len() < 3 {
        return pts;
    }
    let cross = |o: Vec2, a: Vec2, b: Vec2| (a - o).cross(b - o);
    let mut lower: Vec<Vec2> = Vec::new();
    for &p in &pts {
        while lower.len() >= 2 && cross(lower[lower.len() - 2], lower[lower.len() - 1], p) <= 0.0 {
            lower.pop();
        }
        lower.push(p);
    }
    let mut upper: Vec<Vec2> = Vec::new();
    for &p in pts.iter().rev() {
        while upper.len() >= 2 && cross(upper[upper.len() - 2], upper[upper.len() - 1], p) <= 0.0 {
            upper.pop();
        }
        upper.push(p);
    }
    lower.pop();
    upper.pop();
    lower.extend(upper);
    lower
}

/// Fits a quadrilateral to a point cloud that is roughly a filled square.
///
/// Returns `None` when the points are too few or degenerate. The corners are
/// returned ordered by angle around their centroid.
pub(crate) fn quad_from_points(points: &[Vec2]) -> Option<[Vec2; 4]> {
    let hull = convex_hull(points);
    if hull.len() < 4 {
        return None;
    }
    // Corner 1: farthest from the centroid.
    let cx = hull.iter().map(|p| p.x).sum::<f64>() / hull.len() as f64;
    let cy = hull.iter().map(|p| p.y).sum::<f64>() / hull.len() as f64;
    let centroid = Vec2::new(cx, cy);
    let a = *hull.iter().max_by(|p, q| {
        p.distance(centroid)
            .partial_cmp(&q.distance(centroid))
            .unwrap_or(std::cmp::Ordering::Equal)
    })?;
    // Corner 2: farthest from corner 1 (the opposite diagonal corner).
    let b = *hull.iter().max_by(|p, q| {
        p.distance(a)
            .partial_cmp(&q.distance(a))
            .unwrap_or(std::cmp::Ordering::Equal)
    })?;
    // Corners 3 and 4: extreme signed distance to the diagonal a-b on either
    // side.
    let dir = (b - a).normalized()?;
    let signed = |p: Vec2| dir.cross(p - a);
    let c = *hull.iter().max_by(|p, q| {
        signed(**p)
            .partial_cmp(&signed(**q))
            .unwrap_or(std::cmp::Ordering::Equal)
    })?;
    let d = *hull.iter().min_by(|p, q| {
        signed(**p)
            .partial_cmp(&signed(**q))
            .unwrap_or(std::cmp::Ordering::Equal)
    })?;
    if signed(c).abs() < 1.0 || signed(d).abs() < 1.0 {
        // Degenerate: all hull points essentially collinear.
        return None;
    }
    Some(order_corners([a, b, c, d]))
}

/// Sanity checks on the quad geometry.
pub(crate) fn quad_is_plausible(corners: &[Vec2; 4], min_side: f64, max_side_ratio: f64) -> bool {
    let mut min_len = f64::INFINITY;
    let mut max_len: f64 = 0.0;
    for i in 0..4 {
        let len = corners[i].distance(corners[(i + 1) % 4]);
        min_len = min_len.min(len);
        max_len = max_len.max(len);
    }
    if min_len < min_side {
        return false;
    }
    if max_len / min_len.max(1e-9) > max_side_ratio {
        return false;
    }
    // Convexity: all cross products of consecutive edges share a sign.
    let mut sign = 0.0f64;
    for i in 0..4 {
        let p0 = corners[i];
        let p1 = corners[(i + 1) % 4];
        let p2 = corners[(i + 2) % 4];
        let cross = (p1 - p0).cross(p2 - p1);
        if cross.abs() < 1e-9 {
            return false;
        }
        if sign == 0.0 {
            sign = cross.signum();
        } else if cross.signum() != sign {
            return false;
        }
    }
    true
}

/// Samples the 6x6 marker-cell means inside the quad using a homography from
/// canonical marker coordinates to image coordinates.
#[allow(clippy::needless_range_loop)] // row/col index a fixed 2-D cell grid
pub(crate) fn sample_cells(
    image: &GrayImage,
    corners: &[Vec2; 4],
    subsamples: usize,
) -> Option<[[f32; MARKER_CELLS]; MARKER_CELLS]> {
    let n = MARKER_CELLS as f64;
    let canonical = [
        Vec2::new(0.0, 0.0),
        Vec2::new(n, 0.0),
        Vec2::new(n, n),
        Vec2::new(0.0, n),
    ];
    let homography = Homography::from_correspondences(&canonical, corners).ok()?;
    let ss = subsamples.max(1);
    let mut cells = [[0.0f32; MARKER_CELLS]; MARKER_CELLS];
    for row in 0..MARKER_CELLS {
        for col in 0..MARKER_CELLS {
            let mut sum = 0.0f32;
            for sy in 0..ss {
                for sx in 0..ss {
                    let u = col as f64 + (sx as f64 + 0.5) / ss as f64;
                    let v = row as f64 + (sy as f64 + 0.5) / ss as f64;
                    let p = homography.apply(Vec2::new(u, v));
                    sum += image.sample_bilinear(p.x, p.y);
                }
            }
            cells[row][col] = sum / (ss * ss) as f32;
        }
    }
    Some(cells)
}

/// Hard-decodes a 6x6 cell grid: checks contrast, checks the black border,
/// and extracts the 16-bit payload.
#[allow(clippy::needless_range_loop)] // row/col index a fixed 2-D cell grid
pub(crate) fn decode_cells(
    cells: &[[f32; MARKER_CELLS]; MARKER_CELLS],
    min_contrast: f32,
    min_border_fraction: f64,
) -> Option<DecodedCells> {
    let mut min = f32::INFINITY;
    let mut max = f32::NEG_INFINITY;
    for row in cells {
        for &v in row {
            min = min.min(v);
            max = max.max(v);
        }
    }
    let contrast = max - min;
    if contrast < min_contrast {
        return None;
    }
    let threshold = (min + max) / 2.0;

    let mut border_cells = 0usize;
    let mut border_black = 0usize;
    for row in 0..MARKER_CELLS {
        for col in 0..MARKER_CELLS {
            let is_border =
                row == 0 || col == 0 || row == MARKER_CELLS - 1 || col == MARKER_CELLS - 1;
            if is_border {
                border_cells += 1;
                if cells[row][col] < threshold {
                    border_black += 1;
                }
            }
        }
    }
    let border_black_fraction = border_black as f64 / border_cells as f64;
    if border_black_fraction < min_border_fraction {
        return None;
    }

    let mut payload: u16 = 0;
    for row in 0..MARKER_CELLS - 2 {
        for col in 0..MARKER_CELLS - 2 {
            if cells[row + 1][col + 1] >= threshold {
                payload |= 1 << (row * (MARKER_CELLS - 2) + col);
            }
        }
    }
    Some(DecodedCells {
        payload,
        contrast,
        border_black_fraction,
    })
}

/// In-plane orientation of the quad: the angle of its first edge.
pub(crate) fn quad_orientation(corners: &[Vec2; 4]) -> f64 {
    let e = corners[1] - corners[0];
    e.y.atan2(e.x)
}

/// Removes overlapping duplicate detections (keeps the higher-confidence one).
pub(crate) fn dedupe_detections(detections: Vec<Detection>) -> Vec<Detection> {
    let mut kept: Vec<Detection> = Vec::new();
    for d in detections {
        let overlaps = kept
            .iter()
            .any(|k| k.center.distance(d.center) < 0.5 * (k.apparent_size + d.apparent_size) * 0.5);
        if !overlaps {
            kept.push(d);
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Camera, GroundScene, MarkerPlacement, MarkerRenderer, ShadowDisc};
    use mls_geom::{Pose, Vec3};

    fn render(id: u32, altitude: f64, marker_size: f64, yaw: f64) -> GrayImage {
        let dict = MarkerDictionary::standard();
        let renderer = MarkerRenderer::new(dict);
        let scene = GroundScene::new().with_marker(MarkerPlacement::new(
            id,
            Vec2::new(0.0, 0.0),
            marker_size,
            yaw,
        ));
        let pose = Pose::from_position_yaw(Vec3::new(0.0, 0.0, altitude), 0.0);
        renderer.render(&Camera::downward(), &pose, &scene)
    }

    fn detector() -> ClassicalDetector {
        ClassicalDetector::new(MarkerDictionary::standard())
    }

    #[test]
    fn detects_marker_at_low_altitude() {
        let frame = render(4, 6.0, 1.0, 0.0);
        let detections = detector().detect(&frame);
        assert_eq!(detections.len(), 1, "expected exactly one detection");
        assert_eq!(detections[0].id, 4);
        assert!(detections[0].confidence > 0.2);
        assert!(detections[0].orientation.is_some());
    }

    #[test]
    fn detects_rotated_marker_and_reports_orientation() {
        let yaw = 0.6;
        let frame = render(7, 6.0, 1.2, yaw);
        let detections = detector().detect(&frame);
        assert_eq!(detections.len(), 1);
        assert_eq!(detections[0].id, 7);
        assert!(detections[0].orientation.is_some());
    }

    #[test]
    fn detection_center_tracks_marker_offset() {
        let dict = MarkerDictionary::standard();
        let renderer = MarkerRenderer::new(dict.clone());
        let scene =
            GroundScene::new().with_marker(MarkerPlacement::new(1, Vec2::new(1.5, 1.0), 1.2, 0.0));
        let pose = Pose::from_position_yaw(Vec3::new(0.0, 0.0, 7.0), 0.0);
        let camera = Camera::downward();
        let frame = renderer.render(&camera, &pose, &scene);
        let detections = ClassicalDetector::new(dict).detect(&frame);
        assert_eq!(detections.len(), 1);
        // Lift back to the world: it should land near (1.5, 1.0).
        let obs = crate::MarkerObservation::from_detection(&camera, &pose, &detections[0], 0.0)
            .expect("must hit the ground");
        assert!(
            obs.world_position
                .horizontal_distance(Vec3::new(1.5, 1.0, 0.0))
                < 0.3,
            "lifted position {:?} too far from truth",
            obs.world_position
        );
    }

    #[test]
    fn misses_marker_at_high_altitude() {
        // At 40 m a 1 m marker covers only a couple of pixels: the classical
        // pipeline cannot decode it (the paper's high-altitude failure mode).
        let frame = render(4, 40.0, 1.0, 0.0);
        let detections = detector().detect(&frame);
        assert!(detections.is_empty());
    }

    #[test]
    fn empty_scene_produces_no_detections() {
        let dict = MarkerDictionary::standard();
        let renderer = MarkerRenderer::new(dict.clone());
        let pose = Pose::from_position_yaw(Vec3::new(0.0, 0.0, 8.0), 0.0);
        let frame = renderer.render(&Camera::downward(), &pose, &GroundScene::new());
        assert!(ClassicalDetector::new(dict).detect(&frame).is_empty());
    }

    #[test]
    fn heavy_shadow_occlusion_causes_false_negative() {
        let dict = MarkerDictionary::standard();
        let renderer = MarkerRenderer::new(dict.clone());
        let scene = GroundScene::new()
            .with_marker(MarkerPlacement::new(4, Vec2::ZERO, 1.0, 0.0))
            // A hard shadow covering half the marker destroys the border test.
            .with_shadow(ShadowDisc {
                center: Vec2::new(0.5, 0.0),
                radius: 0.8,
                darkness: 0.9,
            });
        let pose = Pose::from_position_yaw(Vec3::new(0.0, 0.0, 8.0), 0.0);
        let frame = renderer.render(&Camera::downward(), &pose, &scene);
        let detections = ClassicalDetector::new(dict).detect(&frame);
        assert!(
            detections.iter().all(|d| d.id != 4) || detections.is_empty(),
            "a half-shadowed marker should not decode cleanly in the classical pipeline"
        );
    }

    #[test]
    fn convex_hull_of_square_has_four_corners() {
        let mut pts = Vec::new();
        for y in 0..10 {
            for x in 0..10 {
                pts.push(Vec2::new(x as f64, y as f64));
            }
        }
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 4);
    }

    #[test]
    fn quad_from_points_recovers_square_corners() {
        let mut pts = Vec::new();
        for y in 0..20 {
            for x in 0..20 {
                pts.push(Vec2::new(x as f64, y as f64));
            }
        }
        let quad = quad_from_points(&pts).expect("square should fit a quad");
        for expected in [
            Vec2::new(0.0, 0.0),
            Vec2::new(19.0, 0.0),
            Vec2::new(19.0, 19.0),
            Vec2::new(0.0, 19.0),
        ] {
            assert!(
                quad.iter().any(|c| c.distance(expected) < 1.5),
                "missing corner near {expected:?} in {quad:?}"
            );
        }
    }

    #[test]
    fn quad_from_collinear_points_is_rejected() {
        let pts: Vec<Vec2> = (0..30).map(|i| Vec2::new(i as f64, 2.0)).collect();
        assert!(quad_from_points(&pts).is_none());
    }

    #[test]
    fn quad_plausibility_rejects_slivers() {
        let sliver = [
            Vec2::new(0.0, 0.0),
            Vec2::new(30.0, 0.0),
            Vec2::new(30.0, 2.0),
            Vec2::new(0.0, 2.0),
        ];
        assert!(!quad_is_plausible(&sliver, 6.0, 2.2));
        let square = [
            Vec2::new(0.0, 0.0),
            Vec2::new(20.0, 0.0),
            Vec2::new(20.0, 20.0),
            Vec2::new(0.0, 20.0),
        ];
        assert!(quad_is_plausible(&square, 6.0, 2.2));
    }

    #[test]
    fn decode_cells_requires_contrast_and_border() {
        // Flat grey grid: no contrast.
        let flat = [[0.5f32; MARKER_CELLS]; MARKER_CELLS];
        assert!(decode_cells(&flat, 0.1, 0.9).is_none());

        // Proper marker-like grid: black border, known payload.
        let dict = MarkerDictionary::standard();
        let cells = dict.cells(3).unwrap();
        let decoded = decode_cells(&cells, 0.1, 0.9).expect("clean cells decode");
        assert_eq!(decoded.payload, dict.code(3).unwrap());
        assert!(decoded.border_black_fraction > 0.99);

        // Breaking the border (white frame) must fail.
        let mut broken = cells;
        broken[0] = [1.0; MARKER_CELLS];
        broken[MARKER_CELLS - 1] = [1.0; MARKER_CELLS];
        assert!(decode_cells(&broken, 0.1, 0.9).is_none());
    }

    #[test]
    fn adaptive_mask_marks_dark_square() {
        let mut img = GrayImage::filled(40, 40, 0.9);
        for y in 15..25 {
            for x in 15..25 {
                img.set(x, y, 0.1);
            }
        }
        let mask = adaptive_dark_mask(&img, 8, 0.08);
        assert!(mask[20 * 40 + 20]);
        assert!(!mask[5 * 40 + 5]);
    }

    #[test]
    fn connected_components_filters_by_area() {
        let width = 20;
        let height = 20;
        let mut mask = vec![false; width * height];
        // A 5x5 blob and a single stray pixel.
        for y in 2..7 {
            for x in 2..7 {
                mask[y * width + x] = true;
            }
        }
        mask[15 * width + 15] = true;
        let comps = connected_components(&mask, width, height, 4, 1000);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 25);
    }

    #[test]
    fn dedupe_keeps_highest_confidence() {
        let a = Detection::from_corners(
            1,
            [
                Vec2::new(0.0, 0.0),
                Vec2::new(10.0, 0.0),
                Vec2::new(10.0, 10.0),
                Vec2::new(0.0, 10.0),
            ],
            0.9,
        );
        let b = Detection::from_corners(
            1,
            [
                Vec2::new(1.0, 1.0),
                Vec2::new(11.0, 1.0),
                Vec2::new(11.0, 11.0),
                Vec2::new(1.0, 11.0),
            ],
            0.5,
        );
        let out = dedupe_detections(vec![a.clone(), b]);
        assert_eq!(out.len(), 1);
        assert!((out[0].confidence - 0.9).abs() < 1e-9);
    }
}
