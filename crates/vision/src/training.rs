//! Offline synthetic training / calibration of the learned-detector
//! surrogate.
//!
//! The paper trains TPH-YOLO on images rendered from five customised AirSim
//! maps with markers "placed in unique positions and orientations, various
//! weather conditions ... the drone operated at various orientations and
//! heights", augmented with brightness/contrast jitter and Gaussian noise.
//!
//! This module reproduces that workflow for the surrogate detector: it
//! renders a synthetic dataset (marker poses × altitudes × weather ×
//! lighting, plus marker-free negatives), scores every frame with the
//! surrogate's raw soft-decoder, and then *calibrates the acceptance
//! threshold* so that a target false-positive rate is met while keeping the
//! true-positive rate as high as possible — the surrogate's equivalent of
//! training the detection head.

use mls_geom::{Pose, Vec2, Vec3};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{
    Camera, DegradationConfig, GroundScene, ImageDegrader, LearnedDetector, LightingCondition,
    MarkerDictionary, MarkerPlacement, MarkerRenderer, VisionError, WeatherKind,
};

/// Configuration of the synthetic calibration pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingConfig {
    /// Number of frames rendered with a marker present.
    pub positive_samples: usize,
    /// Number of frames rendered without any marker (plus decoy squares).
    pub negative_samples: usize,
    /// Altitude range the synthetic drone flies at, metres.
    pub altitude_range: (f64, f64),
    /// Physical marker side length, metres.
    pub marker_size: f64,
    /// Acceptable false-positive rate on the negative set.
    pub target_false_positive_rate: f64,
    /// RNG seed for the whole dataset.
    pub seed: u64,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        Self {
            positive_samples: 80,
            negative_samples: 30,
            altitude_range: (5.0, 14.0),
            marker_size: 1.5,
            target_false_positive_rate: 0.02,
            seed: 2025,
        }
    }
}

impl TrainingConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`VisionError::InvalidConfig`] for empty datasets, inverted
    /// altitude ranges, or out-of-range false-positive targets.
    pub fn validate(&self) -> Result<(), VisionError> {
        if self.positive_samples == 0 {
            return Err(VisionError::InvalidConfig {
                reason: "positive_samples must be > 0".to_string(),
            });
        }
        if self.altitude_range.0 <= 0.0 || self.altitude_range.1 < self.altitude_range.0 {
            return Err(VisionError::InvalidConfig {
                reason: format!("invalid altitude range {:?}", self.altitude_range),
            });
        }
        if !(0.0..1.0).contains(&self.target_false_positive_rate) {
            return Err(VisionError::InvalidConfig {
                reason: "target_false_positive_rate must be in [0, 1)".to_string(),
            });
        }
        if self.marker_size <= 0.0 {
            return Err(VisionError::InvalidConfig {
                reason: "marker_size must be positive".to_string(),
            });
        }
        Ok(())
    }
}

/// One rendered calibration frame and the scores the surrogate assigned.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingSample {
    /// Weather the frame was rendered under.
    pub weather: WeatherKind,
    /// Lighting the frame was rendered under.
    pub lighting: LightingCondition,
    /// Vehicle altitude for this frame, metres.
    pub altitude: f64,
    /// Id of the marker present in the frame, if any.
    pub marker_id: Option<u32>,
    /// Best score of a candidate matching the true marker id (positives).
    pub best_true_score: Option<f64>,
    /// Best score among spurious candidates (wrong id or marker-free frame).
    pub best_false_score: Option<f64>,
}

/// Outcome of the calibration pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingReport {
    /// Every rendered sample with its scores.
    pub samples: Vec<TrainingSample>,
    /// The acceptance threshold selected for the detector.
    pub chosen_threshold: f64,
    /// Fraction of positive samples whose true marker scores above the
    /// threshold.
    pub true_positive_rate: f64,
    /// Fraction of samples containing a spurious candidate above the
    /// threshold.
    pub false_positive_rate: f64,
}

/// Renders the synthetic dataset, scores it, and returns a detector whose
/// acceptance threshold has been calibrated to the dataset.
///
/// # Errors
///
/// Returns [`VisionError::InvalidConfig`] when the configuration is invalid.
///
/// # Examples
///
/// ```
/// use mls_vision::{training, MarkerDictionary, TrainingConfig};
///
/// # fn main() -> Result<(), mls_vision::VisionError> {
/// let config = TrainingConfig { positive_samples: 20, negative_samples: 8, ..TrainingConfig::default() };
/// let (detector, report) = training::calibrate(MarkerDictionary::standard(), &config)?;
/// assert!(report.true_positive_rate > 0.5);
/// assert!(detector.config().acceptance_threshold > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn calibrate(
    dictionary: MarkerDictionary,
    config: &TrainingConfig,
) -> Result<(LearnedDetector, TrainingReport), VisionError> {
    config.validate()?;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let camera = Camera::downward();
    let renderer = MarkerRenderer::new(dictionary.clone());
    let mut detector = LearnedDetector::new(dictionary.clone());
    let mut samples = Vec::new();

    for i in 0..(config.positive_samples + config.negative_samples) {
        let positive = i < config.positive_samples;
        let altitude = rng.random_range(config.altitude_range.0..=config.altitude_range.1);
        let weather = WeatherKind::ALL[rng.random_range(0..WeatherKind::ALL.len())];
        let lighting = LightingCondition::ALL[rng.random_range(0..LightingCondition::ALL.len())];
        let yaw = rng.random_range(-std::f64::consts::PI..std::f64::consts::PI);

        // Keep the marker comfortably inside the footprint of the camera.
        let footprint = altitude * 0.4;
        let offset = Vec2::new(
            rng.random_range(-footprint..footprint),
            rng.random_range(-footprint..footprint),
        );
        let marker_id = if positive {
            Some(rng.random_range(0..dictionary.len() as u32))
        } else {
            None
        };

        let mut scene = GroundScene::new();
        if let Some(id) = marker_id {
            scene = scene.with_marker(MarkerPlacement::new(id, offset, config.marker_size, yaw));
        } else if rng.random::<f64>() < 0.5 {
            // Half of the negatives contain a decoy: a plain bright square
            // (an id outside the dictionary renders as featureless white).
            scene = scene.with_marker(MarkerPlacement::new(
                dictionary.len() as u32 + 10,
                offset,
                config.marker_size,
                yaw,
            ));
        }

        let pose =
            Pose::from_position_yaw(Vec3::new(0.0, 0.0, altitude), rng.random_range(-0.2..0.2));
        let frame = renderer.render(&camera, &pose, &scene);
        let degradation = DegradationConfig::for_conditions(weather, lighting);
        let degraded =
            ImageDegrader::new(degradation, config.seed.wrapping_add(i as u64)).apply(&frame);

        let candidates = detector.score_candidates(&degraded);
        let best_true_score = marker_id.and_then(|id| {
            candidates
                .iter()
                .filter(|c| c.id == id)
                .map(|c| c.score)
                .fold(None, |acc: Option<f64>, s| {
                    Some(acc.map_or(s, |a| a.max(s)))
                })
        });
        let best_false_score = candidates
            .iter()
            .filter(|c| Some(c.id) != marker_id)
            .map(|c| c.score)
            .fold(None, |acc: Option<f64>, s| {
                Some(acc.map_or(s, |a| a.max(s)))
            });

        samples.push(TrainingSample {
            weather,
            lighting,
            altitude,
            marker_id,
            best_true_score,
            best_false_score,
        });
    }

    let chosen_threshold = select_threshold(&samples, config.target_false_positive_rate);
    detector.set_acceptance_threshold(chosen_threshold);

    let positives = samples
        .iter()
        .filter(|s| s.marker_id.is_some())
        .count()
        .max(1);
    let true_positive_rate = samples
        .iter()
        .filter(|s| {
            s.best_true_score
                .map(|v| v >= chosen_threshold)
                .unwrap_or(false)
        })
        .count() as f64
        / positives as f64;
    let false_positive_rate = samples
        .iter()
        .filter(|s| {
            s.best_false_score
                .map(|v| v >= chosen_threshold)
                .unwrap_or(false)
        })
        .count() as f64
        / samples.len().max(1) as f64;

    Ok((
        detector,
        TrainingReport {
            samples,
            chosen_threshold,
            true_positive_rate,
            false_positive_rate,
        },
    ))
}

/// Picks the lowest threshold whose false-positive rate on the dataset stays
/// below the target, bounded below so trivially-low thresholds are never
/// selected.
fn select_threshold(samples: &[TrainingSample], target_fpr: f64) -> f64 {
    let mut false_scores: Vec<f64> = samples.iter().filter_map(|s| s.best_false_score).collect();
    false_scores.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let floor: f64 = 0.55;
    if false_scores.is_empty() {
        return floor.max(0.6);
    }
    let allowed = (samples.len() as f64 * target_fpr).floor() as usize;
    // Keep at most `allowed` false candidates above the threshold.
    let idx = false_scores
        .len()
        .saturating_sub(allowed + 1)
        .min(false_scores.len() - 1);
    let threshold = false_scores[idx] + 1e-3;
    threshold.max(floor).min(0.95)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_configs_are_rejected() {
        let cfg = TrainingConfig {
            positive_samples: 0,
            ..TrainingConfig::default()
        };
        assert!(matches!(
            cfg.validate(),
            Err(VisionError::InvalidConfig { .. })
        ));

        let cfg = TrainingConfig {
            altitude_range: (10.0, 5.0),
            ..TrainingConfig::default()
        };
        assert!(cfg.validate().is_err());

        let cfg = TrainingConfig {
            target_false_positive_rate: 1.5,
            ..TrainingConfig::default()
        };
        assert!(cfg.validate().is_err());

        let cfg = TrainingConfig {
            marker_size: 0.0,
            ..TrainingConfig::default()
        };
        assert!(cfg.validate().is_err());

        assert!(TrainingConfig::default().validate().is_ok());
    }

    #[test]
    fn calibration_produces_usable_detector() {
        let cfg = TrainingConfig {
            positive_samples: 10,
            negative_samples: 4,
            altitude_range: (6.0, 12.0),
            ..TrainingConfig::default()
        };
        let (detector, report) = calibrate(MarkerDictionary::standard(), &cfg).unwrap();
        assert_eq!(report.samples.len(), 14);
        assert!(report.chosen_threshold >= 0.5 && report.chosen_threshold <= 0.95);
        assert!(
            report.true_positive_rate >= 0.5,
            "tpr {}",
            report.true_positive_rate
        );
        assert!(
            report.false_positive_rate <= 0.3,
            "fpr {}",
            report.false_positive_rate
        );
        assert!((detector.config().acceptance_threshold - report.chosen_threshold).abs() < 1e-12);
    }

    #[test]
    fn calibration_is_deterministic_for_a_seed() {
        let cfg = TrainingConfig {
            positive_samples: 6,
            negative_samples: 2,
            ..TrainingConfig::default()
        };
        let (_, a) = calibrate(MarkerDictionary::standard(), &cfg).unwrap();
        let (_, b) = calibrate(MarkerDictionary::standard(), &cfg).unwrap();
        assert_eq!(a.chosen_threshold, b.chosen_threshold);
        assert_eq!(a.samples, b.samples);
    }

    #[test]
    fn threshold_selection_respects_false_scores() {
        let samples = vec![
            TrainingSample {
                weather: WeatherKind::Clear,
                lighting: LightingCondition::Normal,
                altitude: 8.0,
                marker_id: Some(1),
                best_true_score: Some(0.9),
                best_false_score: Some(0.6),
            },
            TrainingSample {
                weather: WeatherKind::Fog,
                lighting: LightingCondition::Normal,
                altitude: 8.0,
                marker_id: None,
                best_true_score: None,
                best_false_score: Some(0.65),
            },
        ];
        let t = select_threshold(&samples, 0.0);
        assert!(t > 0.65);
        assert!(t <= 0.95);
    }
}
