//! Image degradation pipeline.
//!
//! The paper evaluates marker detection "across diverse environments and
//! weather conditions" and reports that fog, sun glare, shadows, motion blur
//! and low marker resolution hurt the classical detector far more than the
//! learned one. This module models those effects as deterministic-per-seed
//! transforms applied to rendered frames, so the same physical scene can be
//! observed under Clear/Fog/Rain/Glare conditions in the Table II sweep and
//! during full mission simulation.

use mls_geom::Vec2;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::GrayImage;

/// Coarse weather class used by the standalone detection sweeps.
///
/// Full mission simulation builds a [`DegradationConfig`] directly from the
/// world's continuous weather state; these variants exist so the Table II
/// style sweeps can name their conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WeatherKind {
    /// Clear sky, good contrast.
    Clear,
    /// Overcast: slightly reduced contrast, no glare.
    Overcast,
    /// Fog: strong contrast compression and added haze luminance.
    Fog,
    /// Rain: droplet noise, mild blur, darker scene.
    Rain,
    /// Direct sun glare on the ground near the marker.
    SunGlare,
}

impl WeatherKind {
    /// All weather kinds, in a stable order (useful for sweeps).
    pub const ALL: [WeatherKind; 5] = [
        WeatherKind::Clear,
        WeatherKind::Overcast,
        WeatherKind::Fog,
        WeatherKind::Rain,
        WeatherKind::SunGlare,
    ];

    /// `true` for the conditions the paper classes as "adverse weather".
    pub fn is_adverse(self) -> bool {
        !matches!(self, WeatherKind::Clear | WeatherKind::Overcast)
    }
}

/// Scene lighting level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LightingCondition {
    /// Bright midday light.
    Bright,
    /// Normal daylight.
    Normal,
    /// Low light (dawn/dusk): reduced contrast, more sensor noise.
    LowLight,
    /// Harsh low sun: long hard shadows across the scene.
    HarshShadows,
}

impl LightingCondition {
    /// All lighting conditions, in a stable order.
    pub const ALL: [LightingCondition; 4] = [
        LightingCondition::Bright,
        LightingCondition::Normal,
        LightingCondition::LowLight,
        LightingCondition::HarshShadows,
    ];
}

/// A localized glare spot (specular sun reflection) in normalized image
/// coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GlareSpot {
    /// Center of the glare in normalized `[0, 1] x [0, 1]` image coordinates.
    pub center: Vec2,
    /// Radius as a fraction of the image diagonal.
    pub radius: f64,
    /// Peak added luminance at the center.
    pub intensity: f32,
}

/// A rectangular occluding patch (e.g. a shadow band or partial obstruction)
/// in normalized image coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OcclusionPatch {
    /// Minimum corner in normalized image coordinates.
    pub min: Vec2,
    /// Maximum corner in normalized image coordinates.
    pub max: Vec2,
    /// Luminance the patch is blended towards.
    pub luminance: f32,
    /// Blend strength in `[0, 1]`; 1 fully replaces the underlying pixels.
    pub opacity: f32,
}

/// Parameters of the degradation applied to a rendered frame.
///
/// All effects are optional; [`DegradationConfig::clear`] performs only the
/// (tiny) baseline sensor noise.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradationConfig {
    /// Multiplicative contrast around 0.5 (1 = unchanged, <1 compresses).
    pub contrast: f32,
    /// Additive brightness offset.
    pub brightness: f32,
    /// Standard deviation of zero-mean Gaussian sensor noise.
    pub noise_sigma: f32,
    /// Box-blur radius in pixels modelling defocus / rain smear.
    pub blur_radius: usize,
    /// Horizontal motion-blur length in pixels (vehicle translation during
    /// exposure).
    pub motion_blur: usize,
    /// Fog strength in `[0, 1]`: blends the frame towards haze luminance.
    pub fog: f32,
    /// Haze luminance used by the fog blend.
    pub haze_luminance: f32,
    /// Optional glare spot.
    pub glare: Option<GlareSpot>,
    /// Optional occluding patch.
    pub occlusion: Option<OcclusionPatch>,
    /// Vignette strength in `[0, 1]` (darkening towards the corners).
    pub vignette: f32,
    /// Probability that a pixel is dropped to black (transmission artefacts).
    pub dropout: f32,
}

impl Default for DegradationConfig {
    fn default() -> Self {
        Self::clear()
    }
}

impl DegradationConfig {
    /// Baseline configuration: only mild sensor noise.
    pub fn clear() -> Self {
        Self {
            contrast: 1.0,
            brightness: 0.0,
            noise_sigma: 0.01,
            blur_radius: 0,
            motion_blur: 0,
            fog: 0.0,
            haze_luminance: 0.8,
            glare: None,
            occlusion: None,
            vignette: 0.0,
            dropout: 0.0,
        }
    }

    /// A configuration named after a coarse weather and lighting class.
    ///
    /// The numeric values are chosen so that the classical detector starts to
    /// fail noticeably under the adverse classes while the learned surrogate
    /// mostly keeps working — the qualitative behaviour Table II reports.
    pub fn for_conditions(weather: WeatherKind, lighting: LightingCondition) -> Self {
        let mut cfg = Self::clear();
        match weather {
            WeatherKind::Clear => {}
            WeatherKind::Overcast => {
                cfg.contrast = 0.85;
                cfg.noise_sigma = 0.015;
            }
            WeatherKind::Fog => {
                cfg.fog = 0.55;
                cfg.contrast = 0.6;
                cfg.noise_sigma = 0.02;
                cfg.blur_radius = 1;
            }
            WeatherKind::Rain => {
                cfg.contrast = 0.75;
                cfg.brightness = -0.08;
                cfg.noise_sigma = 0.035;
                cfg.blur_radius = 1;
                cfg.dropout = 0.01;
            }
            WeatherKind::SunGlare => {
                cfg.glare = Some(GlareSpot {
                    center: Vec2::new(0.55, 0.45),
                    radius: 0.35,
                    intensity: 0.65,
                });
                cfg.contrast = 0.9;
                cfg.noise_sigma = 0.015;
            }
        }
        match lighting {
            LightingCondition::Bright => {
                cfg.brightness += 0.08;
            }
            LightingCondition::Normal => {}
            LightingCondition::LowLight => {
                cfg.brightness -= 0.18;
                cfg.contrast *= 0.75;
                cfg.noise_sigma += 0.025;
            }
            LightingCondition::HarshShadows => {
                cfg.occlusion = Some(OcclusionPatch {
                    min: Vec2::new(0.0, 0.35),
                    max: Vec2::new(1.0, 0.7),
                    luminance: 0.12,
                    opacity: 0.75,
                });
            }
        }
        cfg
    }

    /// Builds a configuration from continuous environmental intensities in
    /// `[0, 1]`, used by the mission simulation where weather is a continuous
    /// state rather than a named class.
    pub fn from_intensities(
        fog: f64,
        rain: f64,
        glare: f64,
        low_light: f64,
        motion_blur_px: f64,
    ) -> Self {
        let mut cfg = Self::clear();
        let fog = fog.clamp(0.0, 1.0) as f32;
        let rain = rain.clamp(0.0, 1.0) as f32;
        let glare = glare.clamp(0.0, 1.0);
        let low_light = low_light.clamp(0.0, 1.0) as f32;
        cfg.fog = 0.65 * fog;
        cfg.contrast = 1.0 - 0.4 * fog - 0.25 * rain - 0.25 * low_light;
        cfg.brightness = -0.1 * rain - 0.2 * low_light;
        cfg.noise_sigma = 0.01 + 0.03 * rain + 0.025 * low_light;
        cfg.blur_radius = if fog > 0.5 || rain > 0.5 { 1 } else { 0 };
        cfg.motion_blur = motion_blur_px.clamp(0.0, 6.0).round() as usize;
        cfg.dropout = 0.012 * rain;
        if glare > 0.05 {
            cfg.glare = Some(GlareSpot {
                center: Vec2::new(0.55, 0.45),
                radius: 0.2 + 0.2 * glare,
                intensity: (0.7 * glare) as f32,
            });
        }
        cfg
    }

    /// A rough scalar "severity" of the configuration in `[0, 1]`, used by
    /// reports to bucket results by condition difficulty.
    pub fn severity(&self) -> f64 {
        let glare = self.glare.map(|g| g.intensity as f64).unwrap_or(0.0);
        let occ = self
            .occlusion
            .map(|o| o.opacity as f64 * 0.5)
            .unwrap_or(0.0);
        let v = (1.0 - self.contrast as f64) * 0.8
            + self.fog as f64 * 0.8
            + self.noise_sigma as f64 * 4.0
            + self.blur_radius as f64 * 0.1
            + self.motion_blur as f64 * 0.05
            + glare * 0.5
            + occ
            + self.brightness.abs() as f64 * 0.5;
        v.clamp(0.0, 1.0)
    }
}

/// Applies a [`DegradationConfig`] to rendered frames.
///
/// The degrader owns its RNG so repeated calls produce independent noise
/// realisations while remaining reproducible from the seed.
#[derive(Debug, Clone)]
pub struct ImageDegrader {
    config: DegradationConfig,
    rng: StdRng,
}

impl ImageDegrader {
    /// Creates a degrader with an explicit seed.
    pub fn new(config: DegradationConfig, seed: u64) -> Self {
        Self {
            config,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The configuration being applied.
    pub fn config(&self) -> &DegradationConfig {
        &self.config
    }

    /// Applies the degradation to a frame, returning a new image.
    pub fn apply(&mut self, image: &GrayImage) -> GrayImage {
        let cfg = self.config.clone();
        let mut out = image.clone();

        if cfg.blur_radius > 0 {
            out = out.box_blurred(cfg.blur_radius);
        }
        if cfg.motion_blur > 1 {
            out = horizontal_blur(&out, cfg.motion_blur);
        }

        let w = out.width();
        let h = out.height();
        let diag = ((w * w + h * h) as f64).sqrt();
        for y in 0..h {
            for x in 0..w {
                let mut v = out.get(x, y);

                // Contrast / brightness around mid-grey.
                v = 0.5 + (v - 0.5) * cfg.contrast + cfg.brightness;

                // Fog: blend towards haze.
                if cfg.fog > 0.0 {
                    v = v * (1.0 - cfg.fog) + cfg.haze_luminance * cfg.fog;
                }

                // Glare: additive radial falloff.
                if let Some(glare) = cfg.glare {
                    let gx = glare.center.x * w as f64;
                    let gy = glare.center.y * h as f64;
                    let r = glare.radius * diag;
                    let d = ((x as f64 - gx).powi(2) + (y as f64 - gy).powi(2)).sqrt();
                    if d < r {
                        let falloff = (1.0 - d / r) as f32;
                        v += glare.intensity * falloff * falloff;
                    }
                }

                // Occlusion patch.
                if let Some(occ) = cfg.occlusion {
                    let nx = x as f64 / w as f64;
                    let ny = y as f64 / h as f64;
                    if nx >= occ.min.x && nx <= occ.max.x && ny >= occ.min.y && ny <= occ.max.y {
                        v = v * (1.0 - occ.opacity) + occ.luminance * occ.opacity;
                    }
                }

                // Vignette.
                if cfg.vignette > 0.0 {
                    let dx = (x as f64 / w as f64 - 0.5) * 2.0;
                    let dy = (y as f64 / h as f64 - 0.5) * 2.0;
                    let d2 = (dx * dx + dy * dy) as f32 / 2.0;
                    v *= 1.0 - cfg.vignette * d2;
                }

                // Sensor noise.
                if cfg.noise_sigma > 0.0 {
                    v += gaussian(&mut self.rng) * cfg.noise_sigma;
                }

                // Dropout.
                if cfg.dropout > 0.0 && self.rng.random::<f32>() < cfg.dropout {
                    v = 0.0;
                }

                out.set(x, y, v.clamp(0.0, 1.0));
            }
        }
        out
    }
}

/// Horizontal motion blur of the given kernel length.
fn horizontal_blur(image: &GrayImage, length: usize) -> GrayImage {
    let w = image.width();
    let h = image.height();
    let mut out = GrayImage::new(w, h);
    let half = (length / 2) as i64;
    for y in 0..h {
        for x in 0..w {
            let mut sum = 0.0f32;
            let mut n = 0.0f32;
            for k in -half..=half {
                sum += image.get_clamped(x as i64 + k, y as i64);
                n += 1.0;
            }
            out.set(x, y, sum / n);
        }
    }
    out
}

/// A single standard-normal sample (Box–Muller).
fn gaussian(rng: &mut StdRng) -> f32 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_image() -> GrayImage {
        let mut img = GrayImage::filled(64, 48, 0.5);
        // A dark square in the middle so contrast effects are visible.
        for y in 16..32 {
            for x in 24..40 {
                img.set(x, y, 0.1);
            }
        }
        img
    }

    #[test]
    fn clear_config_changes_image_only_slightly() {
        let img = test_image();
        let mut degrader = ImageDegrader::new(DegradationConfig::clear(), 7);
        let out = degrader.apply(&img);
        let mut max_diff = 0.0f32;
        for (a, b) in img.data().iter().zip(out.data()) {
            max_diff = max_diff.max((a - b).abs());
        }
        assert!(
            max_diff < 0.08,
            "clear weather should be almost noise-free, got {max_diff}"
        );
    }

    #[test]
    fn fog_compresses_contrast() {
        let img = test_image();
        let mut degrader = ImageDegrader::new(
            DegradationConfig::for_conditions(WeatherKind::Fog, LightingCondition::Normal),
            7,
        );
        let out = degrader.apply(&img);
        let (in_min, in_max) = img.min_max();
        let (out_min, out_max) = out.min_max();
        assert!(out_max - out_min < (in_max - in_min) * 0.8);
        // Fog raises the luminance of the dark square.
        assert!(out.get(30, 20) > img.get(30, 20));
    }

    #[test]
    fn glare_brightens_affected_region() {
        let img = GrayImage::filled(64, 48, 0.4);
        let mut cfg = DegradationConfig::clear();
        cfg.noise_sigma = 0.0;
        cfg.glare = Some(GlareSpot {
            center: Vec2::new(0.5, 0.5),
            radius: 0.3,
            intensity: 0.5,
        });
        let mut degrader = ImageDegrader::new(cfg, 1);
        let out = degrader.apply(&img);
        assert!(out.get(32, 24) > 0.6);
        assert!((out.get(1, 1) - 0.4).abs() < 1e-3);
    }

    #[test]
    fn occlusion_replaces_band() {
        let img = GrayImage::filled(64, 48, 0.9);
        let mut cfg = DegradationConfig::clear();
        cfg.noise_sigma = 0.0;
        cfg.occlusion = Some(OcclusionPatch {
            min: Vec2::new(0.0, 0.0),
            max: Vec2::new(1.0, 0.5),
            luminance: 0.1,
            opacity: 1.0,
        });
        let mut degrader = ImageDegrader::new(cfg, 1);
        let out = degrader.apply(&img);
        assert!(out.get(10, 5) < 0.15);
        assert!(out.get(10, 40) > 0.85);
    }

    #[test]
    fn degradation_is_deterministic_per_seed() {
        let img = test_image();
        let cfg = DegradationConfig::for_conditions(WeatherKind::Rain, LightingCondition::LowLight);
        let a = ImageDegrader::new(cfg.clone(), 42).apply(&img);
        let b = ImageDegrader::new(cfg.clone(), 42).apply(&img);
        let c = ImageDegrader::new(cfg, 43).apply(&img);
        assert_eq!(a.data(), b.data());
        assert_ne!(a.data(), c.data());
    }

    #[test]
    fn severity_orders_conditions_sensibly() {
        let clear = DegradationConfig::clear().severity();
        let fog = DegradationConfig::for_conditions(WeatherKind::Fog, LightingCondition::Normal)
            .severity();
        let fog_low =
            DegradationConfig::for_conditions(WeatherKind::Fog, LightingCondition::LowLight)
                .severity();
        assert!(clear < fog);
        assert!(fog < fog_low);
    }

    #[test]
    fn adverse_classification_matches_paper_split() {
        assert!(!WeatherKind::Clear.is_adverse());
        assert!(!WeatherKind::Overcast.is_adverse());
        assert!(WeatherKind::Fog.is_adverse());
        assert!(WeatherKind::Rain.is_adverse());
        assert!(WeatherKind::SunGlare.is_adverse());
    }

    #[test]
    fn intensities_map_to_bounded_config() {
        let cfg = DegradationConfig::from_intensities(1.0, 1.0, 1.0, 1.0, 10.0);
        assert!(cfg.contrast > 0.0);
        assert!(cfg.motion_blur <= 6);
        assert!(cfg.glare.is_some());
        assert!(cfg.severity() <= 1.0);
        let clear = DegradationConfig::from_intensities(0.0, 0.0, 0.0, 0.0, 0.0);
        assert!(clear.glare.is_none());
        assert!(clear.severity() < cfg.severity());
    }
}
