//! ArUco-style fiducial marker dictionary.
//!
//! Markers carry a 4x4 payload of black/white cells surrounded by a one-cell
//! black border (6x6 cells total), mirroring OpenCV's `DICT_4X4_*`
//! dictionaries used by the paper. The dictionary is generated
//! deterministically so every crate in the workspace (renderer, detectors,
//! benchmarks) agrees on the marker appearance of a given id.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::VisionError;

/// Number of payload cells along one marker side.
pub const PAYLOAD_CELLS: usize = 4;
/// Number of cells along one marker side including the black border.
pub const MARKER_CELLS: usize = PAYLOAD_CELLS + 2;

/// The 16 payload bits of a marker, row major, bit 0 = top-left cell.
///
/// A set bit renders as a **white** cell; a cleared bit renders as black.
pub type MarkerCode = u16;

/// Rotates a 4x4 bit pattern by 90° clockwise.
fn rotate90(code: MarkerCode) -> MarkerCode {
    let mut out = 0u16;
    for r in 0..PAYLOAD_CELLS {
        for c in 0..PAYLOAD_CELLS {
            if code & (1 << (r * PAYLOAD_CELLS + c)) != 0 {
                // (r, c) -> (c, N-1-r)
                let nr = c;
                let nc = PAYLOAD_CELLS - 1 - r;
                out |= 1 << (nr * PAYLOAD_CELLS + nc);
            }
        }
    }
    out
}

/// Hamming distance between two 16-bit payloads.
fn hamming(a: MarkerCode, b: MarkerCode) -> u32 {
    (a ^ b).count_ones()
}

/// The four rotations of a payload (0°, 90°, 180°, 270° clockwise).
fn rotations(code: MarkerCode) -> [MarkerCode; 4] {
    let r1 = rotate90(code);
    let r2 = rotate90(r1);
    let r3 = rotate90(r2);
    [code, r1, r2, r3]
}

/// A successful dictionary match.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DictionaryMatch {
    /// Identifier of the matched marker within the dictionary.
    pub id: u32,
    /// Number of clockwise 90° rotations applied to the observed bits to
    /// match the canonical orientation.
    pub rotation: u8,
    /// Number of corrected (mismatching) bits.
    pub hamming_distance: u32,
}

/// A deterministic ArUco-style marker dictionary.
///
/// # Examples
///
/// ```
/// use mls_vision::MarkerDictionary;
///
/// let dict = MarkerDictionary::standard();
/// let code = dict.code(7).unwrap();
/// let m = dict.match_code(code, 0).unwrap();
/// assert_eq!(m.id, 7);
/// assert_eq!(m.hamming_distance, 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MarkerDictionary {
    codes: Vec<MarkerCode>,
    min_distance: u32,
}

impl MarkerDictionary {
    /// Generation seed for [`MarkerDictionary::standard`]. Fixed so that every
    /// component of the workspace sees identical markers.
    const STANDARD_SEED: u64 = 0x4152_5543_4f31_3233; // "ARUCO123"

    /// The workspace-standard dictionary: 50 markers with a minimum pairwise
    /// (rotation-aware) Hamming distance of 4, analogous to `DICT_4X4_50`.
    pub fn standard() -> Self {
        Self::generate(50, 4, Self::STANDARD_SEED)
            .expect("standard dictionary parameters are satisfiable")
    }

    /// Generates a dictionary of `count` markers whose pairwise
    /// rotation-aware Hamming distance is at least `min_distance`.
    ///
    /// # Errors
    ///
    /// Returns [`VisionError::DictionaryGeneration`] when the requested
    /// `count` cannot be reached (distance constraint too strict).
    pub fn generate(count: usize, min_distance: u32, seed: u64) -> Result<Self, VisionError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut codes: Vec<MarkerCode> = Vec::with_capacity(count);
        // Generous attempt budget: the 16-bit space is small, so give up
        // rather than loop forever when the constraints are unsatisfiable.
        let max_attempts = 200_000usize;
        let mut attempts = 0usize;
        while codes.len() < count && attempts < max_attempts {
            attempts += 1;
            let candidate: MarkerCode = rng.random();
            if !Self::is_acceptable(candidate) {
                continue;
            }
            let ok = codes.iter().all(|&existing| {
                rotations(candidate)
                    .iter()
                    .all(|&rot| hamming(rot, existing) >= min_distance)
            })
            // Also require the candidate to be rotation-asymmetric enough to
            // give an unambiguous orientation.
            && rotations(candidate)[1..]
                .iter()
                .all(|&rot| hamming(rot, candidate) >= min_distance.min(2));
            if ok {
                codes.push(candidate);
            }
        }
        if codes.len() < count {
            return Err(VisionError::DictionaryGeneration {
                requested: count,
                generated: codes.len(),
            });
        }
        Ok(Self {
            codes,
            min_distance,
        })
    }

    /// Rejects degenerate codes (nearly all black or all white payloads),
    /// which would be easy to confuse with plain dark or bright squares in
    /// the environment.
    fn is_acceptable(code: MarkerCode) -> bool {
        let ones = code.count_ones();
        (4..=12).contains(&ones)
    }

    /// Number of markers in the dictionary.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// `true` if the dictionary holds no markers.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The minimum rotation-aware pairwise Hamming distance the dictionary
    /// was generated with.
    pub fn min_distance(&self) -> u32 {
        self.min_distance
    }

    /// The payload code of marker `id`.
    ///
    /// # Errors
    ///
    /// Returns [`VisionError::UnknownMarkerId`] for ids outside the
    /// dictionary.
    pub fn code(&self, id: u32) -> Result<MarkerCode, VisionError> {
        self.codes
            .get(id as usize)
            .copied()
            .ok_or(VisionError::UnknownMarkerId { id })
    }

    /// Matches observed payload bits against the dictionary, tolerating up to
    /// `max_correction` bit errors. Returns the best match or `None`.
    pub fn match_code(&self, observed: MarkerCode, max_correction: u32) -> Option<DictionaryMatch> {
        let mut best: Option<DictionaryMatch> = None;
        for (id, &code) in self.codes.iter().enumerate() {
            for (rotation, &rot) in rotations(observed).iter().enumerate() {
                let d = hamming(rot, code);
                if d <= max_correction && best.is_none_or(|b| d < b.hamming_distance) {
                    best = Some(DictionaryMatch {
                        id: id as u32,
                        rotation: rotation as u8,
                        hamming_distance: d,
                    });
                    if d == 0 {
                        return best;
                    }
                }
            }
        }
        best
    }

    /// The full 6x6 cell luminance pattern (including the black border) of
    /// marker `id`: `1.0` for white cells, `0.0` for black cells. Row major,
    /// `cells[row][col]`.
    ///
    /// # Errors
    ///
    /// Returns [`VisionError::UnknownMarkerId`] for ids outside the
    /// dictionary.
    pub fn cells(&self, id: u32) -> Result<[[f32; MARKER_CELLS]; MARKER_CELLS], VisionError> {
        let code = self.code(id)?;
        let mut cells = [[0.0f32; MARKER_CELLS]; MARKER_CELLS];
        for r in 0..PAYLOAD_CELLS {
            for c in 0..PAYLOAD_CELLS {
                if code & (1 << (r * PAYLOAD_CELLS + c)) != 0 {
                    cells[r + 1][c + 1] = 1.0;
                }
            }
        }
        Ok(cells)
    }

    /// Extracts payload bits from a sampled 6x6 cell grid (luminance values),
    /// verifying the black border. `threshold` separates black from white.
    ///
    /// Returns `None` when too many border cells read as white (i.e. the
    /// candidate is probably not a marker).
    #[allow(clippy::needless_range_loop)] // r/c index a fixed 2-D cell grid
    pub fn decode_cells(
        grid: &[[f32; MARKER_CELLS]; MARKER_CELLS],
        threshold: f32,
        max_border_violations: usize,
    ) -> Option<MarkerCode> {
        let mut border_violations = 0usize;
        for r in 0..MARKER_CELLS {
            for c in 0..MARKER_CELLS {
                let is_border = r == 0 || c == 0 || r == MARKER_CELLS - 1 || c == MARKER_CELLS - 1;
                if is_border && grid[r][c] > threshold {
                    border_violations += 1;
                }
            }
        }
        if border_violations > max_border_violations {
            return None;
        }
        let mut code: MarkerCode = 0;
        for r in 0..PAYLOAD_CELLS {
            for c in 0..PAYLOAD_CELLS {
                if grid[r + 1][c + 1] > threshold {
                    code |= 1 << (r * PAYLOAD_CELLS + c);
                }
            }
        }
        Some(code)
    }

    /// Iterates over `(id, code)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, MarkerCode)> + '_ {
        self.codes.iter().enumerate().map(|(i, &c)| (i as u32, c))
    }
}

impl Default for MarkerDictionary {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotate_four_times_is_identity() {
        for code in [0x0000u16, 0xFFFF, 0x1234, 0xA5A5, 0x8001] {
            let mut c = code;
            for _ in 0..4 {
                c = rotate90(c);
            }
            assert_eq!(c, code);
        }
    }

    #[test]
    fn rotate_moves_corner_bit() {
        // Bit 0 is the top-left cell (row 0, col 0); after a 90° clockwise
        // rotation it becomes the top-right cell (row 0, col 3).
        let rotated = rotate90(1);
        assert_eq!(rotated, 1 << 3);
    }

    #[test]
    fn standard_dictionary_has_fifty_unique_markers() {
        let dict = MarkerDictionary::standard();
        assert_eq!(dict.len(), 50);
        assert!(!dict.is_empty());
        let mut codes: Vec<_> = dict.iter().map(|(_, c)| c).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), 50);
    }

    #[test]
    fn standard_dictionary_is_deterministic() {
        let a = MarkerDictionary::standard();
        let b = MarkerDictionary::standard();
        assert_eq!(a, b);
    }

    #[test]
    fn pairwise_distance_respects_minimum() {
        let dict = MarkerDictionary::standard();
        for (i, a) in dict.iter() {
            for (j, b) in dict.iter() {
                if i == j {
                    continue;
                }
                for rot in rotations(a) {
                    assert!(
                        hamming(rot, b) >= dict.min_distance(),
                        "markers {i} and {j} are too close"
                    );
                }
            }
        }
    }

    #[test]
    fn exact_match_roundtrip_all_ids_and_rotations() {
        let dict = MarkerDictionary::standard();
        for (id, code) in dict.iter() {
            for (rot_idx, rotated) in rotations(code).iter().enumerate() {
                // The observation is the marker rotated *forward*; matching
                // reports how many further rotations were needed.
                let m = dict.match_code(*rotated, 0).unwrap();
                assert_eq!(m.id, id, "id mismatch at rotation {rot_idx}");
                assert_eq!(m.hamming_distance, 0);
            }
        }
    }

    #[test]
    fn single_bit_error_is_corrected() {
        let dict = MarkerDictionary::standard();
        let code = dict.code(3).unwrap();
        let corrupted = code ^ 0b100; // flip one payload bit
        let m = dict.match_code(corrupted, 1).unwrap();
        assert_eq!(m.id, 3);
        assert_eq!(m.hamming_distance, 1);
        // With no correction budget the corrupted code must not match.
        assert!(dict.match_code(corrupted, 0).is_none());
    }

    #[test]
    fn unknown_id_is_an_error() {
        let dict = MarkerDictionary::standard();
        assert!(dict.code(49).is_ok());
        assert!(matches!(
            dict.code(50),
            Err(VisionError::UnknownMarkerId { id: 50 })
        ));
        assert!(dict.cells(1000).is_err());
    }

    #[test]
    fn cells_have_black_border_and_match_code() {
        let dict = MarkerDictionary::standard();
        let id = 11;
        let cells = dict.cells(id).unwrap();
        for (i, row) in cells.iter().enumerate() {
            assert_eq!(cells[0][i], 0.0);
            assert_eq!(cells[MARKER_CELLS - 1][i], 0.0);
            assert_eq!(row[0], 0.0);
            assert_eq!(row[MARKER_CELLS - 1], 0.0);
        }
        let decoded = MarkerDictionary::decode_cells(&cells, 0.5, 0).unwrap();
        assert_eq!(decoded, dict.code(id).unwrap());
    }

    #[test]
    fn decode_rejects_white_borders() {
        let grid = [[1.0f32; MARKER_CELLS]; MARKER_CELLS];
        assert!(MarkerDictionary::decode_cells(&grid, 0.5, 2).is_none());
        // But tolerates a small number of violations.
        let dict = MarkerDictionary::standard();
        let mut cells = dict.cells(0).unwrap();
        cells[0][0] = 1.0;
        cells[0][1] = 1.0;
        let decoded = MarkerDictionary::decode_cells(&cells, 0.5, 2).unwrap();
        assert_eq!(decoded, dict.code(0).unwrap());
    }

    #[test]
    fn impossible_generation_fails_cleanly() {
        // 16-bit payloads cannot support 5000 codewords at distance 8.
        let err = MarkerDictionary::generate(5000, 8, 1).unwrap_err();
        assert!(matches!(err, VisionError::DictionaryGeneration { .. }));
    }

    #[test]
    fn generation_respects_seed() {
        let a = MarkerDictionary::generate(10, 4, 42).unwrap();
        let b = MarkerDictionary::generate(10, 4, 42).unwrap();
        let c = MarkerDictionary::generate(10, 4, 43).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
