//! Planar homography estimation and application.
//!
//! Both detectors unwarp candidate quadrilaterals into a canonical square
//! before sampling marker bits; the unwarp is a 3x3 planar homography
//! estimated from the four point correspondences (the classic DLT
//! formulation solved with Gaussian elimination).

use mls_geom::Vec2;

use crate::VisionError;

/// A 3x3 planar homography mapping source points to destination points in
/// homogeneous coordinates.
///
/// # Examples
///
/// ```
/// use mls_geom::Vec2;
/// use mls_vision::Homography;
///
/// // Map the unit square onto a shifted, scaled square.
/// let src = [Vec2::new(0.0, 0.0), Vec2::new(1.0, 0.0), Vec2::new(1.0, 1.0), Vec2::new(0.0, 1.0)];
/// let dst = [Vec2::new(10.0, 10.0), Vec2::new(14.0, 10.0), Vec2::new(14.0, 14.0), Vec2::new(10.0, 14.0)];
/// let h = Homography::from_correspondences(&src, &dst)?;
/// let mapped = h.apply(Vec2::new(0.5, 0.5));
/// assert!((mapped - Vec2::new(12.0, 12.0)).norm() < 1e-9);
/// # Ok::<(), mls_vision::VisionError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Homography {
    // Row-major 3x3 matrix with h[2][2] normalised to 1.
    m: [[f64; 3]; 3],
}

impl Homography {
    /// The identity homography.
    pub fn identity() -> Self {
        Self {
            m: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]],
        }
    }

    /// Estimates the homography mapping each `src[i]` to `dst[i]` from four
    /// point correspondences (direct linear transform).
    ///
    /// # Errors
    ///
    /// Returns [`VisionError::DegenerateGeometry`] when the correspondences
    /// are degenerate (three collinear points, coincident points, ...).
    pub fn from_correspondences(src: &[Vec2; 4], dst: &[Vec2; 4]) -> Result<Self, VisionError> {
        // Build the 8x8 linear system A * h = b for the 8 unknowns of H
        // (h33 fixed at 1).
        let mut a = [[0.0f64; 9]; 8];
        for i in 0..4 {
            let (x, y) = (src[i].x, src[i].y);
            let (u, v) = (dst[i].x, dst[i].y);
            a[2 * i] = [x, y, 1.0, 0.0, 0.0, 0.0, -u * x, -u * y, u];
            a[2 * i + 1] = [0.0, 0.0, 0.0, x, y, 1.0, -v * x, -v * y, v];
        }
        let h = solve_8x8(&mut a).ok_or(VisionError::DegenerateGeometry)?;
        let m = [[h[0], h[1], h[2]], [h[3], h[4], h[5]], [h[6], h[7], 1.0]];
        if m.iter().flatten().any(|v| !v.is_finite()) {
            return Err(VisionError::DegenerateGeometry);
        }
        Ok(Self { m })
    }

    /// Applies the homography to a point.
    pub fn apply(&self, p: Vec2) -> Vec2 {
        let w = self.m[2][0] * p.x + self.m[2][1] * p.y + self.m[2][2];
        let x = self.m[0][0] * p.x + self.m[0][1] * p.y + self.m[0][2];
        let y = self.m[1][0] * p.x + self.m[1][1] * p.y + self.m[1][2];
        if w.abs() < 1e-15 {
            Vec2::new(f64::INFINITY, f64::INFINITY)
        } else {
            Vec2::new(x / w, y / w)
        }
    }

    /// The underlying row-major 3x3 matrix.
    pub fn matrix(&self) -> [[f64; 3]; 3] {
        self.m
    }
}

/// Solves the 8-unknown DLT system with partial-pivot Gaussian elimination.
/// `a` holds the augmented 8x9 system. Returns `None` for singular systems.
#[allow(clippy::needless_range_loop)] // textbook Gaussian elimination indexing
fn solve_8x8(a: &mut [[f64; 9]; 8]) -> Option<[f64; 8]> {
    const N: usize = 8;
    for col in 0..N {
        // Partial pivoting.
        let mut pivot_row = col;
        let mut pivot_val = a[col][col].abs();
        for row in (col + 1)..N {
            if a[row][col].abs() > pivot_val {
                pivot_val = a[row][col].abs();
                pivot_row = row;
            }
        }
        if pivot_val < 1e-12 {
            return None;
        }
        a.swap(col, pivot_row);
        // Eliminate below.
        for row in (col + 1)..N {
            let factor = a[row][col] / a[col][col];
            for k in col..=N {
                a[row][k] -= factor * a[col][k];
            }
        }
    }
    // Back substitution.
    let mut x = [0.0f64; N];
    for row in (0..N).rev() {
        let mut sum = a[row][N];
        for k in (row + 1)..N {
            sum -= a[row][k] * x[k];
        }
        x[row] = sum / a[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> [Vec2; 4] {
        [
            Vec2::new(0.0, 0.0),
            Vec2::new(1.0, 0.0),
            Vec2::new(1.0, 1.0),
            Vec2::new(0.0, 1.0),
        ]
    }

    #[test]
    fn identity_maps_points_unchanged() {
        let h = Homography::identity();
        let p = Vec2::new(3.3, -1.2);
        assert!((h.apply(p) - p).norm() < 1e-12);
    }

    #[test]
    fn affine_mapping_is_recovered() {
        let src = unit_square();
        let dst = [
            Vec2::new(5.0, 5.0),
            Vec2::new(9.0, 5.0),
            Vec2::new(9.0, 9.0),
            Vec2::new(5.0, 9.0),
        ];
        let h = Homography::from_correspondences(&src, &dst).unwrap();
        for (s, d) in src.iter().zip(dst.iter()) {
            assert!((h.apply(*s) - *d).norm() < 1e-9);
        }
        // Interior point maps proportionally for this affine case.
        assert!((h.apply(Vec2::new(0.25, 0.75)) - Vec2::new(6.0, 8.0)).norm() < 1e-9);
    }

    #[test]
    fn perspective_mapping_is_recovered() {
        let src = unit_square();
        // A genuinely projective quad (trapezoid).
        let dst = [
            Vec2::new(10.0, 10.0),
            Vec2::new(30.0, 12.0),
            Vec2::new(26.0, 28.0),
            Vec2::new(12.0, 24.0),
        ];
        let h = Homography::from_correspondences(&src, &dst).unwrap();
        for (s, d) in src.iter().zip(dst.iter()) {
            assert!(
                (h.apply(*s) - *d).norm() < 1e-6,
                "corner {s:?} mapped to {:?}",
                h.apply(*s)
            );
        }
    }

    #[test]
    fn rotated_square_corners_map() {
        let src = unit_square();
        let c = Vec2::new(50.0, 40.0);
        let dst_vec: Vec<Vec2> = src
            .iter()
            .map(|p| c + (*p - Vec2::new(0.5, 0.5)).rotated(0.7) * 20.0)
            .collect();
        let dst = [dst_vec[0], dst_vec[1], dst_vec[2], dst_vec[3]];
        let h = Homography::from_correspondences(&src, &dst).unwrap();
        let center = h.apply(Vec2::new(0.5, 0.5));
        assert!((center - c).norm() < 1e-6);
    }

    #[test]
    fn degenerate_correspondences_fail() {
        let src = unit_square();
        // All destination points identical -> degenerate.
        let dst = [Vec2::new(1.0, 1.0); 4];
        assert!(Homography::from_correspondences(&src, &dst).is_err());
        // Three collinear destination points plus duplicate.
        let dst2 = [
            Vec2::new(0.0, 0.0),
            Vec2::new(1.0, 0.0),
            Vec2::new(2.0, 0.0),
            Vec2::new(1.0, 0.0),
        ];
        assert!(Homography::from_correspondences(&src, &dst2).is_err());
    }

    #[test]
    fn matrix_is_normalised() {
        let src = unit_square();
        let dst = [
            Vec2::new(2.0, 3.0),
            Vec2::new(7.0, 3.5),
            Vec2::new(6.5, 8.0),
            Vec2::new(2.5, 7.0),
        ];
        let h = Homography::from_correspondences(&src, &dst).unwrap();
        assert!((h.matrix()[2][2] - 1.0).abs() < 1e-12);
    }
}
