//! End-to-end sink test in a process of its own: initialize obs with the
//! file sinks pointed at a scratch directory, emit events and spans, flush,
//! and parse every artifact back (the JSONL round-trip uses the vendored
//! `serde_json`, the same parser the report pipeline trusts).

use std::path::PathBuf;

use mls_obs::{FieldValue, ObsConfig, SECONDS_BUCKETS};

fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mls-obs-artifacts-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn jsonl_and_exposition_round_trip() {
    let dir = scratch_dir();
    let config = ObsConfig {
        jsonl: true,
        exposition: true,
        progress: false,
        dir: dir.clone(),
        tag: Some("unit".to_string()),
    };
    assert!(
        mls_obs::init(config),
        "another test initialized the global obs state first; this test owns its process"
    );
    assert!(mls_obs::enabled());
    assert!(mls_obs::jsonl_enabled());

    // One structured event with every field kind.
    mls_obs::event(
        "unit_event",
        &[
            ("count", FieldValue::U64(3)),
            ("delta", FieldValue::I64(-2)),
            ("ratio", FieldValue::F64(0.5)),
            ("ok", FieldValue::Bool(true)),
            ("label", FieldValue::from("cell \"a\"\n")),
        ],
    );
    // A nested pair of spans (drop order: inner first).
    {
        let mut outer = mls_obs::span("unit_outer");
        outer.field("cell", 7usize);
        let _inner = mls_obs::span("unit_inner");
    }
    // Some registry state for the exposition dump.
    mls_obs::counter("mls_unit_events_total").add(5);
    mls_obs::gauge("mls_unit_depth").set(2.0);
    mls_obs::histogram("mls_unit_seconds", SECONDS_BUCKETS).observe(0.02);

    let paths = mls_obs::flush();
    let jsonl = paths
        .iter()
        .find(|p| p.extension().is_some_and(|e| e == "jsonl"))
        .expect("JSONL artifact missing from flush()");
    let prom = paths
        .iter()
        .find(|p| p.extension().is_some_and(|e| e == "prom"))
        .expect("exposition artifact missing from flush()");
    // The configured tag is infixed into both artifact names.
    let pid = std::process::id();
    assert!(jsonl.ends_with(format!("obs-unit-{pid}.jsonl")));
    assert!(prom.ends_with(format!("metrics-unit-{pid}.prom")));

    // --- JSONL round-trip ---
    let text = std::fs::read_to_string(jsonl).expect("read JSONL log");
    let lines: Vec<serde_json::Value> = text
        .lines()
        .map(|line| serde_json::from_str(line).unwrap_or_else(|e| panic!("bad line {line}: {e}")))
        .collect();
    assert!(lines.len() >= 4, "header + event + two spans expected");

    let header = &lines[0];
    assert_eq!(
        header.get("schema").and_then(|v| v.as_str()),
        Some(mls_obs::SCHEMA)
    );
    assert!(header.get("pid").is_some());

    let event = lines
        .iter()
        .find(|l| l.get("event").and_then(|v| v.as_str()) == Some("unit_event"))
        .expect("unit_event line missing");
    assert_eq!(event.get("count").and_then(|v| v.as_u64()), Some(3));
    assert_eq!(event.get("delta").and_then(|v| v.as_i64()), Some(-2));
    assert_eq!(event.get("ratio").and_then(|v| v.as_f64()), Some(0.5));
    assert_eq!(event.get("ok").and_then(|v| v.as_bool()), Some(true));
    assert_eq!(
        event.get("label").and_then(|v| v.as_str()),
        Some("cell \"a\"\n"),
        "escaping must survive the round trip"
    );

    let spans: Vec<_> = lines
        .iter()
        .filter(|l| l.get("event").and_then(|v| v.as_str()) == Some("span"))
        .collect();
    let outer = spans
        .iter()
        .find(|s| s.get("name").and_then(|v| v.as_str()) == Some("unit_outer"))
        .expect("outer span missing");
    let inner = spans
        .iter()
        .find(|s| s.get("name").and_then(|v| v.as_str()) == Some("unit_inner"))
        .expect("inner span missing");
    assert_eq!(outer.get("cell").and_then(|v| v.as_u64()), Some(7));
    assert_eq!(
        inner.get("parent_id").and_then(|v| v.as_u64()),
        outer.get("span_id").and_then(|v| v.as_u64()),
        "inner span must link to its parent"
    );
    assert!(outer.get("wall_s").and_then(|v| v.as_f64()).is_some());

    // --- exposition dump ---
    let expo = std::fs::read_to_string(prom).expect("read exposition dump");
    assert!(expo.contains("mls_unit_events_total 5"));
    assert!(expo.contains("mls_unit_depth 2"));
    assert!(expo.contains("mls_unit_seconds_count 1"));
    // Spans feed duration histograms automatically.
    assert!(expo.contains("mls_span_unit_outer_seconds_count 1"));
    for line in expo.lines().filter(|l| !l.starts_with('#')) {
        let mut parts = line.split_whitespace();
        let (name, value) = (parts.next(), parts.next());
        assert!(name.is_some() && value.is_some(), "malformed line: {line}");
        assert!(
            value.unwrap().parse::<f64>().is_ok(),
            "unparseable value: {line}"
        );
    }

    // Toggling the master switch off makes further emission inert.
    mls_obs::set_enabled(false);
    assert!(!mls_obs::enabled());
    let before = std::fs::read_to_string(jsonl).unwrap();
    mls_obs::event("after_disable", &[]);
    let _ = mls_obs::span("unit_disabled");
    mls_obs::flush();
    let after = std::fs::read_to_string(jsonl).unwrap();
    assert_eq!(before, after, "disabled obs must not write events");
    // And back on: events flow again.
    mls_obs::set_enabled(true);
    mls_obs::event("re_enabled", &[]);
    mls_obs::flush();
    let reenabled = std::fs::read_to_string(jsonl).unwrap();
    assert!(reenabled.contains("re_enabled"));

    let _ = std::fs::remove_dir_all(&dir);
}
