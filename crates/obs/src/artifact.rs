//! Crash-ordered artifact writes.
//!
//! Every artifact this workspace persists — campaign reports, trace
//! JSONL, `corpus-index.jsonl`, `BENCH_perf.json`, lint and obs dumps —
//! is consumed by a later stage (triage, CI gates, resume). A process
//! killed mid-`File::create` leaves a torn file under the *final* name,
//! which poisons that consumer silently. [`atomic_write`] closes the
//! window: the bytes land in a same-directory temporary file, are
//! fsynced, and only then renamed over the destination. `rename(2)` is
//! atomic on POSIX filesystems, so at every instant the destination path
//! holds either the complete old bytes or the complete new bytes — never
//! a prefix. The parent directory is fsynced afterwards so the rename
//! itself survives a power cut.
//!
//! The static half of this contract is lint rule D007 (`docs/LINT.md`):
//! bare `File::create` / `fs::write` in artifact paths is a finding, and
//! this helper is the sanctioned replacement. Append-only writers (the
//! obs event log, the result journal) are out of scope by design — they
//! are crash-tolerated by their readers, not replaced atomically.

use std::fs;
use std::io::{self, Write};
use std::path::Path;

/// Writes `bytes` to `path` atomically: temp file in the same directory,
/// fsync, rename over the destination, fsync the directory. Creates
/// parent directories as needed. After a crash at any point, `path`
/// either does not exist, holds its previous contents, or holds exactly
/// `bytes` — never a torn prefix.
///
/// # Errors
///
/// Propagates filesystem errors; a failed write leaves at worst a
/// `.tmp.<pid>` sibling, never a torn destination.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let parent = path.parent().filter(|p| !p.as_os_str().is_empty());
    if let Some(dir) = parent {
        fs::create_dir_all(dir)?;
    }
    let file_name = path
        .file_name()
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                "atomic_write needs a file name",
            )
        })?
        .to_string_lossy()
        .into_owned();
    // Same-directory temp name (rename must not cross filesystems); the
    // pid suffix keeps concurrent writers from clobbering each other's
    // staging file.
    let tmp = path.with_file_name(format!("{file_name}.tmp.{}", std::process::id()));
    let result = (|| {
        let mut staged = fs::OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        staged.write_all(bytes)?;
        // Order matters: the data must be durable before the rename makes
        // it reachable under the final name.
        staged.sync_all()?;
        drop(staged);
        fs::rename(&tmp, path)?;
        // Persist the directory entry; best-effort where directories
        // cannot be opened (the data itself is already safe, and the
        // rename is atomic regardless).
        if let Some(dir) = parent {
            if let Ok(handle) = fs::File::open(dir) {
                let _ = handle.sync_all();
            }
        }
        Ok(())
    })();
    if result.is_err() {
        // Never leave the staging file behind on failure.
        let _ = fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mls-obs-atomic-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn writes_bytes_and_creates_parents() {
        let dir = temp_dir("parents");
        let path = dir.join("nested/deep/report.json");
        atomic_write(&path, b"{\"ok\":true}\n").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"{\"ok\":true}\n");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn replaces_existing_contents_completely() {
        let dir = temp_dir("replace");
        let path = dir.join("artifact.txt");
        atomic_write(&path, b"first, much longer contents").unwrap();
        atomic_write(&path, b"second").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn leaves_no_staging_file_behind() {
        let dir = temp_dir("staging");
        let path = dir.join("artifact.txt");
        atomic_write(&path, b"bytes").unwrap();
        let siblings: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(siblings, vec!["artifact.txt".to_string()]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn pathless_destination_is_an_error() {
        assert!(atomic_write(Path::new("/"), b"x").is_err());
    }
}
