//! # mls-obs — observability substrate for the landing-system engine
//!
//! Process-wide, dependency-free observability: a sharded metrics
//! registry ([`Registry`]), hierarchical wall-clock [`Span`]s, and
//! pluggable sinks (versioned JSONL event log, Prometheus-style text
//! exposition dump, opt-in stderr progress line), all switched by the
//! `MLS_OBS` environment variable (see [`ObsConfig`] for the grammar).
//!
//! ## Non-perturbation contract
//!
//! Observability *observes*; it never feeds back into the engine. No
//! simulation state, report field, or captured trace may depend on
//! anything this crate measures — campaign and falsification artifacts
//! are byte-identical with obs fully on or off, and an integration test
//! in `mls-campaign` pins that. Sinks are best-effort: an unwritable
//! directory degrades to silence, never to an error the engine can see.
//!
//! ## Runtime switch
//!
//! The global state initializes once (from `MLS_OBS`, or explicitly via
//! [`init`]) and afterwards [`set_enabled`] flips a master switch without
//! re-reading the environment — which is how the on/off equivalence test
//! and `perfsuite`'s overhead measurement toggle obs inside one process.
//!
//! ## Typical instrumentation
//!
//! ```
//! use std::sync::{Arc, OnceLock};
//!
//! if mls_obs::enabled() {
//!     static FLOWN: OnceLock<Arc<mls_obs::Counter>> = OnceLock::new();
//!     FLOWN.get_or_init(|| mls_obs::counter("mls_missions_flown_total")).inc();
//!     let mut span = mls_obs::span("mission");
//!     span.field("seed", 42u64);
//!     // ... fly the mission; the span emits on drop ...
//! }
//! ```

#![forbid(unsafe_code)]

mod artifact;
mod config;
mod progress;
mod registry;
mod sink;
mod span;

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

pub use artifact::atomic_write;
pub use config::{ObsConfig, DEFAULT_DIR};
pub use progress::Progress;
pub use registry::{Counter, Gauge, Histogram, Registry, SECONDS_BUCKETS};
pub use sink::{artifact_name, json_escape, json_f64, EventLog, JsonObject, SCHEMA};
pub use span::{FieldValue, Span};

/// The process-wide observability state.
#[derive(Debug)]
struct Obs {
    config: ObsConfig,
    enabled: AtomicBool,
    events: Option<EventLog>,
    progress: Progress,
}

impl Obs {
    fn from_config(config: ObsConfig) -> Self {
        let events = config
            .jsonl
            .then(|| EventLog::new(&config.dir, config.tag.as_deref()));
        let progress = Progress::new(config.progress);
        Self {
            enabled: AtomicBool::new(config.any_sink()),
            events,
            progress,
            config,
        }
    }
}

static OBS: OnceLock<Obs> = OnceLock::new();

fn obs() -> &'static Obs {
    OBS.get_or_init(|| Obs::from_config(ObsConfig::from_env()))
}

/// Initializes the global state with an explicit configuration instead of
/// the environment. First initialization wins (the state is
/// process-global); returns `false` when it was already initialized.
pub fn init(config: ObsConfig) -> bool {
    let mut fresh = false;
    OBS.get_or_init(|| {
        fresh = true;
        Obs::from_config(config)
    });
    fresh
}

/// Whether observability is live right now: at least one sink is
/// configured *and* the master switch is on. Instrument sites gate their
/// `Instant::now()` calls and span creation on this — when it returns
/// `false` the hot path pays one relaxed atomic load.
pub fn enabled() -> bool {
    obs().enabled.load(Ordering::Relaxed)
}

/// Flips the master switch at runtime. Turning on is a no-op when no sink
/// was configured at initialization (there would be nowhere to write).
pub fn set_enabled(on: bool) {
    let state = obs();
    state
        .enabled
        .store(on && state.config.any_sink(), Ordering::Relaxed);
}

/// Whether the JSONL event sink is live.
pub fn jsonl_enabled() -> bool {
    let state = obs();
    state.enabled.load(Ordering::Relaxed) && state.events.is_some()
}

/// Whether the stderr progress line is live.
pub fn progress_enabled() -> bool {
    let state = obs();
    state.enabled.load(Ordering::Relaxed) && state.config.progress
}

/// The counter named `name` in the global registry. Hot call sites should
/// cache the returned [`Arc`] in a `OnceLock` — the lookup takes a mutex.
pub fn counter(name: &str) -> Arc<Counter> {
    Registry::global().counter(name)
}

/// The gauge named `name` in the global registry.
pub fn gauge(name: &str) -> Arc<Gauge> {
    Registry::global().gauge(name)
}

/// The histogram named `name` in the global registry (bounds fixed on
/// first registration).
pub fn histogram(name: &str, bounds: &[f64]) -> Arc<Histogram> {
    Registry::global().histogram(name, bounds)
}

/// Opens a span named `name` (must be a valid metric-name fragment,
/// `snake_case`); inert when observability is off. The guard times the
/// region into `mls_span_<name>_seconds` and emits a `span` event on drop.
pub fn span(name: &'static str) -> Span {
    if enabled() {
        Span::enabled(name)
    } else {
        Span::disabled()
    }
}

/// Emits one structured event to the JSONL log (no-op when the sink is
/// off): `{"event":<name>,"unix_s":...,<fields>...}`.
pub fn event(name: &str, fields: &[(&str, FieldValue)]) {
    if !jsonl_enabled() {
        return;
    }
    let mut object = JsonObject::new();
    object
        .str("event", name)
        .f64("unix_s", sink::unix_seconds());
    span::append_fields(&mut object, fields);
    write_event_line(object.finish());
}

/// Appends a pre-rendered JSON line to the event log (used by [`Span`]).
pub(crate) fn write_event_line(line: String) {
    if let Some(log) = &obs().events {
        log.write_line(&line);
    }
}

/// The campaign progress tracker (counters feed the stderr line when the
/// `progress` sink is on; they are always safe to bump).
pub fn progress() -> &'static Progress {
    &obs().progress
}

/// Registers `n` more planned missions on the progress line.
pub fn progress_planned(n: u64) {
    if enabled() {
        obs().progress.add_planned(n);
    }
}

/// Records one flown mission on the progress line.
pub fn progress_mission_flown() {
    if enabled() {
        obs().progress.mission_flown();
    }
}

/// Records an early-stop verdict (and the missions it saved) on the
/// progress line.
pub fn progress_early_stop(missions_saved: u64) {
    if enabled() {
        obs().progress.early_stop(missions_saved);
    }
}

/// Flushes every sink: the JSONL log is flushed to disk, the exposition
/// dump is (re)written when that sink is configured, and the progress
/// line is finished with a newline. Returns the paths of the artifacts
/// that exist after the flush. Call at the end of a run (the bench
/// harness does this for every binary); safe to call repeatedly.
pub fn flush() -> Vec<PathBuf> {
    let state = obs();
    let mut paths = Vec::new();
    state.progress.finish();
    if let Some(log) = &state.events {
        if let Some(path) = log.flush() {
            paths.push(path);
        }
    }
    if state.config.exposition && state.enabled.load(Ordering::Relaxed) {
        let path = state.config.dir.join(sink::artifact_name(
            "metrics",
            state.config.tag.as_deref(),
            "prom",
        ));
        if atomic_write(&path, Registry::global().exposition().as_bytes()).is_ok() {
            paths.push(path);
        }
    }
    paths
}

#[cfg(test)]
mod tests {
    use super::*;

    // The OnceLock global is process-wide, so the unit tests here pin it to
    // a known configuration once and every test works against that. The
    // richer end-to-end behaviours (env parsing, file artifacts) are
    // covered by the per-module tests and the integration tests, which own
    // their processes.
    fn pin_disabled() {
        init(ObsConfig::disabled());
    }

    #[test]
    fn disabled_process_has_inert_spans_and_events() {
        pin_disabled();
        assert!(!enabled());
        assert!(!jsonl_enabled());
        assert!(!progress_enabled());
        let span = span("unit_lib");
        assert!(!span.is_enabled());
        event("unit", &[("k", FieldValue::U64(1))]);
        // set_enabled(true) cannot enable a sinkless process.
        set_enabled(true);
        assert!(!enabled());
    }

    #[test]
    fn registry_helpers_share_the_global_registry() {
        pin_disabled();
        counter("mls_unit_total").add(2);
        assert_eq!(counter("mls_unit_total").value(), 2);
        gauge("mls_unit_gauge").set(1.5);
        assert_eq!(gauge("mls_unit_gauge").value(), 1.5);
        histogram("mls_unit_seconds", SECONDS_BUCKETS).observe(0.01);
        assert_eq!(histogram("mls_unit_seconds", SECONDS_BUCKETS).count(), 1);
    }

    #[test]
    fn flush_on_disabled_process_produces_no_artifacts() {
        pin_disabled();
        assert!(flush().is_empty());
    }
}
