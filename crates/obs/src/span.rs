//! Hierarchical spans: RAII guards that time a region of work, carry
//! structured key/value fields, and emit one JSONL event when dropped.
//!
//! Parentage is tracked with a thread-local stack, so nesting on one
//! thread (campaign → cell → generation → probe → phase) links up
//! automatically. Work fanned out across the executor pool starts a fresh
//! root span per worker; cross-thread linkage is carried in fields (cell
//! index, mission seed) rather than span ids, which keeps the guard free
//! of synchronization.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::registry::{Registry, SECONDS_BUCKETS};
use crate::sink::{unix_seconds, JsonObject};

/// A structured field value attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (rendered `null` when non-finite).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Owned string.
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        Self::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        Self::U64(v as u64)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        Self::U64(u64::from(v))
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        Self::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        Self::F64(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        Self::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        Self::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        Self::Str(v)
    }
}

/// Appends `fields` onto a JSON object under their own keys.
pub(crate) fn append_fields(object: &mut JsonObject, fields: &[(&str, FieldValue)]) {
    for (key, value) in fields {
        match value {
            FieldValue::U64(v) => object.u64(key, *v),
            FieldValue::I64(v) => object.i64(key, *v),
            FieldValue::F64(v) => object.f64(key, *v),
            FieldValue::Bool(v) => object.bool(key, *v),
            FieldValue::Str(v) => object.str(key, v),
        };
    }
}

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Ids of the spans currently open on this thread, innermost last.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for one timed region. Created via [`crate::span`]; on drop it
/// records the wall-clock duration into `mls_span_<name>_seconds` and, when
/// the JSONL sink is active, emits a `span` event with its fields.
#[derive(Debug)]
pub struct Span {
    /// `None` when observability was disabled at creation — drop is a no-op.
    inner: Option<SpanInner>,
}

#[derive(Debug)]
struct SpanInner {
    name: &'static str,
    id: u64,
    parent: Option<u64>,
    start: Instant,
    fields: Vec<(&'static str, FieldValue)>,
}

impl Span {
    /// An inert guard (observability off).
    pub(crate) fn disabled() -> Self {
        Self { inner: None }
    }

    /// Opens a live span named `name` as a child of the thread's current
    /// innermost span.
    pub(crate) fn enabled(name: &'static str) -> Self {
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let parent = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let parent = stack.last().copied();
            stack.push(id);
            parent
        });
        Self {
            inner: Some(SpanInner {
                name,
                id,
                parent,
                start: Instant::now(),
                fields: Vec::new(),
            }),
        }
    }

    /// Attaches a structured field (no-op on an inert guard).
    pub fn field(&mut self, key: &'static str, value: impl Into<FieldValue>) -> &mut Self {
        if let Some(inner) = self.inner.as_mut() {
            inner.fields.push((key, value.into()));
        }
        self
    }

    /// Whether this guard is live (observability was on at creation).
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(position) = stack.iter().rposition(|&id| id == inner.id) {
                stack.remove(position);
            }
        });
        let seconds = inner.start.elapsed().as_secs_f64();
        Registry::global()
            .histogram(&format!("mls_span_{}_seconds", inner.name), SECONDS_BUCKETS)
            .observe(seconds);
        if crate::jsonl_enabled() {
            let mut object = JsonObject::new();
            object
                .str("event", "span")
                .str("name", inner.name)
                .u64("span_id", inner.id);
            if let Some(parent) = inner.parent {
                object.u64("parent_id", parent);
            }
            object.f64("wall_s", seconds).f64("unix_s", unix_seconds());
            append_fields(&mut object, &inner.fields);
            crate::write_event_line(object.finish());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_is_inert() {
        let mut span = Span::disabled();
        span.field("k", 1u64);
        assert!(!span.is_enabled());
    }

    #[test]
    fn nesting_links_parent_ids_per_thread() {
        let outer = Span::enabled("unit_outer");
        let outer_id = outer.inner.as_ref().unwrap().id;
        {
            let inner = Span::enabled("unit_inner");
            assert_eq!(inner.inner.as_ref().unwrap().parent, Some(outer_id));
        }
        // Popping the inner span restores the outer as the current parent.
        let sibling = Span::enabled("unit_sibling");
        assert_eq!(sibling.inner.as_ref().unwrap().parent, Some(outer_id));
        drop(sibling);
        drop(outer);
        let root = Span::enabled("unit_root");
        assert_eq!(root.inner.as_ref().unwrap().parent, None);
    }

    #[test]
    fn span_ids_are_unique_across_threads() {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    let span = Span::enabled("unit_thread");
                    span.inner.as_ref().unwrap().id
                })
            })
            .collect();
        let mut ids: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4);
    }
}
