//! `MLS_OBS` / `MLS_OBS_DIR` parsing into an [`ObsConfig`].
//!
//! Grammar of `MLS_OBS` (case-insensitive, whitespace ignored):
//!
//! | value                  | effect                                    |
//! |------------------------|-------------------------------------------|
//! | unset, ``, `0`, `off`  | observability fully off                   |
//! | `1`, `on`              | JSONL log + exposition dump               |
//! | `all`                  | JSONL + exposition + stderr progress line |
//! | comma list             | exactly the named sinks                   |
//!
//! Comma-list tokens: `jsonl`, `expo` (or `exposition`), `progress`.
//! Unknown tokens are ignored so a newer flag in an older binary degrades
//! to "fewer sinks", never to a crash.
//!
//! `MLS_OBS_DIR` overrides where artifacts land (default
//! `target/reports/obs`).
//!
//! `MLS_OBS_TAG` names the process inside a shared artifact directory:
//! when set, file artifacts become `obs-<tag>-<pid>.jsonl` /
//! `metrics-<tag>-<pid>.prom`. The campaign fabric sets it to
//! `worker-<id>` on every worker it spawns, so a distributed run's merged
//! artifact directory stays collision-free and attributable.

use std::path::PathBuf;

/// Default artifact directory, relative to the working directory.
pub const DEFAULT_DIR: &str = "target/reports/obs";

/// Which sinks an observability run drives, and where file sinks write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsConfig {
    /// Append structured events to the versioned JSONL log under [`ObsConfig::dir`].
    pub jsonl: bool,
    /// Write a Prometheus-style text exposition dump on [`crate::flush`].
    pub exposition: bool,
    /// Print a throttled progress line to stderr while missions fly.
    pub progress: bool,
    /// Directory the JSONL log and exposition dump land in.
    pub dir: PathBuf,
    /// Artifact-name tag (`MLS_OBS_TAG`), infixed into file-sink names —
    /// `obs-<tag>-<pid>.jsonl` instead of `obs-<pid>.jsonl`. Set by the
    /// campaign fabric to `worker-<id>` on spawned workers.
    pub tag: Option<String>,
}

impl ObsConfig {
    /// Everything off — the default when `MLS_OBS` is unset.
    pub fn disabled() -> Self {
        Self {
            jsonl: false,
            exposition: false,
            progress: false,
            dir: PathBuf::from(DEFAULT_DIR),
            tag: None,
        }
    }

    /// The `MLS_OBS=1` configuration: JSONL log + exposition dump.
    pub fn standard() -> Self {
        Self {
            jsonl: true,
            exposition: true,
            ..Self::disabled()
        }
    }

    /// The `MLS_OBS=all` configuration: every sink.
    pub fn all() -> Self {
        Self {
            progress: true,
            ..Self::standard()
        }
    }

    /// Whether any sink is configured at all.
    pub fn any_sink(&self) -> bool {
        self.jsonl || self.exposition || self.progress
    }

    /// Parses the contents of `MLS_OBS` and `MLS_OBS_DIR` (passed as
    /// values so tests never mutate process environment).
    pub fn from_values(obs: Option<&str>, dir: Option<&str>) -> Self {
        let mut config = match obs.map(str::trim) {
            None | Some("" | "0") => Self::disabled(),
            Some(value) => match value.to_ascii_lowercase().as_str() {
                "off" | "none" | "false" => Self::disabled(),
                "1" | "on" | "true" => Self::standard(),
                "all" => Self::all(),
                list => {
                    let mut config = Self::disabled();
                    for token in list.split(',').map(str::trim) {
                        match token {
                            "jsonl" => config.jsonl = true,
                            "expo" | "exposition" => config.exposition = true,
                            "progress" => config.progress = true,
                            _ => {}
                        }
                    }
                    config
                }
            },
        };
        if let Some(dir) = dir.map(str::trim).filter(|dir| !dir.is_empty()) {
            config.dir = PathBuf::from(dir);
        }
        config
    }

    /// Sets the artifact-name tag, sanitised to `[A-Za-z0-9._-]` so the
    /// result is always a safe file-name fragment; an empty (or
    /// fully-stripped) tag clears it.
    #[must_use]
    pub fn with_tag(mut self, tag: Option<&str>) -> Self {
        self.tag = tag
            .map(|tag| {
                tag.chars()
                    .filter(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
                    .collect::<String>()
            })
            .filter(|tag| !tag.is_empty());
        self
    }

    /// Reads `MLS_OBS` / `MLS_OBS_DIR` / `MLS_OBS_TAG` from the process
    /// environment.
    pub fn from_env() -> Self {
        Self::from_values(
            std::env::var("MLS_OBS").ok().as_deref(),
            std::env::var("MLS_OBS_DIR").ok().as_deref(),
        )
        .with_tag(std::env::var("MLS_OBS_TAG").ok().as_deref())
    }
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_and_zero_mean_off() {
        for value in [None, Some(""), Some("0"), Some("off"), Some("  OFF ")] {
            let config = ObsConfig::from_values(value, None);
            assert!(!config.any_sink(), "{value:?} should disable obs");
        }
    }

    #[test]
    fn one_and_on_enable_file_sinks_only() {
        for value in ["1", "on", "ON", " true "] {
            let config = ObsConfig::from_values(Some(value), None);
            assert!(config.jsonl && config.exposition && !config.progress);
        }
    }

    #[test]
    fn all_enables_everything() {
        let config = ObsConfig::from_values(Some("all"), None);
        assert!(config.jsonl && config.exposition && config.progress);
    }

    #[test]
    fn comma_list_selects_exact_sinks() {
        let config = ObsConfig::from_values(Some("progress, expo"), None);
        assert!(!config.jsonl && config.exposition && config.progress);
        let config = ObsConfig::from_values(Some("jsonl"), None);
        assert!(config.jsonl && !config.exposition && !config.progress);
    }

    #[test]
    fn unknown_tokens_are_ignored() {
        let config = ObsConfig::from_values(Some("jsonl,flamegraph"), None);
        assert!(config.jsonl && !config.exposition);
    }

    #[test]
    fn tag_is_sanitised_to_a_filename_fragment() {
        let config = ObsConfig::from_values(Some("1"), None).with_tag(Some("worker-3"));
        assert_eq!(config.tag.as_deref(), Some("worker-3"));
        let config = ObsConfig::from_values(Some("1"), None).with_tag(Some("a/b\\c worker.0"));
        assert_eq!(config.tag.as_deref(), Some("abcworker.0"));
        let config = ObsConfig::from_values(Some("1"), None).with_tag(Some("///"));
        assert_eq!(config.tag, None);
        let config = ObsConfig::from_values(Some("1"), None).with_tag(None);
        assert_eq!(config.tag, None);
    }

    #[test]
    fn dir_override_applies() {
        let config = ObsConfig::from_values(Some("1"), Some("/tmp/obs-test"));
        assert_eq!(config.dir, PathBuf::from("/tmp/obs-test"));
        let config = ObsConfig::from_values(Some("1"), Some("  "));
        assert_eq!(config.dir, PathBuf::from(DEFAULT_DIR));
    }
}
