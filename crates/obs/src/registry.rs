//! The process-wide metrics registry: counters, gauges and fixed-bucket
//! histograms cheap enough for the mission hot path.
//!
//! Counters are *sharded*: each instrument holds a small array of
//! cache-line-padded atomics and a writing thread picks its shard by a
//! thread-local index, so concurrent mission workers incrementing the same
//! counter do not serialize on one cache line. Reads sum the shards —
//! counters are exact (every add lands in exactly one shard), merely not
//! instantaneous snapshots across shards, which is all an exposition dump
//! needs.
//!
//! Histograms use fixed upper bounds chosen at registration (first
//! registration of a name wins) and accumulate their sum in 1 ns
//! fixed-point, so `observe` is atomics-only — no locks anywhere on the
//! write path.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Shards per counter. Eight covers the worker counts the mission executor
/// realistically runs with while keeping an idle counter at one cache line
/// per shard.
pub const SHARDS: usize = 8;

/// One cache line of counter state, padded so neighbouring shards never
/// false-share.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedU64(AtomicU64);

static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// The shard index of this thread, assigned round-robin on first use.
    static THREAD_SHARD: usize = NEXT_THREAD.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

fn shard_index() -> usize {
    THREAD_SHARD.with(|shard| *shard)
}

/// A monotonically increasing, sharded counter.
#[derive(Debug)]
pub struct Counter {
    shards: [PaddedU64; SHARDS],
}

impl Counter {
    fn new() -> Self {
        Self {
            shards: std::array::from_fn(|_| PaddedU64::default()),
        }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// The exact total of every add so far.
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|shard| shard.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A last-write-wins instantaneous value (stored as `f64` bits).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    fn new() -> Self {
        Self {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// The most recently set value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Fixed-point quantum of the histogram sum: 1 ns for second-valued
/// observations, which bounds the accumulated rounding error far below
/// anything an exposition reader can see.
const SUM_QUANTUM: f64 = 1e9;

/// A fixed-bucket histogram (cumulative bucket semantics on exposition,
/// like Prometheus): `bounds` are the finite upper bounds, with an implicit
/// `+Inf` bucket at the end.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: Counter,
    sum_quanta: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        debug_assert!(
            bounds.windows(2).all(|pair| pair[0] < pair[1]),
            "histogram bounds must be strictly increasing"
        );
        Self {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: Counter::new(),
            sum_quanta: AtomicU64::new(0),
        }
    }

    /// Records one observation. Values at a bound land in that bound's
    /// bucket (`le` semantics); everything above the last bound lands in
    /// the implicit `+Inf` bucket.
    pub fn observe(&self, value: f64) {
        let index = self
            .bounds
            .iter()
            .position(|&bound| value <= bound)
            .unwrap_or(self.bounds.len());
        self.buckets[index].fetch_add(1, Ordering::Relaxed);
        self.count.inc();
        let quanta = (value.max(0.0) * SUM_QUANTUM).round() as u64;
        self.sum_quanta.fetch_add(quanta, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.value()
    }

    /// Sum of observations (1 ns fixed-point resolution).
    pub fn sum(&self) -> f64 {
        self.sum_quanta.load(Ordering::Relaxed) as f64 / SUM_QUANTUM
    }

    /// The finite upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket (non-cumulative) observation counts, the `+Inf` bucket
    /// last.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|bucket| bucket.load(Ordering::Relaxed))
            .collect()
    }
}

/// Default bounds for wall-clock histograms: 1 ms to 2 minutes, roughly
/// logarithmic — module ticks sit at the bottom, whole missions at the top.
pub const SECONDS_BUCKETS: &[f64] = &[
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0,
];

/// The named-instrument registry. Instruments are created on first lookup
/// and live for the registry's lifetime; hot call sites should cache the
/// returned [`Arc`] (a lookup takes a mutex).
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// An empty, private registry (tests; the engine uses
    /// [`Registry::global`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide registry every instrumented crate writes into.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut counters = self.counters.lock().expect("obs registry poisoned");
        match counters.get(name) {
            Some(counter) => counter.clone(),
            None => {
                let counter = Arc::new(Counter::new());
                counters.insert(name.to_string(), counter.clone());
                counter
            }
        }
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut gauges = self.gauges.lock().expect("obs registry poisoned");
        match gauges.get(name) {
            Some(gauge) => gauge.clone(),
            None => {
                let gauge = Arc::new(Gauge::new());
                gauges.insert(name.to_string(), gauge.clone());
                gauge
            }
        }
    }

    /// The histogram named `name`, created with `bounds` on first use (a
    /// later registration with different bounds gets the original
    /// instrument — bounds are part of the name's identity, first wins).
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        let mut histograms = self.histograms.lock().expect("obs registry poisoned");
        match histograms.get(name) {
            Some(histogram) => histogram.clone(),
            None => {
                let histogram = Arc::new(Histogram::new(bounds));
                histograms.insert(name.to_string(), histogram.clone());
                histogram
            }
        }
    }

    /// Renders every instrument as Prometheus-style text exposition
    /// (instruments in name order, buckets cumulative).
    pub fn exposition(&self) -> String {
        let mut out = String::new();
        for (name, counter) in self.counters.lock().expect("obs registry poisoned").iter() {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {}", counter.value());
        }
        for (name, gauge) in self.gauges.lock().expect("obs registry poisoned").iter() {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {}", format_value(gauge.value()));
        }
        for (name, histogram) in self
            .histograms
            .lock()
            .expect("obs registry poisoned")
            .iter()
        {
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for (bound, count) in histogram.bounds().iter().zip(histogram.bucket_counts()) {
                cumulative += count;
                let _ = writeln!(
                    out,
                    "{name}_bucket{{le=\"{}\"}} {cumulative}",
                    format_value(*bound)
                );
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", histogram.count());
            let _ = writeln!(out, "{name}_sum {}", format_value(histogram.sum()));
            let _ = writeln!(out, "{name}_count {}", histogram.count());
        }
        out
    }
}

/// Formats an exposition value: finite floats as-is, non-finite sanitized
/// to 0 (the registry never produces them, but a dump must stay parseable).
fn format_value(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_count_and_share_by_name() {
        let registry = Registry::new();
        let a = registry.counter("mls_test_total");
        let b = registry.counter("mls_test_total");
        assert!(Arc::ptr_eq(&a, &b));
        a.inc();
        b.add(4);
        assert_eq!(a.value(), 5);
        assert_eq!(registry.counter("mls_other_total").value(), 0);
    }

    #[test]
    fn counters_are_exact_across_threads() {
        let registry = Arc::new(Registry::new());
        let counter = registry.counter("mls_threads_total");
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let counter = counter.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        counter.inc();
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(counter.value(), 80_000);
    }

    #[test]
    fn gauges_are_last_write_wins() {
        let registry = Registry::new();
        let gauge = registry.gauge("mls_depth");
        assert_eq!(gauge.value(), 0.0);
        gauge.set(3.5);
        gauge.set(-1.25);
        assert_eq!(gauge.value(), -1.25);
    }

    #[test]
    fn histogram_bucket_edges_are_le_semantics() {
        let registry = Registry::new();
        let histogram = registry.histogram("mls_lat_seconds", &[0.1, 1.0, 10.0]);
        // Exactly at a bound lands in that bound's bucket.
        histogram.observe(0.1);
        // Strictly inside a bucket.
        histogram.observe(0.5);
        // At the last finite bound.
        histogram.observe(10.0);
        // Above every bound: the +Inf bucket.
        histogram.observe(11.0);
        // Negative observations clamp into the first bucket (and the sum).
        histogram.observe(-1.0);
        assert_eq!(histogram.bucket_counts(), vec![2, 1, 1, 1]);
        assert_eq!(histogram.count(), 5);
        assert!((histogram.sum() - (0.1 + 0.5 + 10.0 + 11.0)).abs() < 1e-6);
    }

    #[test]
    fn histogram_bounds_identity_is_first_registration() {
        let registry = Registry::new();
        let first = registry.histogram("mls_h", &[1.0]);
        let second = registry.histogram("mls_h", &[2.0, 3.0]);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(second.bounds(), &[1.0]);
    }

    #[test]
    fn exposition_renders_all_instrument_kinds() {
        let registry = Registry::new();
        registry.counter("mls_jobs_total").add(7);
        registry.gauge("mls_queue_depth").set(2.0);
        let histogram = registry.histogram("mls_wall_seconds", &[0.5, 1.0]);
        histogram.observe(0.25);
        histogram.observe(2.0);
        let text = registry.exposition();
        assert!(text.contains("# TYPE mls_jobs_total counter"));
        assert!(text.contains("mls_jobs_total 7"));
        assert!(text.contains("mls_queue_depth 2"));
        assert!(text.contains("mls_wall_seconds_bucket{le=\"0.5\"} 1"));
        assert!(text.contains("mls_wall_seconds_bucket{le=\"1\"} 1"));
        assert!(text.contains("mls_wall_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("mls_wall_seconds_count 2"));
        // Every non-comment line is `name value` — parseable exposition.
        for line in text.lines().filter(|line| !line.starts_with('#')) {
            let mut parts = line.split_whitespace();
            assert!(parts.next().is_some(), "metric name missing: {line}");
            let value = parts.next().expect("metric value missing");
            assert!(value.parse::<f64>().is_ok(), "unparseable value: {line}");
            assert!(parts.next().is_none(), "trailing tokens: {line}");
        }
    }
}
