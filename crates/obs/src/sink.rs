//! File sinks: the versioned JSONL event log and hand-rolled JSON
//! rendering (the obs crate is dependency-free by design, so it writes
//! its own JSON — the subset it emits is flat objects of scalars).

use std::fs::{self, File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// Schema tag stamped on the first line of every JSONL log. Bump when the
/// event shape changes incompatibly.
pub const SCHEMA: &str = "mls-obs-v1";

/// Escapes `s` for inclusion inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders an `f64` as a JSON number (non-finite values become `null`,
/// which keeps the log parseable no matter what an instrument observed).
pub fn json_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".to_string()
    }
}

/// Incremental builder for one flat JSON object, rendered as a single line.
#[derive(Debug)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        Self {
            buf: String::from("{"),
        }
    }

    fn key(&mut self, key: &str) {
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
        self.buf.push('"');
        self.buf.push_str(&json_escape(key));
        self.buf.push_str("\":");
    }

    /// Adds a string field.
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        self.buf.push('"');
        self.buf.push_str(&json_escape(value));
        self.buf.push('"');
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Adds a signed integer field.
    pub fn i64(&mut self, key: &str, value: i64) -> &mut Self {
        self.key(key);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Adds a float field (`null` when non-finite).
    pub fn f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.key(key);
        self.buf.push_str(&json_f64(value));
        self
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Closes the object and returns the one-line rendering.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for JsonObject {
    fn default() -> Self {
        Self::new()
    }
}

/// Seconds since the Unix epoch, as a float (best-effort: 0 when the
/// clock is before the epoch).
pub fn unix_seconds() -> f64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs_f64())
        .unwrap_or(0.0)
}

/// A per-process artifact file name: `<stem>-<pid>.<ext>`, with the
/// optional tag infixed — `<stem>-<tag>-<pid>.<ext>` — so processes
/// sharing one artifact directory (a fabric dispatcher and its workers)
/// stay collision-free *and* attributable.
pub fn artifact_name(stem: &str, tag: Option<&str>, ext: &str) -> String {
    match tag {
        Some(tag) => format!("{stem}-{tag}-{}.{ext}", std::process::id()),
        None => format!("{stem}-{}.{ext}", std::process::id()),
    }
}

/// The append-only JSONL event log. Opens lazily on the first event so a
/// run that enables obs but emits nothing leaves no file behind; writes
/// are best-effort (an unwritable sink must never perturb the engine).
#[derive(Debug)]
pub struct EventLog {
    path: PathBuf,
    writer: Mutex<Option<BufWriter<File>>>,
}

impl EventLog {
    /// A log that will write `obs-<pid>.jsonl` under `dir` when first
    /// used — or `obs-<tag>-<pid>.jsonl` when a tag names this process
    /// inside a shared artifact directory (fabric workers).
    pub fn new(dir: &Path, tag: Option<&str>) -> Self {
        Self {
            path: dir.join(artifact_name("obs", tag, "jsonl")),
            writer: Mutex::new(None),
        }
    }

    /// The file this log writes to (whether or not it exists yet).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one pre-rendered JSON line. Opens the file (writing the
    /// schema header line) on first use; errors are swallowed.
    pub fn write_line(&self, line: &str) {
        let mut guard = match self.writer.lock() {
            Ok(guard) => guard,
            Err(_) => return,
        };
        if guard.is_none() {
            let Some(writer) = self.open() else { return };
            *guard = Some(writer);
        }
        if let Some(writer) = guard.as_mut() {
            let _ = writer.write_all(line.as_bytes());
            let _ = writer.write_all(b"\n");
        }
    }

    fn open(&self) -> Option<BufWriter<File>> {
        let dir = self.path.parent()?;
        fs::create_dir_all(dir).ok()?;
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
            .ok()?;
        let mut writer = BufWriter::new(file);
        let mut header = JsonObject::new();
        header
            .str("schema", SCHEMA)
            .u64("pid", u64::from(std::process::id()))
            .f64("start_unix_s", unix_seconds());
        let _ = writer.write_all(header.finish().as_bytes());
        let _ = writer.write_all(b"\n");
        Some(writer)
    }

    /// Flushes buffered events to disk. Returns the log path when the file
    /// was actually created (i.e. at least one event was written).
    pub fn flush(&self) -> Option<PathBuf> {
        let mut guard = self.writer.lock().ok()?;
        let writer = guard.as_mut()?;
        let _ = writer.flush();
        Some(self.path.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_quotes_backslashes_and_control_chars() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("line\nfeed\ttab"), "line\\nfeed\\ttab");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn object_builder_renders_flat_json() {
        let mut object = JsonObject::new();
        object
            .str("event", "probe")
            .u64("count", 3)
            .i64("delta", -2)
            .f64("seconds", 0.25)
            .f64("bad", f64::NAN)
            .bool("ok", true);
        assert_eq!(
            object.finish(),
            r#"{"event":"probe","count":3,"delta":-2,"seconds":0.25,"bad":null,"ok":true}"#
        );
    }

    #[test]
    fn empty_object_is_valid() {
        assert_eq!(JsonObject::new().finish(), "{}");
    }
}
