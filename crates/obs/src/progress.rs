//! The opt-in stderr progress line: missions flown / early-stops / ETA,
//! throttled so the hot path pays one relaxed load almost every time.

use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Minimum milliseconds between redraws of the progress line.
const THROTTLE_MS: u64 = 250;

/// Shared campaign progress state. Counters are updated from mission jobs
/// on any thread; the line is redrawn by whichever updater wins a CAS on
/// the throttle stamp, so redraws never stack up.
#[derive(Debug)]
pub struct Progress {
    active: bool,
    start: Instant,
    planned: AtomicU64,
    flown: AtomicU64,
    early_stops: AtomicU64,
    saved: AtomicU64,
    last_draw_ms: AtomicU64,
    drawn: AtomicU64,
}

impl Progress {
    /// A progress tracker; `active` mirrors the `progress` sink flag.
    pub fn new(active: bool) -> Self {
        Self {
            active,
            start: Instant::now(),
            planned: AtomicU64::new(0),
            flown: AtomicU64::new(0),
            early_stops: AtomicU64::new(0),
            saved: AtomicU64::new(0),
            last_draw_ms: AtomicU64::new(0),
            drawn: AtomicU64::new(0),
        }
    }

    /// Registers `n` more planned missions (denominator of the line).
    pub fn add_planned(&self, n: u64) {
        self.planned.fetch_add(n, Ordering::Relaxed);
        self.maybe_draw();
    }

    /// Records one flown mission.
    pub fn mission_flown(&self) {
        self.flown.fetch_add(1, Ordering::Relaxed);
        self.maybe_draw();
    }

    /// Records an early-stop verdict that skipped `missions_saved` planned
    /// missions.
    pub fn early_stop(&self, missions_saved: u64) {
        self.early_stops.fetch_add(1, Ordering::Relaxed);
        self.saved.fetch_add(missions_saved, Ordering::Relaxed);
        self.maybe_draw();
    }

    /// Missions flown so far.
    pub fn flown(&self) -> u64 {
        self.flown.load(Ordering::Relaxed)
    }

    /// Early-stop verdicts so far.
    pub fn early_stops(&self) -> u64 {
        self.early_stops.load(Ordering::Relaxed)
    }

    /// Missions skipped by early stops so far.
    pub fn missions_saved(&self) -> u64 {
        self.saved.load(Ordering::Relaxed)
    }

    fn maybe_draw(&self) {
        if !self.active {
            return;
        }
        let now_ms = self.start.elapsed().as_millis() as u64;
        let last = self.last_draw_ms.load(Ordering::Relaxed);
        // `now_ms == 0` would re-enter the CAS forever in the first
        // millisecond; the +1 below keeps the stamp moving.
        if now_ms < last.saturating_add(THROTTLE_MS) {
            return;
        }
        if self
            .last_draw_ms
            .compare_exchange(last, now_ms + 1, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        self.draw(false);
    }

    /// Renders the line; `fin` finishes it with a newline instead of `\r`.
    fn draw(&self, fin: bool) {
        let line = self.render();
        let mut stderr = std::io::stderr().lock();
        if fin {
            let _ = writeln!(stderr, "\r{line}");
        } else {
            let _ = write!(stderr, "\r{line}");
            let _ = stderr.flush();
        }
        self.drawn.fetch_add(1, Ordering::Relaxed);
    }

    /// The current one-line summary (shared by the redraw path and tests).
    pub fn render(&self) -> String {
        let flown = self.flown.load(Ordering::Relaxed);
        let planned = self.planned.load(Ordering::Relaxed);
        let saved = self.saved.load(Ordering::Relaxed);
        let stops = self.early_stops.load(Ordering::Relaxed);
        let elapsed = self.start.elapsed().as_secs_f64();
        let rate = if elapsed > 0.0 {
            flown as f64 / elapsed
        } else {
            0.0
        };
        // Early-stopped missions will never fly; they come off the ETA.
        let outstanding = planned.saturating_sub(saved).saturating_sub(flown);
        let eta = if rate > 0.0 {
            format_eta(outstanding as f64 / rate)
        } else {
            "--".to_string()
        };
        format!(
            "missions {flown}/{} | {rate:.1}/s | early-stops {stops} (saved {saved}) | eta {eta}",
            planned.max(flown)
        )
    }

    /// Final redraw with a trailing newline so the shell prompt is clean.
    /// Only prints when the line was active and at least one update
    /// happened.
    pub fn finish(&self) {
        if self.active
            && (self.drawn.load(Ordering::Relaxed) > 0 || self.flown.load(Ordering::Relaxed) > 0)
        {
            self.draw(true);
        }
    }
}

fn format_eta(seconds: f64) -> String {
    let seconds = seconds.round() as u64;
    if seconds >= 3600 {
        format!("{}h{:02}m", seconds / 3600, (seconds % 3600) / 60)
    } else if seconds >= 60 {
        format!("{}m{:02}s", seconds / 60, seconds % 60)
    } else {
        format!("{seconds}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let progress = Progress::new(false);
        progress.add_planned(100);
        for _ in 0..10 {
            progress.mission_flown();
        }
        progress.early_stop(25);
        assert_eq!(progress.flown(), 10);
        assert_eq!(progress.early_stops(), 1);
        assert_eq!(progress.missions_saved(), 25);
        let line = progress.render();
        assert!(line.contains("missions 10/100"), "{line}");
        assert!(line.contains("early-stops 1 (saved 25)"), "{line}");
    }

    #[test]
    fn inactive_progress_never_draws() {
        let progress = Progress::new(false);
        progress.mission_flown();
        progress.finish();
        assert_eq!(progress.drawn.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn eta_formats_scale() {
        assert_eq!(format_eta(5.0), "5s");
        assert_eq!(format_eta(125.0), "2m05s");
        assert_eq!(format_eta(3725.0), "1h02m");
    }

    #[test]
    fn planned_floor_never_shows_flown_above_planned() {
        let progress = Progress::new(false);
        progress.mission_flown();
        progress.mission_flown();
        assert!(progress.render().contains("missions 2/2"));
    }
}
