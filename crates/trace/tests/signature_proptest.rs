//! Property tests for failure signatures: the corpus dedup key must be a
//! pure function of the trace *value*, stable under re-serialization — a
//! trace written to JSON lines, shipped, archived and parsed back must
//! produce the byte-identical signature, or dedup would split one failure
//! mode into two across a fabric hop.

use mls_core::{Directive, FailsafeReason, MissionResult, ObservationStage, SystemVariant};
use mls_geom::Vec3;
use mls_trace::{FailureSignature, Trace, TraceEvent, TraceHeader, TRACE_FORMAT_VERSION};
use proptest::prelude::*;

fn vec3(x: f64, y: f64, z: f64) -> Vec3 {
    Vec3::new(x, y, z)
}

/// Deterministically expands one sampled `(selector, time, a, b, c, n)`
/// tuple into an event covering every variant of the model.
fn event_from(selector: u32, time: f64, a: f64, b: f64, c: f64, n: u32) -> TraceEvent {
    match selector % 10 {
        0 => TraceEvent::Tick {
            time,
            position: vec3(a, b, c),
            velocity: vec3(b, c, a),
            estimated: vec3(a + 0.1, b, c),
            gps_drift: a.abs(),
            estimation_error: b.abs(),
        },
        1 => TraceEvent::DirectiveChange {
            time,
            directive: match n % 4 {
                0 => Directive::Hover,
                1 => Directive::FlyTo {
                    goal: vec3(a, b, c),
                },
                2 => Directive::DescendTo {
                    goal: vec3(a, b, c),
                },
                _ => Directive::Abort {
                    reason: FailsafeReason::MarkerLost,
                },
            },
        },
        2 => TraceEvent::Markers {
            time,
            stage: if n.is_multiple_of(2) {
                ObservationStage::PreFault
            } else {
                ObservationStage::PostFault
            },
            markers: (0..(n % 4))
                .map(|i| mls_trace::MarkerSighting {
                    id: i,
                    position: vec3(a + i as f64, b, 0.0),
                    confidence: (c.abs() % 1.0).min(1.0),
                })
                .collect(),
        },
        3 => TraceEvent::PlanRequest {
            time,
            start: vec3(a, b, c),
            goal: vec3(c, b, a),
        },
        4 => TraceEvent::PlanResult {
            time,
            success: n.is_multiple_of(2),
            fallback: n.is_multiple_of(3),
            latency: a.abs(),
            iterations: n as usize,
        },
        5 => TraceEvent::Failsafe {
            time,
            reason: match n % 5 {
                0 => FailsafeReason::SearchExhausted,
                1 => FailsafeReason::MarkerLost,
                2 => FailsafeReason::UnsafeDescent,
                3 => FailsafeReason::PlanningFailure,
                _ => FailsafeReason::MissionTimeout,
            },
        },
        6 => TraceEvent::FaultActive {
            time,
            gps_bias: vec3(a, b, 0.0),
            wind: vec3(c, a, 0.0),
            compute_throttle: (b.abs() % 1.0).max(0.05),
        },
        7 => TraceEvent::FaultCleared { time },
        8 => TraceEvent::MapUpdate {
            time,
            inserted: n as usize,
            dropped: (n / 3) as usize,
            displaced: (n / 7) as usize,
        },
        _ => TraceEvent::MissionEnd {
            time,
            result: match n % 3 {
                0 => MissionResult::Success,
                1 => MissionResult::CollisionFailure,
                _ => MissionResult::PoorLanding,
            },
        },
    }
}

fn header_from(seed: u64, variant_selector: u32) -> TraceHeader {
    TraceHeader {
        version: TRACE_FORMAT_VERSION,
        campaign: format!("sig-prop-{seed}"),
        seed,
        variant: match variant_selector % 3 {
            0 => SystemVariant::MlsV1,
            1 => SystemVariant::MlsV2,
            _ => SystemVariant::MlsV3,
        },
        scenario_id: (seed % 100) as usize,
        scenario_name: format!("map-{:02}/s{:02}", seed % 10, seed % 7),
        family: if seed.is_multiple_of(2) {
            "open".to_string()
        } else {
            "constrained-pad".to_string()
        },
        cell_index: (variant_selector % 20) as usize,
        repeat: (variant_selector % 3) as usize,
        config_hash: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        tick_decimation: 1 + (variant_selector % 50) as usize,
        map_decimation: 1 + (variant_selector % 8) as usize,
        capacity: 64 + (variant_selector % 8192) as usize,
        dropped_events: 0,
        coordinates: Vec::new(),
    }
}

proptest! {
    #[test]
    fn signatures_are_stable_under_jsonl_round_trips(
        seed in 0u64..u64::MAX,
        variant_selector in 0u32..1000,
        raw_events in prop::collection::vec(
            (
                (0u32..10, 0.0f64..600.0),
                (-80.0f64..80.0, -80.0f64..80.0, -80.0f64..80.0, 0u32..5000),
            ),
            0..40,
        ),
    ) {
        let trace = Trace {
            header: header_from(seed, variant_selector),
            events: raw_events
                .into_iter()
                .map(|((s, t), (a, b, c, n))| event_from(s, t, a, b, c, n))
                .collect(),
        };
        let original = FailureSignature::of(&trace);
        let round_tripped = Trace::from_jsonl(&trace.to_jsonl().unwrap()).unwrap();
        let reparsed = FailureSignature::of(&round_tripped);
        prop_assert_eq!(&reparsed, &original);
        prop_assert_eq!(reparsed.key(), original.key());
        prop_assert_eq!(reparsed.hash64(), original.hash64());
        // A second hop (archive, re-ship) changes nothing either.
        let second_hop = Trace::from_jsonl(&round_tripped.to_jsonl().unwrap()).unwrap();
        prop_assert_eq!(FailureSignature::of(&second_hop).key(), original.key());
    }

    #[test]
    fn signature_keys_are_canonical(
        raw_events in prop::collection::vec(
            (
                (0u32..10, 0.0f64..600.0),
                (-80.0f64..80.0, -80.0f64..80.0, -80.0f64..80.0, 0u32..5000),
            ),
            1..20,
        ),
    ) {
        let trace = Trace {
            header: header_from(3, 5),
            events: raw_events
                .into_iter()
                .map(|((s, t), (a, b, c, n))| event_from(s, t, a, b, c, n))
                .collect(),
        };
        let signature = FailureSignature::of(&trace);
        // The key embeds exactly the four components, in order.
        let key = signature.key();
        let parts: Vec<&str> = key.splitn(4, '/').collect();
        prop_assert_eq!(parts[0], signature.verdict.as_str());
        prop_assert_eq!(parts[1], signature.class.as_str());
        // Recomputing on the same value is a pure function.
        prop_assert_eq!(FailureSignature::of(&trace), signature);
    }
}
