//! The on-disk trace format: versioned-header JSON lines.
//!
//! A trace file is plain text. Line 1 is the [`TraceHeader`] — format
//! version, mission identity (seed, variant, scenario), campaign coordinates
//! (cell, repeat), the spec hash and the recorder parameters — and every
//! following line is one compact-JSON [`TraceEvent`]. The encoding is
//! deterministic (the vendored `serde_json` keeps field order and prints
//! floats with the shortest round-trip form), which is what makes replay a
//! byte comparison rather than a tolerance game.

use std::fs;
use std::io::Write as _;
use std::path::Path;

use mls_core::SystemVariant;
use serde::{Deserialize, Serialize};

use crate::event::TraceEvent;
use crate::TraceError;

/// Current trace-format version, bumped on any incompatible change.
pub const TRACE_FORMAT_VERSION: u32 = 1;

/// FNV-1a hash of a configuration's canonical JSON, embedded in headers so a
/// replay against a drifted spec is rejected instead of silently diverging.
pub fn config_hash(canonical_json: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in canonical_json.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The versioned first line of every trace file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceHeader {
    /// Trace-format version ([`TRACE_FORMAT_VERSION`]).
    pub version: u32,
    /// Campaign (or harness) name the mission flew under.
    pub campaign: String,
    /// The mission seed.
    pub seed: u64,
    /// System generation flown.
    pub variant: SystemVariant,
    /// Scenario identifier.
    pub scenario_id: usize,
    /// Scenario name.
    pub scenario_name: String,
    /// Campaign-grid cell index (0 outside a campaign).
    pub cell_index: usize,
    /// Repeat index within the cell.
    pub repeat: usize,
    /// FNV-1a hash of the campaign spec's canonical JSON.
    pub config_hash: u64,
    /// Physics-tick decimation the recorder ran with (record every Nth).
    pub tick_decimation: usize,
    /// Clean map-update decimation the recorder ran with.
    pub map_decimation: usize,
    /// Ring-buffer capacity the recorder ran with, events.
    pub capacity: usize,
    /// Events the ring buffer evicted (0 when nothing was lost).
    pub dropped_events: u64,
}

/// A complete captured trace: header plus the surviving event stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// The versioned header.
    pub header: TraceHeader,
    /// Events in capture order (oldest evicted first when the ring
    /// overflowed; see [`TraceHeader::dropped_events`]).
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Serialises the trace as JSON lines: header line, then one event per
    /// line.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Serialize`] when serde rejects a value.
    pub fn to_jsonl(&self) -> Result<String, TraceError> {
        let mut out = serde_json::to_string(&self.header)
            .map_err(|e| TraceError::Serialize(e.to_string()))?;
        out.push('\n');
        out.push_str(&self.events_jsonl()?);
        Ok(out)
    }

    /// Serialises only the event stream (one compact-JSON line per event,
    /// each newline-terminated) — the byte string replay verification
    /// compares.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Serialize`] when serde rejects a value.
    pub fn events_jsonl(&self) -> Result<String, TraceError> {
        let mut out = String::new();
        for event in &self.events {
            out.push_str(
                &serde_json::to_string(event).map_err(|e| TraceError::Serialize(e.to_string()))?,
            );
            out.push('\n');
        }
        Ok(out)
    }

    /// Parses a trace back from its JSON-lines form.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Serialize`] on malformed lines and
    /// [`TraceError::UnsupportedVersion`] when the header's format version
    /// is newer than this library.
    pub fn from_jsonl(text: &str) -> Result<Self, TraceError> {
        let mut lines = text.lines().filter(|line| !line.trim().is_empty());
        let header_line = lines
            .next()
            .ok_or_else(|| TraceError::Serialize("empty trace".to_string()))?;
        let header: TraceHeader = serde_json::from_str(header_line)
            .map_err(|e| TraceError::Serialize(format!("header: {e}")))?;
        if header.version > TRACE_FORMAT_VERSION {
            return Err(TraceError::UnsupportedVersion {
                found: header.version,
                supported: TRACE_FORMAT_VERSION,
            });
        }
        let mut events = Vec::new();
        for (index, line) in lines.enumerate() {
            events
                .push(serde_json::from_str(line).map_err(|e| {
                    TraceError::Serialize(format!("event line {}: {e}", index + 2))
                })?);
        }
        Ok(Self { header, events })
    }

    /// Writes the trace to `path`, creating parent directories as needed.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] on filesystem failures.
    pub fn write_to(&self, path: &Path) -> Result<(), TraceError> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent).map_err(|e| TraceError::Io(e.to_string()))?;
        }
        let mut file = fs::File::create(path).map_err(|e| TraceError::Io(e.to_string()))?;
        file.write_all(self.to_jsonl()?.as_bytes())
            .map_err(|e| TraceError::Io(e.to_string()))
    }

    /// Reads a trace back from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] on filesystem failures and the
    /// [`Trace::from_jsonl`] errors on malformed content.
    pub fn read_from(path: &Path) -> Result<Self, TraceError> {
        let text = fs::read_to_string(path).map_err(|e| TraceError::Io(e.to_string()))?;
        Self::from_jsonl(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mls_core::MissionResult;
    use mls_geom::Vec3;

    fn header() -> TraceHeader {
        TraceHeader {
            version: TRACE_FORMAT_VERSION,
            campaign: "test".to_string(),
            seed: 42,
            variant: SystemVariant::MlsV3,
            scenario_id: 3,
            scenario_name: "urban-00/s03".to_string(),
            cell_index: 1,
            repeat: 0,
            config_hash: config_hash("{}"),
            tick_decimation: 25,
            map_decimation: 8,
            capacity: 8192,
            dropped_events: 0,
        }
    }

    fn trace() -> Trace {
        Trace {
            header: header(),
            events: vec![
                TraceEvent::Tick {
                    time: 30.0,
                    position: Vec3::new(0.0, 0.0, 10.0),
                    velocity: Vec3::ZERO,
                    estimated: Vec3::new(0.1, 0.0, 10.0),
                    gps_drift: 0.2,
                    estimation_error: 0.1,
                },
                TraceEvent::MissionEnd {
                    time: 95.0,
                    result: MissionResult::Success,
                },
            ],
        }
    }

    #[test]
    fn jsonl_round_trips() {
        let trace = trace();
        let text = trace.to_jsonl().unwrap();
        assert_eq!(text.lines().count(), 3, "header plus two events");
        let parsed = Trace::from_jsonl(&text).unwrap();
        assert_eq!(parsed, trace);
    }

    #[test]
    fn files_round_trip() {
        let trace = trace();
        let dir = std::env::temp_dir().join(format!("mls-trace-fmt-{}", std::process::id()));
        let path = dir.join("nested").join("t.jsonl");
        trace.write_to(&path).unwrap();
        let back = Trace::read_from(&path).unwrap();
        assert_eq!(back, trace);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn newer_versions_are_rejected() {
        let mut trace = trace();
        trace.header.version = TRACE_FORMAT_VERSION + 1;
        let text = trace.to_jsonl().unwrap();
        assert!(matches!(
            Trace::from_jsonl(&text),
            Err(TraceError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn malformed_lines_are_rejected_with_position() {
        let mut text = trace().to_jsonl().unwrap();
        text.push_str("not json\n");
        let err = Trace::from_jsonl(&text).unwrap_err();
        assert!(err.to_string().contains("line 4"), "{err}");
        assert!(Trace::from_jsonl("").is_err());
    }

    #[test]
    fn config_hash_is_stable_and_content_sensitive() {
        assert_eq!(config_hash("abc"), config_hash("abc"));
        assert_ne!(config_hash("abc"), config_hash("abd"));
        // The FNV-1a reference value for the empty string.
        assert_eq!(config_hash(""), 0xcbf2_9ce4_8422_2325);
    }
}
