//! The on-disk trace format: versioned-header JSON lines.
//!
//! A trace file is plain text. Line 1 is the [`TraceHeader`] — format
//! version, mission identity (seed, variant, scenario), campaign coordinates
//! (cell, repeat), the spec hash and the recorder parameters — and every
//! following line is one compact-JSON [`TraceEvent`]. The encoding is
//! deterministic (the vendored `serde_json` keeps field order and prints
//! floats with the shortest round-trip form), which is what makes replay a
//! byte comparison rather than a tolerance game.

use std::fs;
use std::path::Path;

use mls_core::SystemVariant;
use serde::{Deserialize, Serialize};

use crate::event::TraceEvent;
use crate::TraceError;

/// Current trace-format version, bumped on any incompatible change.
pub const TRACE_FORMAT_VERSION: u32 = 1;

/// FNV-1a hash of a configuration's canonical JSON, embedded in headers so a
/// replay against a drifted spec is rejected instead of silently diverging.
pub fn config_hash(canonical_json: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in canonical_json.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One coordinate of the fault-space point a mission flew: an axis label
/// (the fault kind's report label) and the intensity injected along it.
///
/// Campaign runners stamp these into every captured header, so a trace is
/// self-describing about *where in the fault space* it was recorded — the
/// falsification search relies on this to ship minimal counterexamples as
/// standalone artifacts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AxisCoordinate {
    /// Axis label (`"gps-bias"`, `"marker-occlusion"`, …).
    pub axis: String,
    /// Intensity injected along the axis, in `[0, 1]`.
    pub value: f64,
}

/// The versioned first line of every trace file.
///
/// `Deserialize` is implemented by hand so trace files written before the
/// falsification subsystem existed (no `coordinates` key) still parse with
/// an empty coordinate list — the vendored serde has no `#[serde(default)]`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TraceHeader {
    /// Trace-format version ([`TRACE_FORMAT_VERSION`]).
    pub version: u32,
    /// Campaign (or harness) name the mission flew under.
    pub campaign: String,
    /// The mission seed.
    pub seed: u64,
    /// System generation flown.
    pub variant: SystemVariant,
    /// Scenario identifier.
    pub scenario_id: usize,
    /// Scenario name.
    pub scenario_name: String,
    /// Scenario-family label the mission's suite was generated under
    /// (`"open"` for the paper benchmark and for traces predating families).
    pub family: String,
    /// Campaign-grid cell index (0 outside a campaign).
    pub cell_index: usize,
    /// Repeat index within the cell.
    pub repeat: usize,
    /// FNV-1a hash of the campaign spec's canonical JSON.
    pub config_hash: u64,
    /// Physics-tick decimation the recorder ran with (record every Nth).
    pub tick_decimation: usize,
    /// Clean map-update decimation the recorder ran with.
    pub map_decimation: usize,
    /// Ring-buffer capacity the recorder ran with, events.
    pub capacity: usize,
    /// Events the ring buffer evicted (0 when nothing was lost).
    pub dropped_events: u64,
    /// The fault-space point the mission flew: one coordinate per injected
    /// fault plan, in activation order (empty for fault-free missions and
    /// traces predating the falsification subsystem).
    pub coordinates: Vec<AxisCoordinate>,
}

impl serde::Deserialize for TraceHeader {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        Ok(Self {
            version: serde::de_field(value, "version")?,
            campaign: serde::de_field(value, "campaign")?,
            seed: serde::de_field(value, "seed")?,
            variant: serde::de_field(value, "variant")?,
            scenario_id: serde::de_field(value, "scenario_id")?,
            scenario_name: serde::de_field(value, "scenario_name")?,
            // Headers predating scenario families belong to the open suite.
            family: match value.get("family") {
                Some(inner) => serde::Deserialize::from_value(inner)?,
                None => "open".to_string(),
            },
            cell_index: serde::de_field(value, "cell_index")?,
            repeat: serde::de_field(value, "repeat")?,
            config_hash: serde::de_field(value, "config_hash")?,
            tick_decimation: serde::de_field(value, "tick_decimation")?,
            map_decimation: serde::de_field(value, "map_decimation")?,
            capacity: serde::de_field(value, "capacity")?,
            dropped_events: serde::de_field(value, "dropped_events")?,
            // Headers predating the falsification subsystem have no
            // coordinates key.
            coordinates: match value.get("coordinates") {
                Some(inner) => serde::Deserialize::from_value(inner)?,
                None => Vec::new(),
            },
        })
    }
}

/// A complete captured trace: header plus the surviving event stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// The versioned header.
    pub header: TraceHeader,
    /// Events in capture order (oldest evicted first when the ring
    /// overflowed; see [`TraceHeader::dropped_events`]).
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Serialises the trace as JSON lines: header line, then one event per
    /// line.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Serialize`] when serde rejects a value.
    pub fn to_jsonl(&self) -> Result<String, TraceError> {
        let mut out = serde_json::to_string(&self.header)
            .map_err(|e| TraceError::Serialize(e.to_string()))?;
        out.push('\n');
        out.push_str(&self.events_jsonl()?);
        Ok(out)
    }

    /// Serialises only the event stream (one compact-JSON line per event,
    /// each newline-terminated) — the byte string replay verification
    /// compares.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Serialize`] when serde rejects a value.
    pub fn events_jsonl(&self) -> Result<String, TraceError> {
        let mut out = String::new();
        for event in &self.events {
            out.push_str(
                &serde_json::to_string(event).map_err(|e| TraceError::Serialize(e.to_string()))?,
            );
            out.push('\n');
        }
        Ok(out)
    }

    /// Parses a trace back from its JSON-lines form.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Serialize`] on malformed lines and
    /// [`TraceError::UnsupportedVersion`] when the header's format version
    /// is newer than this library.
    pub fn from_jsonl(text: &str) -> Result<Self, TraceError> {
        let mut lines = text.lines().filter(|line| !line.trim().is_empty());
        let header_line = lines
            .next()
            .ok_or_else(|| TraceError::Serialize("empty trace".to_string()))?;
        let header: TraceHeader = serde_json::from_str(header_line)
            .map_err(|e| TraceError::Serialize(format!("header: {e}")))?;
        if header.version > TRACE_FORMAT_VERSION {
            return Err(TraceError::UnsupportedVersion {
                found: header.version,
                supported: TRACE_FORMAT_VERSION,
            });
        }
        let mut events = Vec::new();
        for (index, line) in lines.enumerate() {
            events
                .push(serde_json::from_str(line).map_err(|e| {
                    TraceError::Serialize(format!("event line {}: {e}", index + 2))
                })?);
        }
        Ok(Self { header, events })
    }

    /// Writes the trace to `path`, creating parent directories as needed.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] on filesystem failures.
    pub fn write_to(&self, path: &Path) -> Result<(), TraceError> {
        // Crash-ordered (tmp + fsync + rename): a kill mid-persist never
        // leaves a torn trace under the final name for replay to choke on.
        mls_obs::atomic_write(path, self.to_jsonl()?.as_bytes())
            .map_err(|e| TraceError::Io(e.to_string()))
    }

    /// Reads a trace back from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] on filesystem failures and the
    /// [`Trace::from_jsonl`] errors on malformed content.
    pub fn read_from(path: &Path) -> Result<Self, TraceError> {
        let text = fs::read_to_string(path).map_err(|e| TraceError::Io(e.to_string()))?;
        Self::from_jsonl(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mls_core::MissionResult;
    use mls_geom::Vec3;

    fn header() -> TraceHeader {
        TraceHeader {
            version: TRACE_FORMAT_VERSION,
            campaign: "test".to_string(),
            seed: 42,
            variant: SystemVariant::MlsV3,
            scenario_id: 3,
            scenario_name: "urban-00/s03".to_string(),
            family: "open".to_string(),
            cell_index: 1,
            repeat: 0,
            config_hash: config_hash("{}"),
            tick_decimation: 25,
            map_decimation: 8,
            capacity: 8192,
            dropped_events: 0,
            coordinates: vec![AxisCoordinate {
                axis: "gps-bias".to_string(),
                value: 0.5,
            }],
        }
    }

    fn trace() -> Trace {
        Trace {
            header: header(),
            events: vec![
                TraceEvent::Tick {
                    time: 30.0,
                    position: Vec3::new(0.0, 0.0, 10.0),
                    velocity: Vec3::ZERO,
                    estimated: Vec3::new(0.1, 0.0, 10.0),
                    gps_drift: 0.2,
                    estimation_error: 0.1,
                },
                TraceEvent::MissionEnd {
                    time: 95.0,
                    result: MissionResult::Success,
                },
            ],
        }
    }

    #[test]
    fn jsonl_round_trips() {
        let trace = trace();
        let text = trace.to_jsonl().unwrap();
        assert_eq!(text.lines().count(), 3, "header plus two events");
        let parsed = Trace::from_jsonl(&text).unwrap();
        assert_eq!(parsed, trace);
    }

    #[test]
    fn files_round_trip() {
        let trace = trace();
        let dir = std::env::temp_dir().join(format!("mls-trace-fmt-{}", std::process::id()));
        let path = dir.join("nested").join("t.jsonl");
        trace.write_to(&path).unwrap();
        let back = Trace::read_from(&path).unwrap();
        assert_eq!(back, trace);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn newer_versions_are_rejected() {
        let mut trace = trace();
        trace.header.version = TRACE_FORMAT_VERSION + 1;
        let text = trace.to_jsonl().unwrap();
        assert!(matches!(
            Trace::from_jsonl(&text),
            Err(TraceError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn malformed_lines_are_rejected_with_position() {
        let mut text = trace().to_jsonl().unwrap();
        text.push_str("not json\n");
        let err = Trace::from_jsonl(&text).unwrap_err();
        assert!(err.to_string().contains("line 4"), "{err}");
        assert!(Trace::from_jsonl("").is_err());
    }

    #[test]
    fn headers_without_a_coordinates_key_parse_with_an_empty_list() {
        // A header JSON written before the falsification subsystem: same
        // fields, no `coordinates` key.
        let text = trace().to_jsonl().unwrap();
        let header_line = text.lines().next().unwrap();
        let serde::Value::Object(mut fields) = serde_json::parse(header_line).unwrap() else {
            panic!("header serialises to an object");
        };
        fields.retain(|(key, _)| key != "coordinates");
        let legacy = serde_json::to_string(&serde::Value::Object(fields)).unwrap();
        let parsed: TraceHeader = serde_json::from_str(&legacy).unwrap();
        assert!(parsed.coordinates.is_empty());
        assert_eq!(parsed.seed, 42);
    }

    #[test]
    fn headers_without_a_family_key_parse_as_open() {
        // A header JSON written before scenario families existed.
        let text = trace().to_jsonl().unwrap();
        let header_line = text.lines().next().unwrap();
        let serde::Value::Object(mut fields) = serde_json::parse(header_line).unwrap() else {
            panic!("header serialises to an object");
        };
        fields.retain(|(key, _)| key != "family");
        let legacy = serde_json::to_string(&serde::Value::Object(fields)).unwrap();
        let parsed: TraceHeader = serde_json::from_str(&legacy).unwrap();
        assert_eq!(parsed.family, "open");
        assert_eq!(parsed.seed, 42);

        // A stamped family round-trips.
        let mut header = header();
        header.family = "constrained-pad".to_string();
        let json = serde_json::to_string(&header).unwrap();
        let back: TraceHeader = serde_json::from_str(&json).unwrap();
        assert_eq!(back.family, "constrained-pad");
    }

    #[test]
    fn coordinates_round_trip_through_the_header() {
        let trace = trace();
        assert_eq!(trace.header.coordinates.len(), 1);
        let text = trace.to_jsonl().unwrap();
        let parsed = Trace::from_jsonl(&text).unwrap();
        assert_eq!(parsed.header.coordinates, trace.header.coordinates);
        assert_eq!(parsed.header.coordinates[0].axis, "gps-bias");
    }

    #[test]
    fn config_hash_is_stable_and_content_sensitive() {
        assert_eq!(config_hash("abc"), config_hash("abc"));
        assert_ne!(config_hash("abc"), config_hash("abd"));
        // The FNV-1a reference value for the empty string.
        assert_eq!(config_hash(""), 0xcbf2_9ce4_8422_2325);
    }
}
