//! Flight recorder, deterministic replay and automated failure triage for
//! the landing-system reproduction.
//!
//! A failed mission used to leave behind only a scalar
//! [`MissionOutcome`](mls_core::MissionOutcome) summary; forensics meant
//! re-running by hand. This crate turns every mission into a replayable
//! artifact.
//!
//! # Module map
//!
//! * [`event`] — the typed [`TraceEvent`] model: decimated physics
//!   snapshots, directive transitions, marker observations before and after
//!   fault tampering, planning queries and latencies, failsafe triggers and
//!   fault-activation edges.
//! * [`format`](mod@format) — the versioned JSON-lines on-disk format
//!   ([`Trace`] / [`TraceHeader`]): a header line carrying seed, variant,
//!   scenario, campaign coordinates, spec hash and the fault-space
//!   [`AxisCoordinate`]s the mission flew; one compact event per following
//!   line, deterministically encoded. `docs/TRACE_FORMAT.md` in the
//!   repository root specifies the format for external tooling.
//! * [`recorder`] — the ring-buffered [`TraceRecorder`] implementing the
//!   `mls-core` [`TraceSink`](mls_core::TraceSink) seam, plus the
//!   [`TracePolicy`] campaigns use to decide what to keep.
//! * [`replay`] and [`triage`](mod@triage) — byte-exact replay verification
//!   ([`verify_replay`]) and the [`triage()`] classifier that maps a trace
//!   onto the paper's Fig. 5 failure taxonomy ([`Fig5Class`]).
//! * [`signature`](mod@signature) and [`corpus`] — the quantized
//!   [`FailureSignature`] dedup key over a trace's terminal state and
//!   failsafe/fault-edge skeleton, and the [`TraceCorpus`] store indexing
//!   captured trace trees by family, fault coordinates, triage class,
//!   verdict and signature, with a deterministic filter/group/count/sample
//!   query API.
//!
//! # Examples
//!
//! Record a mission and triage its trace:
//!
//! ```no_run
//! use mls_compute::{ComputeModel, ComputeProfile};
//! use mls_core::{ExecutorConfig, LandingConfig, MissionExecutor, SystemVariant};
//! use mls_sim_world::{ScenarioConfig, ScenarioGenerator};
//! use mls_trace::{triage, RecorderConfig, TraceRecorder};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let scenarios = ScenarioGenerator::new(ScenarioConfig {
//!     maps: 1, scenarios_per_map: 1, ..Default::default()
//! }).generate_benchmark(42)?;
//! let recorder_config = RecorderConfig::default();
//! let header = recorder_config.header(
//!     "adhoc", 7, SystemVariant::MlsV3, scenarios[0].id, &scenarios[0].name, 0, 0, 0,
//! );
//! let recorder = TraceRecorder::new(header);
//! let handle = recorder.handle();
//! let outcome = MissionExecutor::for_variant(
//!     &scenarios[0],
//!     SystemVariant::MlsV3,
//!     LandingConfig::default(),
//!     ComputeModel::new(ComputeProfile::desktop_sil())?,
//!     ExecutorConfig::default(),
//!     7,
//! )?
//! .with_trace_sink(Box::new(recorder))
//! .run();
//! let trace = handle.finish();
//! println!("{:?} → {:?}", outcome.result, triage(&trace).class);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

pub mod corpus;
pub mod event;
pub mod format;
pub mod recorder;
pub mod replay;
pub mod signature;
pub mod triage;

pub use corpus::{CorpusQuery, CorpusRecord, TraceCorpus, CORPUS_INDEX_FILE, CORPUS_INDEX_VERSION};
pub use event::{MarkerSighting, TraceEvent};
pub use format::{config_hash, AxisCoordinate, Trace, TraceHeader, TRACE_FORMAT_VERSION};
pub use recorder::{RecorderConfig, TraceHandle, TracePolicy, TraceRecorder};
pub use replay::{verify_replay, ReplayVerdict};
pub use signature::{verdict_label, FailureSignature};
pub use triage::{triage, Fig5Class, TriageReport};

/// Errors produced by the trace subsystem.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceError {
    /// Serialising or parsing a trace failed.
    Serialize(String),
    /// A filesystem operation failed.
    Io(String),
    /// The trace was written by a newer format version.
    UnsupportedVersion {
        /// The version found in the header.
        found: u32,
        /// The newest version this library reads.
        supported: u32,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Serialize(reason) => write!(f, "trace serialisation failed: {reason}"),
            TraceError::Io(reason) => write!(f, "trace io failed: {reason}"),
            TraceError::UnsupportedVersion { found, supported } => write!(
                f,
                "trace format version {found} is newer than the supported {supported}"
            ),
        }
    }
}

impl Error for TraceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_their_context() {
        let err = TraceError::Serialize("bad line".to_string());
        assert!(err.to_string().contains("bad line"));
        let err = TraceError::UnsupportedVersion {
            found: 9,
            supported: TRACE_FORMAT_VERSION,
        };
        assert!(err.to_string().contains('9'));
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TraceError>();
    }
}
