//! Failure signatures: quantized, replay-stable dedup keys over traces.
//!
//! A large campaign sheds thousands of failure traces, most of which are
//! the *same* failure hit from slightly different initial conditions. The
//! corpus store dedups them by a [`FailureSignature`]: a small, canonical
//! summary of *how* the mission ended — its verdict and triage class, the
//! skeleton of failsafe and fault-activation edges, and the terminal
//! airframe state quantized onto a coarse grid so two missions that died
//! in the same place the same way collapse onto one key even when their
//! floating-point trajectories differ in the last metre.
//!
//! Signatures are a pure function of the parsed [`Trace`] value. The
//! on-disk encoding is deterministic (shortest round-trip floats, fixed
//! field order), so serialising a trace to JSON lines and parsing it back
//! yields the identical struct — and therefore a byte-identical signature
//! key. `signature_proptest.rs` pins that invariant.

use serde::{Deserialize, Serialize};

use crate::event::TraceEvent;
use crate::format::{config_hash, Trace};
use crate::triage::triage;
use mls_core::MissionResult;

/// Terminal-position quantum, metres: missions ending within the same
/// 1 m cell share a terminal key.
pub const POSITION_QUANTUM: f64 = 1.0;

/// Terminal-velocity quantum, m/s.
pub const VELOCITY_QUANTUM: f64 = 0.5;

/// Terminal-time quantum, seconds: a failure at t=93 s and one at t=94 s
/// are the same failure; one at t=40 s is not.
pub const TIME_QUANTUM: f64 = 5.0;

/// Snaps `value` onto a quantization grid of step `step`.
fn quantize(value: f64, step: f64) -> i64 {
    (value / step).round() as i64
}

/// Stable report label for a mission verdict (`"incomplete"` when the
/// trace carries no `MissionEnd` event — the ring evicted it or the
/// mission was cut short).
pub fn verdict_label(result: Option<MissionResult>) -> &'static str {
    match result {
        Some(MissionResult::Success) => "success",
        Some(MissionResult::CollisionFailure) => "collision",
        Some(MissionResult::PoorLanding) => "poor-landing",
        None => "incomplete",
    }
}

/// The dedup key of one captured trace: what failed, how it failed, and
/// where it ended up — with everything continuous quantized.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FailureSignature {
    /// Mission verdict label (`"success"`, `"collision"`, `"poor-landing"`,
    /// `"incomplete"`).
    pub verdict: String,
    /// Triage class label, or `"unclassified"` for successes and failures
    /// the classifier declined to claim.
    pub class: String,
    /// The failsafe / fault-edge event skeleton: every `Failsafe`,
    /// `FaultActive` and `FaultCleared` event in stream order, compressed
    /// to reason / active-channel tokens and joined with `|` (`"clean"`
    /// when the stream carries none).
    pub skeleton: String,
    /// The quantized terminal state: mission-end time and the last physics
    /// snapshot's position and velocity cells (`"no-tick"` when the stream
    /// carries no `Tick`).
    pub terminal: String,
}

impl FailureSignature {
    /// Computes the signature of a trace (triaging it in the process).
    pub fn of(trace: &Trace) -> Self {
        let report = triage(trace);
        let mut skeleton_parts: Vec<String> = Vec::new();
        let mut last_tick = None;
        let mut end_time = None;
        for event in &trace.events {
            match event {
                TraceEvent::Failsafe { reason, .. } => {
                    skeleton_parts.push(format!("fs:{reason:?}"));
                }
                TraceEvent::FaultActive {
                    gps_bias,
                    wind,
                    compute_throttle,
                    ..
                } => {
                    let mut channels = String::new();
                    if gps_bias.norm() > 1e-9 {
                        channels.push('g');
                    }
                    if wind.norm() > 1e-9 {
                        channels.push('w');
                    }
                    if *compute_throttle < 1.0 {
                        channels.push('c');
                    }
                    if channels.is_empty() {
                        channels.push('0');
                    }
                    skeleton_parts.push(format!("fault:+{channels}"));
                }
                TraceEvent::FaultCleared { .. } => {
                    skeleton_parts.push("fault:-".to_string());
                }
                TraceEvent::Tick {
                    time,
                    position,
                    velocity,
                    ..
                } => last_tick = Some((*time, *position, *velocity)),
                TraceEvent::MissionEnd { time, .. } => end_time = Some(*time),
                _ => {}
            }
        }
        let skeleton = if skeleton_parts.is_empty() {
            "clean".to_string()
        } else {
            skeleton_parts.join("|")
        };
        let end_time = end_time.or(last_tick.map(|(time, _, _)| time));
        let terminal = match (end_time, last_tick) {
            (Some(end), Some((_, position, velocity))) => format!(
                "t{}:p({},{},{}):v({},{},{})",
                quantize(end, TIME_QUANTUM),
                quantize(position.x, POSITION_QUANTUM),
                quantize(position.y, POSITION_QUANTUM),
                quantize(position.z, POSITION_QUANTUM),
                quantize(velocity.x, VELOCITY_QUANTUM),
                quantize(velocity.y, VELOCITY_QUANTUM),
                quantize(velocity.z, VELOCITY_QUANTUM),
            ),
            (Some(end), None) => format!("t{}:no-tick", quantize(end, TIME_QUANTUM)),
            (None, _) => "no-tick".to_string(),
        };
        Self {
            verdict: verdict_label(report.result).to_string(),
            class: report
                .class
                .map(|class| class.label().to_string())
                .unwrap_or_else(|| "unclassified".to_string()),
            skeleton,
            terminal,
        }
    }

    /// The canonical key the corpus dedups on: the four components joined
    /// with `/`.
    pub fn key(&self) -> String {
        format!(
            "{}/{}/{}/{}",
            self.verdict, self.class, self.skeleton, self.terminal
        )
    }

    /// FNV-1a hash of [`FailureSignature::key`], for compact grouping.
    pub fn hash64(&self) -> u64 {
        config_hash(&self.key())
    }
}

impl std::fmt::Display for FailureSignature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{TraceHeader, TRACE_FORMAT_VERSION};
    use mls_core::{FailsafeReason, SystemVariant};
    use mls_geom::Vec3;

    fn header() -> TraceHeader {
        TraceHeader {
            version: TRACE_FORMAT_VERSION,
            campaign: "sig-test".to_string(),
            seed: 7,
            variant: SystemVariant::MlsV1,
            scenario_id: 0,
            scenario_name: "urban-00/s00".to_string(),
            family: "open".to_string(),
            cell_index: 0,
            repeat: 0,
            config_hash: config_hash("{}"),
            tick_decimation: 25,
            map_decimation: 8,
            capacity: 8192,
            dropped_events: 0,
            coordinates: Vec::new(),
        }
    }

    fn failed_trace() -> Trace {
        Trace {
            header: header(),
            events: vec![
                TraceEvent::FaultActive {
                    time: 5.0,
                    gps_bias: Vec3::new(3.0, 0.0, 0.0),
                    wind: Vec3::ZERO,
                    compute_throttle: 1.0,
                },
                TraceEvent::Tick {
                    time: 60.0,
                    position: Vec3::new(12.4, -3.2, 0.6),
                    velocity: Vec3::new(0.2, 0.0, -1.1),
                    estimated: Vec3::new(15.0, -3.0, 0.6),
                    gps_drift: 0.3,
                    estimation_error: 4.2,
                },
                TraceEvent::Failsafe {
                    time: 61.0,
                    reason: FailsafeReason::MarkerLost,
                },
                TraceEvent::MissionEnd {
                    time: 61.0,
                    result: MissionResult::PoorLanding,
                },
            ],
        }
    }

    #[test]
    fn signatures_summarise_the_failure() {
        let signature = FailureSignature::of(&failed_trace());
        assert_eq!(signature.verdict, "poor-landing");
        assert_eq!(signature.skeleton, "fault:+g|fs:MarkerLost");
        assert!(signature.terminal.starts_with("t12:p(12,-3,1)"));
        assert_eq!(signature.key(), signature.to_string());
        assert_eq!(signature.hash64(), config_hash(&signature.key()));
    }

    #[test]
    fn quantization_collapses_near_identical_terminals() {
        let base = failed_trace();
        let mut nudged = base.clone();
        if let TraceEvent::Tick { position, .. } = &mut nudged.events[1] {
            position.x -= 0.2;
        }
        assert_eq!(
            FailureSignature::of(&base).key(),
            FailureSignature::of(&nudged).key(),
            "a 20 cm nudge stays in the same terminal cell"
        );
        let mut moved = base.clone();
        if let TraceEvent::Tick { position, .. } = &mut moved.events[1] {
            position.x += 10.0;
        }
        assert_ne!(
            FailureSignature::of(&base).key(),
            FailureSignature::of(&moved).key(),
            "a 10 m move is a different failure"
        );
    }

    #[test]
    fn empty_and_clean_traces_have_degenerate_signatures() {
        let empty = Trace {
            header: header(),
            events: Vec::new(),
        };
        let signature = FailureSignature::of(&empty);
        assert_eq!(signature.verdict, "incomplete");
        assert_eq!(signature.skeleton, "clean");
        assert_eq!(signature.terminal, "no-tick");
    }

    #[test]
    fn verdict_labels_cover_every_result() {
        assert_eq!(verdict_label(Some(MissionResult::Success)), "success");
        assert_eq!(
            verdict_label(Some(MissionResult::CollisionFailure)),
            "collision"
        );
        assert_eq!(
            verdict_label(Some(MissionResult::PoorLanding)),
            "poor-landing"
        );
        assert_eq!(verdict_label(None), "incomplete");
    }
}
