//! Automated failure triage: maps a trace onto the paper's Fig. 5 failure
//! taxonomy.
//!
//! The paper's most instructive artifacts are its four failure narratives —
//! (a) path-planning failure in front of a large obstacle, (b) collision
//! while turning close to an obstacle, (c) erroneous point clouds under pose
//! drift, (d) silent GPS drift in poor weather. Each leaves a distinctive
//! signature in the event stream, so a failed mission's trace can be
//! classified without a human re-flying it:
//!
//! | Class | Signature |
//! |---|---|
//! | [`Fig5Class::MapCorruption`] | tampered map updates (dropped/displaced points) |
//! | [`Fig5Class::PlannerExhaustion`] | failed planning queries or straight-line fallbacks |
//! | [`Fig5Class::TrajectoryLagCollision`] | a collision with every plan healthy |
//! | [`Fig5Class::GpsDrift`] | an injected GNSS bias, or drift / estimation error beyond thresholds |
//! | [`Fig5Class::PerceptionLoss`] | a marker-loss / search-exhausted failsafe, or a mission-timeout stall with long blind gaps in the marker stream, with nothing structural to blame |
//!
//! Signatures are checked in that order: corruption and exhaustion explain a
//! downstream collision better than "the controller lagged", drift only
//! claims missions nothing structural explains, and perception loss claims
//! the blind-but-otherwise-healthy aborts (occluded or washed-out markers —
//! the constrained-pad falsification counterexamples land here). The first
//! four classes are the paper's published panels; perception loss extends
//! the taxonomy for failures Fig. 5 had no panel for. Successful missions
//! are never classified.

use mls_geom::Vec3;
use serde::{Deserialize, Serialize};

use crate::event::TraceEvent;
use crate::format::Trace;
use mls_core::{MissionResult, ObservationStage};

/// Natural GNSS random-walk drift, metres, beyond which a mission is
/// drift-suspect even without an injected bias.
const DRIFT_THRESHOLD: f64 = 2.5;

/// Estimation error, metres, beyond which the pose estimate is considered
/// broken (an injected bias shows up here even when the natural drift is
/// small).
const ESTIMATION_ERROR_THRESHOLD: f64 = 4.0;

/// Injected GNSS bias, metres, that counts as a GPS fault signature.
const GPS_BIAS_THRESHOLD: f64 = 0.1;

/// A gap in the marker-sighting stream (non-empty post-fault frames),
/// seconds, long enough to count as a blind interval. Detection runs at
/// sub-second cadence in every configuration, so occlusion bursts (which
/// wash frames out before detection, leaving no event) and dropout (which
/// clears frames after it, leaving empty post-fault events) both open gaps
/// this long while the airframe stalls blind until the mission timeout.
const BLIND_GAP_SECONDS: f64 = 10.0;

/// The Fig. 5 failure classes — the paper's four panels plus the
/// perception-loss extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Fig5Class {
    /// (a) The bounded planner exhausted its search pool (or fell back to an
    /// unchecked straight line).
    PlannerExhaustion,
    /// (b) The airframe collided while every planning query was healthy —
    /// trajectory-following lag cut the corner.
    TrajectoryLagCollision,
    /// (c) The occupancy map was built from corrupted point clouds.
    MapCorruption,
    /// (d) The GNSS solution drifted (or was biased) without a visible
    /// health indication.
    GpsDrift,
    /// The mission went blind — the target marker stayed lost (occlusion,
    /// washed-out frames) until a marker-loss / search-exhausted failsafe
    /// ended it, or the mission timed out while the sighting stream went
    /// dark for long stretches — with no structural signature to blame. Not
    /// a paper panel; the extension the constrained-pad falsification space
    /// needs.
    PerceptionLoss,
}

impl Fig5Class {
    /// Every class: the paper's (a)–(d) panels, then the extension.
    pub const ALL: [Fig5Class; 5] = [
        Fig5Class::PlannerExhaustion,
        Fig5Class::TrajectoryLagCollision,
        Fig5Class::MapCorruption,
        Fig5Class::GpsDrift,
        Fig5Class::PerceptionLoss,
    ];

    /// Stable label used in reports ("planner-exhaustion").
    pub fn label(self) -> &'static str {
        match self {
            Fig5Class::PlannerExhaustion => "planner-exhaustion",
            Fig5Class::TrajectoryLagCollision => "trajectory-lag-collision",
            Fig5Class::MapCorruption => "map-corruption",
            Fig5Class::GpsDrift => "gps-drift",
            Fig5Class::PerceptionLoss => "perception-loss",
        }
    }

    /// The paper's Fig. 5 panel letter (`'+'` for the perception-loss
    /// extension, which has no published panel).
    pub fn panel(self) -> char {
        match self {
            Fig5Class::PlannerExhaustion => 'a',
            Fig5Class::TrajectoryLagCollision => 'b',
            Fig5Class::MapCorruption => 'c',
            Fig5Class::GpsDrift => 'd',
            Fig5Class::PerceptionLoss => '+',
        }
    }
}

/// What the classifier concluded about one trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TriageReport {
    /// The assigned class, or `None` for successful / unexplained missions.
    pub class: Option<Fig5Class>,
    /// The mission's final result, if the trace recorded one.
    pub result: Option<MissionResult>,
    /// Human-readable evidence lines backing the verdict.
    pub evidence: Vec<String>,
    /// Failed planning queries.
    pub plan_failures: usize,
    /// Straight-line fallbacks taken.
    pub plan_fallbacks: usize,
    /// Tampered map updates.
    pub tampered_map_updates: usize,
    /// Maximum natural GNSS drift seen, metres.
    pub max_gps_drift: f64,
    /// Maximum estimation error seen, metres.
    pub max_estimation_error: f64,
    /// `true` when a GNSS bias fault was active at some point.
    pub gps_fault_active: bool,
    /// Longest gap in the marker-sighting stream, seconds — sightings are
    /// non-empty *post-fault* frames, and the tail from the last sighting
    /// to mission end counts. When the raw detector saw markers but no
    /// sighting ever survived the fault hooks, the gap spans from the first
    /// marker evidence to mission end. `0.0` when the trace carries no
    /// marker events at all.
    pub max_marker_gap: f64,
}

/// Classifies a trace against the Fig. 5 taxonomy.
pub fn triage(trace: &Trace) -> TriageReport {
    let mut result = None;
    let mut plan_failures = 0usize;
    let mut plan_fallbacks = 0usize;
    let mut tampered = 0usize;
    let mut max_drift = 0.0f64;
    let mut max_estimation_error = 0.0f64;
    let mut gps_fault = false;
    let mut perception_failsafe = false;
    let mut timeout_failsafe = false;
    let mut failsafes: Vec<String> = Vec::new();
    let mut sighting_times: Vec<f64> = Vec::new();
    let mut first_marker_evidence = None;
    let mut end_time = None;

    for event in &trace.events {
        match event {
            TraceEvent::PlanResult {
                success, fallback, ..
            } => {
                if !success {
                    plan_failures += 1;
                }
                if *fallback {
                    plan_fallbacks += 1;
                }
            }
            TraceEvent::MapUpdate {
                dropped, displaced, ..
            } if dropped + displaced > 0 => tampered += 1,
            TraceEvent::Tick {
                gps_drift,
                estimation_error,
                ..
            } => {
                max_drift = max_drift.max(*gps_drift);
                max_estimation_error = max_estimation_error.max(*estimation_error);
            }
            TraceEvent::FaultActive { gps_bias, .. } if gps_bias.norm() > GPS_BIAS_THRESHOLD => {
                gps_fault = true;
            }
            TraceEvent::Markers {
                time,
                stage,
                markers,
            } => {
                // Any Markers event is evidence the raw detector had markers
                // to see (the recorder emits one only when the pre-fault
                // frame saw something, or to log a fault-swallowed frame).
                // A *sighting* is what survived the fault hooks: a non-empty
                // post-fault frame. Empty post-fault frames are blindness,
                // not sightings.
                if first_marker_evidence.is_none() {
                    first_marker_evidence = Some(*time);
                }
                if *stage == ObservationStage::PostFault
                    && !markers.is_empty()
                    && sighting_times.last() != Some(time)
                {
                    sighting_times.push(*time);
                }
            }
            TraceEvent::Failsafe { time, reason } => {
                if matches!(
                    reason,
                    mls_core::FailsafeReason::MarkerLost
                        | mls_core::FailsafeReason::SearchExhausted
                ) {
                    perception_failsafe = true;
                }
                if matches!(reason, mls_core::FailsafeReason::MissionTimeout) {
                    timeout_failsafe = true;
                }
                failsafes.push(format!("failsafe {reason:?} at t={time:.1}s"));
            }
            TraceEvent::MissionEnd { result: r, time } => {
                result = Some(*r);
                end_time = Some(*time);
            }
            _ => {}
        }
    }

    // Occlusion washes frames out *before* detection (no Markers event at
    // all), dropout clears them *after* (an empty post-fault frame), so
    // blind intervals appear as gaps in the sighting stream either way.
    // Approach flight (before any Markers event) is not blindness, but
    // everything from the first marker evidence on is: the stretch to the
    // first surviving sighting, the gaps between sightings, and the tail
    // from the last sighting (or the first evidence, when nothing survived
    // the fault hooks) to mission end.
    let mut max_marker_gap = 0.0f64;
    for pair in sighting_times.windows(2) {
        max_marker_gap = max_marker_gap.max(pair[1] - pair[0]);
    }
    if let Some(first_evidence) = first_marker_evidence {
        if let Some(&first_sighting) = sighting_times.first() {
            max_marker_gap = max_marker_gap.max(first_sighting - first_evidence);
        }
        let last_seen = sighting_times.last().copied().unwrap_or(first_evidence);
        if let Some(end) = end_time {
            max_marker_gap = max_marker_gap.max(end - last_seen);
        }
    }
    // A mission that timed out while the marker stream went dark for long
    // stretches stalled blind — the occlusion-burst signature, which never
    // trips the marker-loss failsafe because sightings keep (re)appearing
    // between bursts.
    let blind_stall =
        timeout_failsafe && first_marker_evidence.is_some() && max_marker_gap >= BLIND_GAP_SECONDS;

    let collision = result == Some(MissionResult::CollisionFailure);
    let mut evidence = Vec::new();
    if trace.header.dropped_events > 0 {
        // Eviction can remove the discriminating early events (a lone
        // fallback plan, the fault-activation edge), so a class assigned to
        // a truncated trace deserves scepticism.
        evidence.push(format!(
            "CAUTION: the ring buffer evicted {} events; early signatures may be missing",
            trace.header.dropped_events
        ));
    }
    evidence.extend(failsafes);
    let class = if result == Some(MissionResult::Success) {
        evidence.push("mission succeeded; nothing to triage".to_string());
        None
    } else if tampered > 0 {
        evidence.push(format!(
            "{tampered} map updates carried dropped or displaced points"
        ));
        Some(Fig5Class::MapCorruption)
    } else if plan_failures + plan_fallbacks > 0 {
        evidence.push(format!(
            "{plan_failures} planning queries failed, {plan_fallbacks} straight-line fallbacks"
        ));
        Some(Fig5Class::PlannerExhaustion)
    } else if collision {
        evidence.push(
            "collision with every planning query healthy: trajectory-following lag".to_string(),
        );
        Some(Fig5Class::TrajectoryLagCollision)
    } else if gps_fault
        || max_drift > DRIFT_THRESHOLD
        || max_estimation_error > ESTIMATION_ERROR_THRESHOLD
    {
        evidence.push(format!(
            "GNSS bias fault active: {gps_fault}; max drift {max_drift:.2} m; \
             max estimation error {max_estimation_error:.2} m"
        ));
        Some(Fig5Class::GpsDrift)
    } else if perception_failsafe || blind_stall {
        if perception_failsafe {
            evidence.push(
                "marker lost / search exhausted with healthy plans, map and GNSS: \
                 perception loss"
                    .to_string(),
            );
        } else {
            evidence.push(format!(
                "mission timed out with healthy plans, map and GNSS while the marker \
                 stream went dark for {max_marker_gap:.1} s: perception loss"
            ));
        }
        Some(Fig5Class::PerceptionLoss)
    } else {
        evidence.push("no Fig. 5 signature matched".to_string());
        None
    };

    TriageReport {
        class,
        result,
        evidence,
        plan_failures,
        plan_fallbacks,
        tampered_map_updates: tampered,
        max_gps_drift: max_drift,
        max_estimation_error,
        gps_fault_active: gps_fault,
        max_marker_gap,
    }
}

/// Convenience constructor for tests and synthetic traces.
#[doc(hidden)]
pub fn fault_active_event(time: f64, gps_bias: Vec3) -> TraceEvent {
    TraceEvent::FaultActive {
        time,
        gps_bias,
        wind: Vec3::ZERO,
        compute_throttle: 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{config_hash, TraceHeader, TRACE_FORMAT_VERSION};
    use mls_core::{FailsafeReason, SystemVariant};

    fn trace_with(events: Vec<TraceEvent>) -> Trace {
        Trace {
            header: TraceHeader {
                version: TRACE_FORMAT_VERSION,
                campaign: "triage-test".to_string(),
                seed: 1,
                variant: SystemVariant::MlsV2,
                scenario_id: 0,
                scenario_name: "s".to_string(),
                family: "open".to_string(),
                cell_index: 0,
                repeat: 0,
                config_hash: config_hash("{}"),
                tick_decimation: 25,
                map_decimation: 8,
                capacity: 1024,
                dropped_events: 0,
                coordinates: Vec::new(),
            },
            events,
        }
    }

    fn tick(time: f64, gps_drift: f64, estimation_error: f64) -> TraceEvent {
        TraceEvent::Tick {
            time,
            position: Vec3::new(0.0, 0.0, 10.0),
            velocity: Vec3::ZERO,
            estimated: Vec3::new(0.0, 0.0, 10.0),
            gps_drift,
            estimation_error,
        }
    }

    fn end(result: MissionResult) -> TraceEvent {
        TraceEvent::MissionEnd {
            time: 100.0,
            result,
        }
    }

    #[test]
    fn planner_exhaustion_is_case_a() {
        let report = triage(&trace_with(vec![
            TraceEvent::PlanRequest {
                time: 40.0,
                start: Vec3::new(0.0, 0.0, 10.0),
                goal: Vec3::new(40.0, 0.0, 10.0),
            },
            TraceEvent::PlanResult {
                time: 40.0,
                success: true,
                fallback: true,
                latency: 0.2,
                iterations: 2000,
            },
            end(MissionResult::CollisionFailure),
        ]));
        assert_eq!(report.class, Some(Fig5Class::PlannerExhaustion));
        assert_eq!(report.plan_fallbacks, 1);
        assert_eq!(report.class.unwrap().panel(), 'a');
    }

    #[test]
    fn clean_collision_is_case_b() {
        let report = triage(&trace_with(vec![
            TraceEvent::PlanResult {
                time: 40.0,
                success: true,
                fallback: false,
                latency: 0.1,
                iterations: 500,
            },
            tick(41.0, 0.3, 0.2),
            end(MissionResult::CollisionFailure),
        ]));
        assert_eq!(report.class, Some(Fig5Class::TrajectoryLagCollision));
        assert_eq!(report.class.unwrap().panel(), 'b');
    }

    #[test]
    fn tampered_map_updates_are_case_c() {
        let report = triage(&trace_with(vec![
            TraceEvent::MapUpdate {
                time: 35.0,
                inserted: 120,
                dropped: 30,
                displaced: 90,
            },
            end(MissionResult::PoorLanding),
        ]));
        assert_eq!(report.class, Some(Fig5Class::MapCorruption));
        assert_eq!(report.tampered_map_updates, 1);
        assert_eq!(report.class.unwrap().panel(), 'c');
    }

    #[test]
    fn gps_bias_fault_or_raw_drift_is_case_d() {
        let biased = triage(&trace_with(vec![
            fault_active_event(50.0, Vec3::new(6.0, 0.0, 0.0)),
            tick(60.0, 0.4, 6.1),
            end(MissionResult::PoorLanding),
        ]));
        assert_eq!(biased.class, Some(Fig5Class::GpsDrift));
        assert!(biased.gps_fault_active);

        let drifted = triage(&trace_with(vec![
            tick(60.0, 3.2, 3.0),
            end(MissionResult::PoorLanding),
        ]));
        assert_eq!(drifted.class, Some(Fig5Class::GpsDrift));
        assert_eq!(drifted.class.unwrap().panel(), 'd');
    }

    #[test]
    fn successful_missions_are_never_classified() {
        let report = triage(&trace_with(vec![
            TraceEvent::MapUpdate {
                time: 35.0,
                inserted: 120,
                dropped: 30,
                displaced: 90,
            },
            end(MissionResult::Success),
        ]));
        assert_eq!(report.class, None);
        assert_eq!(report.result, Some(MissionResult::Success));
    }

    #[test]
    fn blind_failsafe_aborts_are_perception_loss() {
        let report = triage(&trace_with(vec![
            TraceEvent::Failsafe {
                time: 90.0,
                reason: FailsafeReason::SearchExhausted,
            },
            end(MissionResult::PoorLanding),
        ]));
        assert_eq!(report.class, Some(Fig5Class::PerceptionLoss));
        assert_eq!(report.class.unwrap().panel(), '+');
        assert!(report
            .evidence
            .iter()
            .any(|line| line.contains("SearchExhausted")));
    }

    fn sighting(time: f64) -> TraceEvent {
        TraceEvent::Markers {
            time,
            stage: mls_core::ObservationStage::PostFault,
            markers: vec![crate::event::MarkerSighting {
                id: 7,
                position: Vec3::new(1.0, 2.0, 0.0),
                confidence: 0.9,
            }],
        }
    }

    #[test]
    fn blind_timeout_stalls_are_perception_loss() {
        // Occlusion bursts wash frames out before detection, so the recorder
        // logs nothing during a burst: the trace shows sightings, a long dark
        // gap, sightings again, then a mission-timeout abort.
        let report = triage(&trace_with(vec![
            sighting(10.0),
            sighting(11.0),
            sighting(40.0),
            TraceEvent::PlanResult {
                time: 50.0,
                success: true,
                fallback: false,
                latency: 0.1,
                iterations: 500,
            },
            sighting(95.0),
            TraceEvent::Failsafe {
                time: 120.0,
                reason: FailsafeReason::MissionTimeout,
            },
            end(MissionResult::PoorLanding),
        ]));
        assert_eq!(report.class, Some(Fig5Class::PerceptionLoss));
        assert!((report.max_marker_gap - 55.0).abs() < 1e-9);
        assert!(report
            .evidence
            .iter()
            .any(|line| line.contains("went dark for 55.0 s")));
    }

    #[test]
    fn dropout_swallowed_frames_count_as_blindness() {
        // Detection dropout clears observations *after* the fault hook: the
        // recorder logs the non-empty pre-fault frame plus an empty
        // post-fault frame at every tick, so the stream has Markers events
        // at detection cadence but zero surviving sightings.
        let mut events = Vec::new();
        for i in 0..20 {
            let time = 10.0 + i as f64 * 4.0;
            events.push(TraceEvent::Markers {
                time,
                stage: ObservationStage::PreFault,
                markers: vec![crate::event::MarkerSighting {
                    id: 7,
                    position: Vec3::new(1.0, 2.0, 0.0),
                    confidence: 0.9,
                }],
            });
            events.push(TraceEvent::Markers {
                time,
                stage: ObservationStage::PostFault,
                markers: Vec::new(),
            });
        }
        events.push(TraceEvent::Failsafe {
            time: 95.0,
            reason: FailsafeReason::MissionTimeout,
        });
        events.push(end(MissionResult::PoorLanding));
        let report = triage(&trace_with(events));
        assert_eq!(report.class, Some(Fig5Class::PerceptionLoss));
        // Blind from the first marker evidence (t=10) to mission end (t=100).
        assert!((report.max_marker_gap - 90.0).abs() < 1e-9);
    }

    #[test]
    fn leading_blindness_before_the_first_sighting_counts() {
        // Dropout active from the first visible frame until t=70: the only
        // sightings are a dense burst right before the timeout, so every
        // sighting-to-sighting gap is small — the blind window is the
        // stretch from the first marker evidence to the first sighting.
        let mut events = vec![
            TraceEvent::Markers {
                time: 10.0,
                stage: ObservationStage::PreFault,
                markers: vec![crate::event::MarkerSighting {
                    id: 7,
                    position: Vec3::new(1.0, 2.0, 0.0),
                    confidence: 0.9,
                }],
            },
            TraceEvent::Markers {
                time: 10.0,
                stage: ObservationStage::PostFault,
                markers: Vec::new(),
            },
        ];
        for i in 0..30 {
            events.push(sighting(70.0 + i as f64));
        }
        events.push(TraceEvent::Failsafe {
            time: 99.5,
            reason: FailsafeReason::MissionTimeout,
        });
        events.push(end(MissionResult::PoorLanding));
        let report = triage(&trace_with(events));
        assert_eq!(report.class, Some(Fig5Class::PerceptionLoss));
        assert!((report.max_marker_gap - 60.0).abs() < 1e-9);
    }

    #[test]
    fn timeouts_with_a_continuous_marker_stream_stay_unclassified() {
        let mut events: Vec<TraceEvent> = (0..25).map(|i| sighting(i as f64 * 5.0)).collect();
        events.push(TraceEvent::Failsafe {
            time: 122.0,
            reason: FailsafeReason::MissionTimeout,
        });
        events.push(end(MissionResult::PoorLanding));
        let report = triage(&trace_with(events));
        assert_eq!(report.class, None);
        assert!(report.max_marker_gap < BLIND_GAP_SECONDS);
    }

    #[test]
    fn failures_without_any_signature_stay_unclassified() {
        let report = triage(&trace_with(vec![
            tick(60.0, 0.2, 0.1),
            end(MissionResult::PoorLanding),
        ]));
        assert_eq!(report.class, None);
        assert!(report
            .evidence
            .iter()
            .any(|line| line.contains("no Fig. 5 signature matched")));
    }

    #[test]
    fn evicted_events_are_flagged_in_the_evidence() {
        let mut trace = trace_with(vec![end(MissionResult::CollisionFailure)]);
        trace.header.dropped_events = 137;
        let report = triage(&trace);
        assert_eq!(report.class, Some(Fig5Class::TrajectoryLagCollision));
        assert!(
            report
                .evidence
                .iter()
                .any(|line| line.contains("evicted 137 events")),
            "{:?}",
            report.evidence
        );
    }

    #[test]
    fn labels_and_order_are_stable() {
        assert_eq!(Fig5Class::ALL.len(), 5);
        assert_eq!(Fig5Class::MapCorruption.label(), "map-corruption");
        assert_eq!(Fig5Class::PerceptionLoss.label(), "perception-loss");
        let panels: Vec<char> = Fig5Class::ALL.iter().map(|c| c.panel()).collect();
        assert_eq!(panels, vec!['a', 'b', 'c', 'd', '+']);
    }
}
