//! Automated failure triage: maps a trace onto the paper's Fig. 5 failure
//! taxonomy.
//!
//! The paper's most instructive artifacts are its four failure narratives —
//! (a) path-planning failure in front of a large obstacle, (b) collision
//! while turning close to an obstacle, (c) erroneous point clouds under pose
//! drift, (d) silent GPS drift in poor weather. Each leaves a distinctive
//! signature in the event stream, so a failed mission's trace can be
//! classified without a human re-flying it:
//!
//! | Class | Signature |
//! |---|---|
//! | [`Fig5Class::MapCorruption`] | tampered map updates (dropped/displaced points) |
//! | [`Fig5Class::PlannerExhaustion`] | failed planning queries or straight-line fallbacks |
//! | [`Fig5Class::TrajectoryLagCollision`] | a collision with every plan healthy |
//! | [`Fig5Class::GpsDrift`] | an injected GNSS bias, or drift / estimation error beyond thresholds |
//!
//! Signatures are checked in that order: corruption and exhaustion explain a
//! downstream collision better than "the controller lagged", and drift only
//! claims missions nothing structural explains. Successful missions are
//! never classified.

use mls_geom::Vec3;
use serde::{Deserialize, Serialize};

use crate::event::TraceEvent;
use crate::format::Trace;
use mls_core::MissionResult;

/// Natural GNSS random-walk drift, metres, beyond which a mission is
/// drift-suspect even without an injected bias.
const DRIFT_THRESHOLD: f64 = 2.5;

/// Estimation error, metres, beyond which the pose estimate is considered
/// broken (an injected bias shows up here even when the natural drift is
/// small).
const ESTIMATION_ERROR_THRESHOLD: f64 = 4.0;

/// Injected GNSS bias, metres, that counts as a GPS fault signature.
const GPS_BIAS_THRESHOLD: f64 = 0.1;

/// The four Fig. 5 failure classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Fig5Class {
    /// (a) The bounded planner exhausted its search pool (or fell back to an
    /// unchecked straight line).
    PlannerExhaustion,
    /// (b) The airframe collided while every planning query was healthy —
    /// trajectory-following lag cut the corner.
    TrajectoryLagCollision,
    /// (c) The occupancy map was built from corrupted point clouds.
    MapCorruption,
    /// (d) The GNSS solution drifted (or was biased) without a visible
    /// health indication.
    GpsDrift,
}

impl Fig5Class {
    /// Every class, in the paper's (a)–(d) order.
    pub const ALL: [Fig5Class; 4] = [
        Fig5Class::PlannerExhaustion,
        Fig5Class::TrajectoryLagCollision,
        Fig5Class::MapCorruption,
        Fig5Class::GpsDrift,
    ];

    /// Stable label used in reports ("planner-exhaustion").
    pub fn label(self) -> &'static str {
        match self {
            Fig5Class::PlannerExhaustion => "planner-exhaustion",
            Fig5Class::TrajectoryLagCollision => "trajectory-lag-collision",
            Fig5Class::MapCorruption => "map-corruption",
            Fig5Class::GpsDrift => "gps-drift",
        }
    }

    /// The paper's Fig. 5 panel letter.
    pub fn panel(self) -> char {
        match self {
            Fig5Class::PlannerExhaustion => 'a',
            Fig5Class::TrajectoryLagCollision => 'b',
            Fig5Class::MapCorruption => 'c',
            Fig5Class::GpsDrift => 'd',
        }
    }
}

/// What the classifier concluded about one trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TriageReport {
    /// The assigned class, or `None` for successful / unexplained missions.
    pub class: Option<Fig5Class>,
    /// The mission's final result, if the trace recorded one.
    pub result: Option<MissionResult>,
    /// Human-readable evidence lines backing the verdict.
    pub evidence: Vec<String>,
    /// Failed planning queries.
    pub plan_failures: usize,
    /// Straight-line fallbacks taken.
    pub plan_fallbacks: usize,
    /// Tampered map updates.
    pub tampered_map_updates: usize,
    /// Maximum natural GNSS drift seen, metres.
    pub max_gps_drift: f64,
    /// Maximum estimation error seen, metres.
    pub max_estimation_error: f64,
    /// `true` when a GNSS bias fault was active at some point.
    pub gps_fault_active: bool,
}

/// Classifies a trace against the Fig. 5 taxonomy.
pub fn triage(trace: &Trace) -> TriageReport {
    let mut result = None;
    let mut plan_failures = 0usize;
    let mut plan_fallbacks = 0usize;
    let mut tampered = 0usize;
    let mut max_drift = 0.0f64;
    let mut max_estimation_error = 0.0f64;
    let mut gps_fault = false;
    let mut failsafes: Vec<String> = Vec::new();

    for event in &trace.events {
        match event {
            TraceEvent::PlanResult {
                success, fallback, ..
            } => {
                if !success {
                    plan_failures += 1;
                }
                if *fallback {
                    plan_fallbacks += 1;
                }
            }
            TraceEvent::MapUpdate {
                dropped, displaced, ..
            } if dropped + displaced > 0 => tampered += 1,
            TraceEvent::Tick {
                gps_drift,
                estimation_error,
                ..
            } => {
                max_drift = max_drift.max(*gps_drift);
                max_estimation_error = max_estimation_error.max(*estimation_error);
            }
            TraceEvent::FaultActive { gps_bias, .. } if gps_bias.norm() > GPS_BIAS_THRESHOLD => {
                gps_fault = true;
            }
            TraceEvent::Failsafe { time, reason } => {
                failsafes.push(format!("failsafe {reason:?} at t={time:.1}s"));
            }
            TraceEvent::MissionEnd { result: r, .. } => result = Some(*r),
            _ => {}
        }
    }

    let collision = result == Some(MissionResult::CollisionFailure);
    let mut evidence = Vec::new();
    if trace.header.dropped_events > 0 {
        // Eviction can remove the discriminating early events (a lone
        // fallback plan, the fault-activation edge), so a class assigned to
        // a truncated trace deserves scepticism.
        evidence.push(format!(
            "CAUTION: the ring buffer evicted {} events; early signatures may be missing",
            trace.header.dropped_events
        ));
    }
    evidence.extend(failsafes);
    let class = if result == Some(MissionResult::Success) {
        evidence.push("mission succeeded; nothing to triage".to_string());
        None
    } else if tampered > 0 {
        evidence.push(format!(
            "{tampered} map updates carried dropped or displaced points"
        ));
        Some(Fig5Class::MapCorruption)
    } else if plan_failures + plan_fallbacks > 0 {
        evidence.push(format!(
            "{plan_failures} planning queries failed, {plan_fallbacks} straight-line fallbacks"
        ));
        Some(Fig5Class::PlannerExhaustion)
    } else if collision {
        evidence.push(
            "collision with every planning query healthy: trajectory-following lag".to_string(),
        );
        Some(Fig5Class::TrajectoryLagCollision)
    } else if gps_fault
        || max_drift > DRIFT_THRESHOLD
        || max_estimation_error > ESTIMATION_ERROR_THRESHOLD
    {
        evidence.push(format!(
            "GNSS bias fault active: {gps_fault}; max drift {max_drift:.2} m; \
             max estimation error {max_estimation_error:.2} m"
        ));
        Some(Fig5Class::GpsDrift)
    } else {
        evidence.push("no Fig. 5 signature matched".to_string());
        None
    };

    TriageReport {
        class,
        result,
        evidence,
        plan_failures,
        plan_fallbacks,
        tampered_map_updates: tampered,
        max_gps_drift: max_drift,
        max_estimation_error,
        gps_fault_active: gps_fault,
    }
}

/// Convenience constructor for tests and synthetic traces.
#[doc(hidden)]
pub fn fault_active_event(time: f64, gps_bias: Vec3) -> TraceEvent {
    TraceEvent::FaultActive {
        time,
        gps_bias,
        wind: Vec3::ZERO,
        compute_throttle: 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{config_hash, TraceHeader, TRACE_FORMAT_VERSION};
    use mls_core::{FailsafeReason, SystemVariant};

    fn trace_with(events: Vec<TraceEvent>) -> Trace {
        Trace {
            header: TraceHeader {
                version: TRACE_FORMAT_VERSION,
                campaign: "triage-test".to_string(),
                seed: 1,
                variant: SystemVariant::MlsV2,
                scenario_id: 0,
                scenario_name: "s".to_string(),
                cell_index: 0,
                repeat: 0,
                config_hash: config_hash("{}"),
                tick_decimation: 25,
                map_decimation: 8,
                capacity: 1024,
                dropped_events: 0,
                coordinates: Vec::new(),
            },
            events,
        }
    }

    fn tick(time: f64, gps_drift: f64, estimation_error: f64) -> TraceEvent {
        TraceEvent::Tick {
            time,
            position: Vec3::new(0.0, 0.0, 10.0),
            velocity: Vec3::ZERO,
            estimated: Vec3::new(0.0, 0.0, 10.0),
            gps_drift,
            estimation_error,
        }
    }

    fn end(result: MissionResult) -> TraceEvent {
        TraceEvent::MissionEnd {
            time: 100.0,
            result,
        }
    }

    #[test]
    fn planner_exhaustion_is_case_a() {
        let report = triage(&trace_with(vec![
            TraceEvent::PlanRequest {
                time: 40.0,
                start: Vec3::new(0.0, 0.0, 10.0),
                goal: Vec3::new(40.0, 0.0, 10.0),
            },
            TraceEvent::PlanResult {
                time: 40.0,
                success: true,
                fallback: true,
                latency: 0.2,
                iterations: 2000,
            },
            end(MissionResult::CollisionFailure),
        ]));
        assert_eq!(report.class, Some(Fig5Class::PlannerExhaustion));
        assert_eq!(report.plan_fallbacks, 1);
        assert_eq!(report.class.unwrap().panel(), 'a');
    }

    #[test]
    fn clean_collision_is_case_b() {
        let report = triage(&trace_with(vec![
            TraceEvent::PlanResult {
                time: 40.0,
                success: true,
                fallback: false,
                latency: 0.1,
                iterations: 500,
            },
            tick(41.0, 0.3, 0.2),
            end(MissionResult::CollisionFailure),
        ]));
        assert_eq!(report.class, Some(Fig5Class::TrajectoryLagCollision));
        assert_eq!(report.class.unwrap().panel(), 'b');
    }

    #[test]
    fn tampered_map_updates_are_case_c() {
        let report = triage(&trace_with(vec![
            TraceEvent::MapUpdate {
                time: 35.0,
                inserted: 120,
                dropped: 30,
                displaced: 90,
            },
            end(MissionResult::PoorLanding),
        ]));
        assert_eq!(report.class, Some(Fig5Class::MapCorruption));
        assert_eq!(report.tampered_map_updates, 1);
        assert_eq!(report.class.unwrap().panel(), 'c');
    }

    #[test]
    fn gps_bias_fault_or_raw_drift_is_case_d() {
        let biased = triage(&trace_with(vec![
            fault_active_event(50.0, Vec3::new(6.0, 0.0, 0.0)),
            tick(60.0, 0.4, 6.1),
            end(MissionResult::PoorLanding),
        ]));
        assert_eq!(biased.class, Some(Fig5Class::GpsDrift));
        assert!(biased.gps_fault_active);

        let drifted = triage(&trace_with(vec![
            tick(60.0, 3.2, 3.0),
            end(MissionResult::PoorLanding),
        ]));
        assert_eq!(drifted.class, Some(Fig5Class::GpsDrift));
        assert_eq!(drifted.class.unwrap().panel(), 'd');
    }

    #[test]
    fn successful_missions_are_never_classified() {
        let report = triage(&trace_with(vec![
            TraceEvent::MapUpdate {
                time: 35.0,
                inserted: 120,
                dropped: 30,
                displaced: 90,
            },
            end(MissionResult::Success),
        ]));
        assert_eq!(report.class, None);
        assert_eq!(report.result, Some(MissionResult::Success));
    }

    #[test]
    fn unexplained_failures_stay_unclassified_with_failsafe_evidence() {
        let report = triage(&trace_with(vec![
            TraceEvent::Failsafe {
                time: 90.0,
                reason: FailsafeReason::SearchExhausted,
            },
            end(MissionResult::PoorLanding),
        ]));
        assert_eq!(report.class, None);
        assert!(report
            .evidence
            .iter()
            .any(|line| line.contains("SearchExhausted")));
    }

    #[test]
    fn evicted_events_are_flagged_in_the_evidence() {
        let mut trace = trace_with(vec![end(MissionResult::CollisionFailure)]);
        trace.header.dropped_events = 137;
        let report = triage(&trace);
        assert_eq!(report.class, Some(Fig5Class::TrajectoryLagCollision));
        assert!(
            report
                .evidence
                .iter()
                .any(|line| line.contains("evicted 137 events")),
            "{:?}",
            report.evidence
        );
    }

    #[test]
    fn labels_and_order_are_stable() {
        assert_eq!(Fig5Class::ALL.len(), 4);
        assert_eq!(Fig5Class::MapCorruption.label(), "map-corruption");
        let panels: Vec<char> = Fig5Class::ALL.iter().map(|c| c.panel()).collect();
        assert_eq!(panels, vec!['a', 'b', 'c', 'd']);
    }
}
