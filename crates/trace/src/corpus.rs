//! The trace corpus: an indexed, queryable on-disk store over captured
//! trace trees.
//!
//! A campaign used to shed traces as write-only artifacts — files in a
//! directory, findable only through the report that created them. The
//! corpus turns that directory into an evidence store: next to the trace
//! files lives a [`CORPUS_INDEX_FILE`] JSON-lines index, one
//! [`CorpusRecord`] per captured trace, keyed by everything a triage or
//! falsification query filters on — scenario family, fault-space
//! coordinates, triage class, mission verdict and the dedup
//! [`FailureSignature`] key.
//!
//! The index is written by `CampaignRunner::assemble_report`, which both
//! the in-process runner and the fabric dispatcher funnel through — so the
//! index is a pure function of `(spec, seed)` and byte-identical across
//! transports, worker counts and worker failures, exactly like the report
//! and the traces themselves (`fabric_equivalence` pins this).
//!
//! Record paths are stored *relative to the index root*, which is what
//! makes a corpus relocatable: move or archive the whole directory and
//! [`TraceCorpus::open`] + [`TraceCorpus::resolve`] still find every
//! trace, where the absolute paths in an old report would dangle.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::format::{config_hash, AxisCoordinate, Trace};
use crate::signature::FailureSignature;
use crate::TraceError;
use mls_core::SystemVariant;

/// File name of the corpus index inside its root directory.
pub const CORPUS_INDEX_FILE: &str = "corpus-index.jsonl";

/// Current corpus-index format version, bumped on any incompatible change.
pub const CORPUS_INDEX_VERSION: u32 = 1;

/// The versioned first line of a corpus index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct CorpusIndexHeader {
    /// Index-format version ([`CORPUS_INDEX_VERSION`]).
    version: u32,
    /// Number of record lines that follow (an integrity check against
    /// truncated writes).
    records: usize,
}

/// One indexed trace: the mission's grid identity, where it sat in the
/// fault space, what triage concluded, and where the file lives relative
/// to the corpus root.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusRecord {
    /// Campaign name the mission flew under.
    pub campaign: String,
    /// Scenario-family label of the mission's suite.
    pub family: String,
    /// Campaign-grid cell index.
    pub cell_index: usize,
    /// Scenario identifier within the family suite.
    pub scenario_id: usize,
    /// Repeat index within the cell.
    pub repeat: usize,
    /// The mission seed.
    pub seed: u64,
    /// System generation flown.
    pub variant: SystemVariant,
    /// The fault-space point the mission flew (one coordinate per injected
    /// plan; empty for baseline missions).
    pub coordinates: Vec<AxisCoordinate>,
    /// Mission verdict label (`"success"`, `"collision"`, `"poor-landing"`,
    /// `"incomplete"`).
    pub verdict: String,
    /// Triage class label, or `"unclassified"`.
    pub class: String,
    /// The [`FailureSignature`] dedup key.
    pub signature: String,
    /// Trace-file path relative to the corpus root, `/`-separated.
    pub path: String,
}

/// An indexed on-disk trace store rooted at one directory.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceCorpus {
    root: PathBuf,
    records: Vec<CorpusRecord>,
}

impl TraceCorpus {
    /// An empty corpus rooted at `root` (nothing touches the filesystem
    /// until [`TraceCorpus::save`]).
    pub fn create(root: impl Into<PathBuf>) -> Self {
        Self {
            root: root.into(),
            records: Vec::new(),
        }
    }

    /// Opens the corpus rooted at `root` by reading its index file.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] when the index file is missing or
    /// unreadable, the [`TraceCorpus::from_jsonl`] errors on malformed
    /// content.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, TraceError> {
        let root = root.into();
        let index = root.join(CORPUS_INDEX_FILE);
        let text = fs::read_to_string(&index)
            .map_err(|e| TraceError::Io(format!("{}: {e}", index.display())))?;
        Self::from_jsonl(root, &text)
    }

    /// Parses a corpus index from its JSON-lines form.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Serialize`] on malformed lines or a record
    /// count that disagrees with the header, and
    /// [`TraceError::UnsupportedVersion`] when the index was written by a
    /// newer format version.
    pub fn from_jsonl(root: impl Into<PathBuf>, text: &str) -> Result<Self, TraceError> {
        let mut lines = text.lines().filter(|line| !line.trim().is_empty());
        let header_line = lines
            .next()
            .ok_or_else(|| TraceError::Serialize("empty corpus index".to_string()))?;
        let header: CorpusIndexHeader = serde_json::from_str(header_line)
            .map_err(|e| TraceError::Serialize(format!("corpus index header: {e}")))?;
        if header.version > CORPUS_INDEX_VERSION {
            return Err(TraceError::UnsupportedVersion {
                found: header.version,
                supported: CORPUS_INDEX_VERSION,
            });
        }
        let mut records = Vec::new();
        for (index, line) in lines.enumerate() {
            records.push(serde_json::from_str(line).map_err(|e| {
                TraceError::Serialize(format!("corpus record line {}: {e}", index + 2))
            })?);
        }
        if records.len() != header.records {
            return Err(TraceError::Serialize(format!(
                "corpus index promises {} records but carries {}",
                header.records,
                records.len()
            )));
        }
        Ok(Self {
            root: root.into(),
            records,
        })
    }

    /// The directory the corpus is rooted at.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Every indexed record, in ingest (deterministic grid) order.
    pub fn records(&self) -> &[CorpusRecord] {
        &self.records
    }

    /// Number of indexed traces.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when nothing has been ingested.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Indexes one captured trace stored at `relative_path` under the
    /// corpus root, triaging it and computing its dedup signature.
    pub fn ingest(&mut self, trace: &Trace, relative_path: impl Into<String>) -> &CorpusRecord {
        let signature = FailureSignature::of(trace);
        let header = &trace.header;
        self.records.push(CorpusRecord {
            campaign: header.campaign.clone(),
            family: header.family.clone(),
            cell_index: header.cell_index,
            scenario_id: header.scenario_id,
            repeat: header.repeat,
            seed: header.seed,
            variant: header.variant,
            coordinates: header.coordinates.clone(),
            verdict: signature.verdict.clone(),
            class: signature.class.clone(),
            signature: signature.key(),
            path: relative_path.into().replace('\\', "/"),
        });
        self.records.last().expect("record just pushed")
    }

    /// Serialises the index as JSON lines: a versioned header line, then
    /// one record per line, in record order.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Serialize`] when serde rejects a value.
    pub fn to_jsonl(&self) -> Result<String, TraceError> {
        let header = CorpusIndexHeader {
            version: CORPUS_INDEX_VERSION,
            records: self.records.len(),
        };
        let mut out =
            serde_json::to_string(&header).map_err(|e| TraceError::Serialize(e.to_string()))?;
        out.push('\n');
        for record in &self.records {
            out.push_str(
                &serde_json::to_string(record).map_err(|e| TraceError::Serialize(e.to_string()))?,
            );
            out.push('\n');
        }
        Ok(out)
    }

    /// Writes the index file under the corpus root, creating the directory
    /// as needed.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] on filesystem failures.
    pub fn save(&self) -> Result<(), TraceError> {
        let path = self.root.join(CORPUS_INDEX_FILE);
        // Crash-ordered: a kill mid-save leaves the previous index (or
        // none), never a torn one that fails the count check on ingest.
        mls_obs::atomic_write(&path, self.to_jsonl()?.as_bytes())
            .map_err(|e| TraceError::Io(format!("{}: {e}", path.display())))
    }

    /// Resolves a record's trace file against the corpus root — valid
    /// wherever the corpus directory has been moved to, unlike the
    /// absolute paths a report's trace links recorded at capture time.
    pub fn resolve(&self, record: &CorpusRecord) -> PathBuf {
        self.root.join(&record.path)
    }

    /// Reads a record's trace back from disk.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] on filesystem failures and the
    /// [`Trace::from_jsonl`] errors on malformed content.
    pub fn load(&self, record: &CorpusRecord) -> Result<Trace, TraceError> {
        Trace::read_from(&self.resolve(record))
    }

    /// Looks a record up by its campaign-grid identity.
    pub fn find_mission(
        &self,
        cell_index: usize,
        scenario_id: usize,
        repeat: usize,
    ) -> Option<&CorpusRecord> {
        self.records.iter().find(|record| {
            record.cell_index == cell_index
                && record.scenario_id == scenario_id
                && record.repeat == repeat
        })
    }

    /// Number of distinct failure signatures in the corpus — the dedup'd
    /// failure-mode count a campaign summary quotes.
    pub fn distinct_signatures(&self) -> usize {
        self.records
            .iter()
            .map(|record| record.signature.as_str())
            .collect::<std::collections::BTreeSet<_>>()
            .len()
    }

    /// Starts a query over the corpus.
    pub fn query(&self) -> CorpusQuery<'_> {
        CorpusQuery {
            records: self.records.iter().collect(),
        }
    }
}

/// A filter-chain query over a corpus: each filter narrows the record set,
/// terminal operations count, group, sample or return it. Results preserve
/// index (grid) order, and sampling is seeded — every query is
/// deterministic.
#[derive(Debug, Clone)]
pub struct CorpusQuery<'a> {
    records: Vec<&'a CorpusRecord>,
}

impl<'a> CorpusQuery<'a> {
    /// Keeps records from one scenario family.
    #[must_use]
    pub fn family(self, label: &str) -> Self {
        self.matching(|record| record.family == label)
    }

    /// Keeps records with one triage class label (`"unclassified"` selects
    /// the unclaimed).
    #[must_use]
    pub fn class(self, label: &str) -> Self {
        self.matching(|record| record.class == label)
    }

    /// Keeps records with one mission verdict label.
    #[must_use]
    pub fn verdict(self, label: &str) -> Self {
        self.matching(|record| record.verdict == label)
    }

    /// Keeps records whose fault-space point includes `axis` (any
    /// intensity).
    #[must_use]
    pub fn fault_axis(self, axis: &str) -> Self {
        self.matching(|record| record.coordinates.iter().any(|c| c.axis == axis))
    }

    /// Keeps records with one exact failure-signature key.
    #[must_use]
    pub fn signature(self, key: &str) -> Self {
        self.matching(|record| record.signature == key)
    }

    /// Keeps records matching an arbitrary predicate.
    #[must_use]
    pub fn matching(mut self, predicate: impl Fn(&CorpusRecord) -> bool) -> Self {
        self.records.retain(|record| predicate(record));
        self
    }

    /// Number of records the filters kept.
    pub fn count(&self) -> usize {
        self.records.len()
    }

    /// The kept records, in index order.
    pub fn records(self) -> Vec<&'a CorpusRecord> {
        self.records
    }

    /// Groups the kept records by a key and counts each group (sorted by
    /// key — deterministic).
    pub fn group_count(&self, key: impl Fn(&CorpusRecord) -> String) -> BTreeMap<String, usize> {
        let mut groups = BTreeMap::new();
        for record in &self.records {
            *groups.entry(key(record)).or_insert(0) += 1;
        }
        groups
    }

    /// Draws a deterministic pseudo-random sample of up to `n` records:
    /// records are ranked by an FNV-1a hash of `(seed, grid identity)` and
    /// the lowest `n` kept, so the same seed over the same corpus always
    /// returns the same sample.
    pub fn sample(&self, seed: u64, n: usize) -> Vec<&'a CorpusRecord> {
        let mut ranked: Vec<(u64, &CorpusRecord)> = self
            .records
            .iter()
            .map(|record| {
                let rank = config_hash(&format!(
                    "{seed}:{}:{}:{}:{}",
                    record.campaign, record.cell_index, record.scenario_id, record.repeat
                ));
                (rank, *record)
            })
            .collect();
        ranked.sort_by_key(|entry| entry.0);
        ranked
            .into_iter()
            .take(n)
            .map(|(_, record)| record)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;
    use crate::format::{TraceHeader, TRACE_FORMAT_VERSION};
    use mls_core::MissionResult;
    use mls_geom::Vec3;

    fn trace(cell_index: usize, scenario_id: usize, result: MissionResult) -> Trace {
        Trace {
            header: TraceHeader {
                version: TRACE_FORMAT_VERSION,
                campaign: "corpus-test".to_string(),
                seed: 100 + scenario_id as u64,
                variant: SystemVariant::MlsV1,
                scenario_id,
                scenario_name: format!("urban-00/s{scenario_id:02}"),
                family: if cell_index.is_multiple_of(2) {
                    "open".to_string()
                } else {
                    "constrained-pad".to_string()
                },
                cell_index,
                repeat: 0,
                config_hash: config_hash("{}"),
                tick_decimation: 25,
                map_decimation: 8,
                capacity: 8192,
                dropped_events: 0,
                coordinates: vec![AxisCoordinate {
                    axis: "gps-bias".to_string(),
                    value: 0.8,
                }],
            },
            events: vec![
                TraceEvent::Tick {
                    time: 30.0,
                    position: Vec3::new(cell_index as f64 * 20.0, 0.0, 1.0),
                    velocity: Vec3::ZERO,
                    estimated: Vec3::new(cell_index as f64 * 20.0, 0.0, 1.0),
                    gps_drift: 0.1,
                    estimation_error: 0.1,
                },
                TraceEvent::MissionEnd { time: 31.0, result },
            ],
        }
    }

    fn seed_corpus(root: &Path, persist: bool) -> TraceCorpus {
        let mut corpus = TraceCorpus::create(root);
        for (cell, result) in [
            (0, MissionResult::PoorLanding),
            (1, MissionResult::CollisionFailure),
            (2, MissionResult::Success),
        ] {
            let trace = trace(cell, cell, result);
            let name = format!("c{cell:03}-s{cell:03}-r0.jsonl");
            if persist {
                trace.write_to(&root.join(&name)).unwrap();
            }
            corpus.ingest(&trace, name);
        }
        corpus
    }

    #[test]
    fn index_round_trips_and_reopens() {
        let root = std::env::temp_dir().join(format!("mls-corpus-rt-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        let corpus = seed_corpus(&root, false);
        corpus.save().unwrap();
        let reopened = TraceCorpus::open(&root).unwrap();
        assert_eq!(reopened, corpus);
        assert_eq!(reopened.len(), 3);
        assert_eq!(reopened.to_jsonl().unwrap(), corpus.to_jsonl().unwrap());
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn records_resolve_and_load_relative_to_the_root() {
        let root = std::env::temp_dir().join(format!("mls-corpus-res-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        let corpus = seed_corpus(&root, true);
        corpus.save().unwrap();

        // Relocate the whole corpus; the index still finds every trace.
        let moved = std::env::temp_dir().join(format!("mls-corpus-moved-{}", std::process::id()));
        let _ = fs::remove_dir_all(&moved);
        fs::rename(&root, &moved).unwrap();
        let reopened = TraceCorpus::open(&moved).unwrap();
        let record = reopened.find_mission(1, 1, 0).unwrap();
        let trace = reopened.load(record).unwrap();
        assert_eq!(trace.header.cell_index, 1);
        assert_eq!(record.verdict, "collision");
        fs::remove_dir_all(&moved).ok();
    }

    #[test]
    fn queries_filter_group_and_sample_deterministically() {
        let root = std::env::temp_dir().join(format!("mls-corpus-q-{}", std::process::id()));
        let corpus = seed_corpus(&root, false);
        assert_eq!(corpus.query().family("open").count(), 2);
        assert_eq!(corpus.query().verdict("collision").count(), 1);
        assert_eq!(corpus.query().fault_axis("gps-bias").count(), 3);
        assert_eq!(corpus.query().fault_axis("wind-gust").count(), 0);
        let by_verdict = corpus.query().group_count(|r| r.verdict.clone());
        assert_eq!(by_verdict.get("success"), Some(&1));
        assert_eq!(by_verdict.values().sum::<usize>(), 3);
        let a = corpus.query().sample(7, 2);
        let b = corpus.query().sample(7, 2);
        assert_eq!(a, b, "sampling is a pure function of the seed");
        assert_eq!(a.len(), 2);
        assert_ne!(
            corpus
                .query()
                .sample(8, 3)
                .iter()
                .map(|r| r.cell_index)
                .collect::<Vec<_>>(),
            Vec::<usize>::new()
        );
        assert!(corpus.distinct_signatures() >= 2);
    }

    #[test]
    fn truncated_and_future_indexes_are_rejected() {
        let root = std::env::temp_dir().join("unused");
        let corpus = seed_corpus(&std::env::temp_dir().join("mls-corpus-x"), false);
        let jsonl = corpus.to_jsonl().unwrap();
        let truncated: String = jsonl.lines().take(2).collect::<Vec<_>>().join("\n");
        assert!(matches!(
            TraceCorpus::from_jsonl(&root, &truncated),
            Err(TraceError::Serialize(_))
        ));
        let future = jsonl.replacen("\"version\":1", "\"version\":99", 1);
        assert!(matches!(
            TraceCorpus::from_jsonl(&root, &future),
            Err(TraceError::UnsupportedVersion { .. })
        ));
        assert!(TraceCorpus::from_jsonl(&root, "").is_err());
    }
}
