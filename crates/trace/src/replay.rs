//! Deterministic replay verification.
//!
//! Every mission in this workspace is a pure function of (seed, spec), so a
//! genuine replay does not *approximately* match the recording — it matches
//! byte for byte. [`verify_replay`] compares a recorded trace against a
//! freshly regenerated one at that standard: the headers must agree on the
//! mission identity and recorder parameters, and the serialized event
//! streams must be identical strings. Any divergence is reported with the
//! first offending line, which is exactly the forensic breadcrumb a
//! nondeterminism bug needs.
//!
//! Re-executing the mission itself requires the campaign machinery (spec,
//! scenario suite, fault plans), so the glue that produces the regenerated
//! trace lives in `mls-campaign`; this module owns only the verdict.

use crate::format::Trace;

/// Outcome of comparing a recorded trace against its replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayVerdict {
    /// The replay reproduced the recording byte for byte.
    Identical {
        /// Number of events compared.
        events: usize,
    },
    /// The headers disagree — the traces describe different missions or
    /// recorder configurations, so the event streams were not compared.
    HeaderMismatch {
        /// The recorded header, serialized.
        recorded: String,
        /// The replayed header, serialized.
        replayed: String,
    },
    /// The event streams diverge.
    Diverged {
        /// 1-based index of the first differing event line.
        line: usize,
        /// The recorded line at that index (`None` when the recording is
        /// shorter).
        recorded: Option<String>,
        /// The replayed line at that index (`None` when the replay is
        /// shorter).
        replayed: Option<String>,
    },
}

impl ReplayVerdict {
    /// `true` for [`ReplayVerdict::Identical`].
    pub fn is_identical(&self) -> bool {
        matches!(self, ReplayVerdict::Identical { .. })
    }
}

impl std::fmt::Display for ReplayVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayVerdict::Identical { events } => {
                write!(f, "replay identical over {events} events")
            }
            ReplayVerdict::HeaderMismatch { .. } => write!(f, "replay header mismatch"),
            ReplayVerdict::Diverged { line, .. } => {
                write!(f, "replay diverged at event line {line}")
            }
        }
    }
}

/// Byte-compares a recorded trace against its regenerated replay.
pub fn verify_replay(recorded: &Trace, replayed: &Trace) -> ReplayVerdict {
    if recorded.header != replayed.header {
        return ReplayVerdict::HeaderMismatch {
            recorded: serde_json::to_string(&recorded.header).unwrap_or_default(),
            replayed: serde_json::to_string(&replayed.header).unwrap_or_default(),
        };
    }
    let original = recorded.events_jsonl().unwrap_or_default();
    let regenerated = replayed.events_jsonl().unwrap_or_default();
    if original == regenerated {
        return ReplayVerdict::Identical {
            events: recorded.events.len(),
        };
    }
    let mut original_lines = original.lines();
    let mut regenerated_lines = regenerated.lines();
    let mut line = 0usize;
    loop {
        line += 1;
        match (original_lines.next(), regenerated_lines.next()) {
            (Some(a), Some(b)) if a == b => continue,
            (a, b) => {
                return ReplayVerdict::Diverged {
                    line,
                    recorded: a.map(str::to_string),
                    replayed: b.map(str::to_string),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;
    use crate::format::{config_hash, TraceHeader, TRACE_FORMAT_VERSION};
    use mls_core::{MissionResult, SystemVariant};

    fn trace() -> Trace {
        Trace {
            header: TraceHeader {
                version: TRACE_FORMAT_VERSION,
                campaign: "replay-test".to_string(),
                seed: 5,
                variant: SystemVariant::MlsV2,
                scenario_id: 1,
                scenario_name: "s".to_string(),
                family: "open".to_string(),
                cell_index: 0,
                repeat: 0,
                config_hash: config_hash("spec"),
                tick_decimation: 25,
                map_decimation: 8,
                capacity: 1024,
                dropped_events: 0,
                coordinates: Vec::new(),
            },
            events: vec![
                TraceEvent::FaultCleared { time: 30.0 },
                TraceEvent::MissionEnd {
                    time: 80.0,
                    result: MissionResult::PoorLanding,
                },
            ],
        }
    }

    #[test]
    fn identical_traces_verify() {
        let a = trace();
        let verdict = verify_replay(&a, &a.clone());
        assert!(verdict.is_identical());
        assert_eq!(verdict, ReplayVerdict::Identical { events: 2 });
        assert!(verdict.to_string().contains("2 events"));
    }

    #[test]
    fn event_divergence_reports_the_first_line() {
        let a = trace();
        let mut b = a.clone();
        b.events[1] = TraceEvent::MissionEnd {
            time: 80.0,
            result: MissionResult::Success,
        };
        match verify_replay(&a, &b) {
            ReplayVerdict::Diverged {
                line,
                recorded,
                replayed,
            } => {
                assert_eq!(line, 2);
                assert!(recorded.unwrap().contains("PoorLanding"));
                assert!(replayed.unwrap().contains("Success"));
            }
            other => panic!("expected divergence, got {other:?}"),
        }
    }

    #[test]
    fn missing_tail_is_a_divergence() {
        let a = trace();
        let mut b = a.clone();
        b.events.pop();
        match verify_replay(&a, &b) {
            ReplayVerdict::Diverged { line, replayed, .. } => {
                assert_eq!(line, 2);
                assert!(replayed.is_none());
            }
            other => panic!("expected divergence, got {other:?}"),
        }
    }

    #[test]
    fn header_drift_is_rejected_before_events_are_compared() {
        let a = trace();
        let mut b = a.clone();
        b.header.seed = 6;
        assert!(matches!(
            verify_replay(&a, &b),
            ReplayVerdict::HeaderMismatch { .. }
        ));
    }
}
