//! The typed event model of the flight recorder.
//!
//! A trace is a chronological stream of [`TraceEvent`]s, one per notable
//! moment of a mission: decimated physics snapshots, directive transitions,
//! marker observations before and after fault tampering, planning queries
//! and their latencies, failsafe triggers, fault activations and the final
//! classification. Events are plain serializable data — the triage
//! classifier and the replay comparator both work on this representation
//! alone, never on live mission state.

use mls_core::{Directive, FailsafeReason, MissionResult, ObservationStage};
use mls_geom::Vec3;
use mls_vision::MarkerObservation;
use serde::{Deserialize, Serialize};

/// A compact record of one marker observation (the full pixel-space
/// detection is deliberately not captured; traces stay small).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MarkerSighting {
    /// Decoded marker id.
    pub id: u32,
    /// Estimated world position of the marker centre.
    pub position: Vec3,
    /// Detector confidence in `[0, 1]`.
    pub confidence: f64,
}

impl MarkerSighting {
    /// Compresses a full observation into a sighting.
    pub fn from_observation(observation: &MarkerObservation) -> Self {
        Self {
            id: observation.id,
            position: observation.world_position,
            confidence: observation.confidence,
        }
    }
}

/// One recorded moment of a mission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// Decimated physics-tick snapshot.
    Tick {
        /// Simulation time, seconds.
        time: f64,
        /// True world-frame position, metres.
        position: Vec3,
        /// True world-frame velocity, m/s.
        velocity: Vec3,
        /// EKF position estimate, metres.
        estimated: Vec3,
        /// Accumulated natural GNSS drift magnitude, metres.
        gps_drift: f64,
        /// Horizontal distance between the estimated and true positions,
        /// metres (exposes both silent drift and injected bias).
        estimation_error: f64,
    },
    /// The decision module switched to a new directive (or moved an
    /// existing goal appreciably).
    DirectiveChange {
        /// Simulation time, seconds.
        time: f64,
        /// The new directive.
        directive: Directive,
    },
    /// A detection frame's marker observations at one tampering stage.
    Markers {
        /// Simulation time, seconds.
        time: f64,
        /// Before or after the fault hook's observation tampering.
        stage: ObservationStage,
        /// The observations, compressed.
        markers: Vec<MarkerSighting>,
    },
    /// A planning query is about to run.
    PlanRequest {
        /// Simulation time, seconds.
        time: f64,
        /// Query start (the position estimate), metres.
        start: Vec3,
        /// Query goal, metres.
        goal: Vec3,
    },
    /// A planning query finished.
    PlanResult {
        /// Simulation time, seconds.
        time: f64,
        /// `false` when the planner failed outright.
        success: bool,
        /// `true` when the V2 straight-line fallback was taken.
        fallback: bool,
        /// Compute latency charged to the plan, seconds.
        latency: f64,
        /// Planner iterations consumed.
        iterations: usize,
    },
    /// A failsafe abort ended the mission.
    Failsafe {
        /// Simulation time, seconds.
        time: f64,
        /// Why the failsafe fired.
        reason: FailsafeReason,
    },
    /// Fault injection became active (an edge, not a per-tick sample).
    FaultActive {
        /// Simulation time, seconds.
        time: f64,
        /// Injected GNSS bias at activation, metres.
        gps_bias: Vec3,
        /// Injected wind disturbance at activation, m/s.
        wind: Vec3,
        /// Compute-capacity factor at activation, `(0, 1]`.
        compute_throttle: f64,
    },
    /// Fault injection returned to neutral.
    FaultCleared {
        /// Simulation time, seconds.
        time: f64,
    },
    /// A depth cloud was integrated into the map.
    MapUpdate {
        /// Simulation time, seconds.
        time: f64,
        /// Points integrated.
        inserted: usize,
        /// Points the `pre_mapping` fault hook removed.
        dropped: usize,
        /// Points the `pre_mapping` fault hook displaced.
        displaced: usize,
    },
    /// The mission is over.
    MissionEnd {
        /// Simulation time, seconds.
        time: f64,
        /// Final classification.
        result: MissionResult,
    },
}

impl TraceEvent {
    /// The simulation time the event was recorded at, seconds.
    pub fn time(&self) -> f64 {
        match self {
            TraceEvent::Tick { time, .. }
            | TraceEvent::DirectiveChange { time, .. }
            | TraceEvent::Markers { time, .. }
            | TraceEvent::PlanRequest { time, .. }
            | TraceEvent::PlanResult { time, .. }
            | TraceEvent::Failsafe { time, .. }
            | TraceEvent::FaultActive { time, .. }
            | TraceEvent::FaultCleared { time }
            | TraceEvent::MapUpdate { time, .. }
            | TraceEvent::MissionEnd { time, .. } => *time,
        }
    }

    /// Short label of the event kind, for narratives and summaries.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Tick { .. } => "tick",
            TraceEvent::DirectiveChange { .. } => "directive",
            TraceEvent::Markers { .. } => "markers",
            TraceEvent::PlanRequest { .. } => "plan-request",
            TraceEvent::PlanResult { .. } => "plan-result",
            TraceEvent::Failsafe { .. } => "failsafe",
            TraceEvent::FaultActive { .. } => "fault-active",
            TraceEvent::FaultCleared { .. } => "fault-cleared",
            TraceEvent::MapUpdate { .. } => "map-update",
            TraceEvent::MissionEnd { .. } => "mission-end",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_expose_time_and_kind() {
        let event = TraceEvent::PlanResult {
            time: 12.5,
            success: true,
            fallback: false,
            latency: 0.08,
            iterations: 300,
        };
        assert_eq!(event.time(), 12.5);
        assert_eq!(event.kind(), "plan-result");
        let end = TraceEvent::MissionEnd {
            time: 90.0,
            result: MissionResult::Success,
        };
        assert_eq!(end.kind(), "mission-end");
    }

    #[test]
    fn events_round_trip_through_the_serde_data_model() {
        let events = vec![
            TraceEvent::Tick {
                time: 1.0,
                position: Vec3::new(1.0, 2.0, 3.0),
                velocity: Vec3::new(0.1, 0.0, -0.2),
                estimated: Vec3::new(1.1, 2.0, 3.0),
                gps_drift: 0.4,
                estimation_error: 0.12,
            },
            TraceEvent::DirectiveChange {
                time: 2.0,
                directive: Directive::FlyTo {
                    goal: Vec3::new(40.0, 0.0, 10.0),
                },
            },
            TraceEvent::Markers {
                time: 3.0,
                stage: ObservationStage::PreFault,
                markers: vec![MarkerSighting {
                    id: 7,
                    position: Vec3::new(40.0, 1.0, 0.0),
                    confidence: 0.9,
                }],
            },
            TraceEvent::Failsafe {
                time: 4.0,
                reason: FailsafeReason::MarkerLost,
            },
            TraceEvent::FaultCleared { time: 5.0 },
        ];
        for event in &events {
            let json = serde_json::to_string(event).unwrap();
            let back: TraceEvent = serde_json::from_str(&json).unwrap();
            assert_eq!(&back, event, "event {json} must round-trip");
        }
    }
}
