//! The ring-buffered flight recorder.
//!
//! [`TraceRecorder`] implements the `mls-core` [`TraceSink`] seam and
//! condenses the firehose of executor callbacks into the typed event stream:
//! physics ticks are decimated, directives are recorded only on transitions,
//! fault effects only on activation edges, and observation batches only when
//! they carry information (non-empty, or emptied by a fault). The buffer is
//! a fixed-capacity ring — when a mission outlives it, the oldest events are
//! evicted and counted, flight-recorder style, so the final approach is
//! always preserved.
//!
//! The recorder shares its state with a [`TraceHandle`]: the executor owns
//! the boxed sink for the duration of `run()`, and the caller collects the
//! finished [`Trace`] from the handle afterwards.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use mls_core::{Directive, FailsafeReason, MissionResult, ObservationStage, TickFaults, TraceSink};
use mls_geom::Vec3;
use mls_sim_uav::VehicleState;
use mls_vision::MarkerObservation;
use serde::{Deserialize, Serialize};

use crate::event::{MarkerSighting, TraceEvent};
use crate::format::{Trace, TraceHeader, TRACE_FORMAT_VERSION};

/// When a campaign persists mission traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TracePolicy {
    /// No capture at all (the recorder is never attached).
    #[default]
    Off,
    /// Capture every mission, keep only those that did not end in
    /// `MissionResult::Success` — the forensic default.
    FailuresOnly,
    /// Keep every mission's trace.
    All,
}

impl TracePolicy {
    /// `true` when missions should fly with a recorder attached.
    pub fn captures(self) -> bool {
        !matches!(self, TracePolicy::Off)
    }

    /// `true` when a mission with the given result should be kept.
    pub fn keeps(self, result: MissionResult) -> bool {
        match self {
            TracePolicy::Off => false,
            TracePolicy::FailuresOnly => result != MissionResult::Success,
            TracePolicy::All => true,
        }
    }
}

/// Sizing of the recorder's condensation and ring buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecorderConfig {
    /// Ring-buffer capacity, events.
    pub capacity: usize,
    /// Record every Nth physics tick (25 ≈ 2 Hz at the 50 Hz physics rate).
    pub tick_decimation: usize,
    /// Record every Nth untampered map update (tampered ones always record).
    pub map_decimation: usize,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        Self {
            capacity: 8192,
            tick_decimation: 25,
            map_decimation: 8,
        }
    }
}

impl RecorderConfig {
    /// Builds a trace header carrying this recorder configuration, so a
    /// replay reconstructs the exact same condensation.
    #[allow(clippy::too_many_arguments)]
    pub fn header(
        &self,
        campaign: &str,
        seed: u64,
        variant: mls_core::SystemVariant,
        scenario_id: usize,
        scenario_name: &str,
        cell_index: usize,
        repeat: usize,
        config_hash: u64,
    ) -> TraceHeader {
        TraceHeader {
            version: TRACE_FORMAT_VERSION,
            campaign: campaign.to_string(),
            seed,
            variant,
            scenario_id,
            scenario_name: scenario_name.to_string(),
            // The campaign runner overwrites this with the cell's family
            // (like `coordinates`); standalone recorders capture open runs.
            family: "open".to_string(),
            cell_index,
            repeat,
            config_hash,
            tick_decimation: self.tick_decimation.max(1),
            map_decimation: self.map_decimation.max(1),
            capacity: self.capacity.max(1),
            dropped_events: 0,
            coordinates: Vec::new(),
        }
    }

    /// Recovers the recorder configuration a header was captured with.
    pub fn from_header(header: &TraceHeader) -> Self {
        Self {
            capacity: header.capacity.max(1),
            tick_decimation: header.tick_decimation.max(1),
            map_decimation: header.map_decimation.max(1),
        }
    }
}

/// Shared recorder state behind the sink and its handle.
#[derive(Debug)]
struct RecorderState {
    header: TraceHeader,
    events: VecDeque<TraceEvent>,
    dropped: u64,
    ticks_seen: u64,
    maps_seen: u64,
    fault_active: bool,
    last_faults: TickFaults,
    last_directive: Option<Directive>,
    last_pre_nonempty: bool,
}

impl RecorderState {
    fn push(&mut self, event: TraceEvent) {
        if self.events.len() >= self.header.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }
}

/// The ring-buffered flight recorder; attach with
/// `MissionExecutor::with_trace_sink`.
#[derive(Debug)]
pub struct TraceRecorder {
    state: Arc<Mutex<RecorderState>>,
}

/// The caller-side handle a recorder leaves behind: collects the finished
/// trace once the mission (which owns the boxed recorder) has run.
#[derive(Debug)]
pub struct TraceHandle {
    state: Arc<Mutex<RecorderState>>,
}

impl TraceRecorder {
    /// Creates a recorder for a mission described by `header` (which also
    /// carries the condensation parameters; see [`RecorderConfig::header`]).
    pub fn new(header: TraceHeader) -> Self {
        Self {
            state: Arc::new(Mutex::new(RecorderState {
                header,
                events: VecDeque::new(),
                dropped: 0,
                ticks_seen: 0,
                maps_seen: 0,
                fault_active: false,
                last_faults: TickFaults::NONE,
                last_directive: None,
                last_pre_nonempty: false,
            })),
        }
    }

    /// A handle that outlives the mission and yields the finished trace.
    pub fn handle(&self) -> TraceHandle {
        TraceHandle {
            state: Arc::clone(&self.state),
        }
    }
}

impl TraceHandle {
    /// Collects the captured trace, stamping the eviction count into the
    /// header.
    pub fn finish(self) -> Trace {
        let mut state = self.state.lock().expect("trace recorder state poisoned");
        let mut header = state.header.clone();
        header.dropped_events = state.dropped;
        Trace {
            header,
            events: state.events.drain(..).collect(),
        }
    }
}

/// The goal a directive points at, for transition detection.
fn directive_goal(directive: &Directive) -> Option<Vec3> {
    match directive {
        Directive::FlyTo { goal } | Directive::DescendTo { goal } => Some(*goal),
        Directive::CommitFinalDescent { target } => Some(*target),
        _ => None,
    }
}

/// Whether two directives are close enough to count as "the same" for the
/// transition log: identical shape and a goal that moved under half a metre
/// (the staged-descent goal drifts centimetres every decision tick).
fn same_directive(a: &Directive, b: &Directive) -> bool {
    if std::mem::discriminant(a) != std::mem::discriminant(b) {
        return false;
    }
    match (directive_goal(a), directive_goal(b)) {
        (Some(ga), Some(gb)) => ga.distance(gb) <= 0.5,
        _ => a == b,
    }
}

impl TraceSink for TraceRecorder {
    fn on_fault(&mut self, time: f64, faults: &TickFaults) {
        let mut state = self.state.lock().expect("trace recorder state poisoned");
        let active = *faults != TickFaults::NONE;
        // Activation edges always record; while active, a fresh edge is
        // recorded whenever the injected magnitudes moved materially since
        // the last one (a GNSS bias ramping in, a gust swelling) — so the
        // trace shows the profile, not just a near-zero onset sample.
        let last = state.last_faults;
        let moved = (faults.gps_bias - last.gps_bias).norm() > 1.0
            || (faults.wind_disturbance - last.wind_disturbance).norm() > 2.0
            || (faults.compute_throttle - last.compute_throttle).abs() > 0.2;
        if active && (!state.fault_active || moved) {
            state.push(TraceEvent::FaultActive {
                time,
                gps_bias: faults.gps_bias,
                wind: faults.wind_disturbance,
                compute_throttle: faults.compute_throttle,
            });
            state.last_faults = *faults;
        } else if !active && state.fault_active {
            state.push(TraceEvent::FaultCleared { time });
            state.last_faults = TickFaults::NONE;
        }
        state.fault_active = active;
    }

    fn on_tick(
        &mut self,
        time: f64,
        state: &VehicleState,
        estimated: Vec3,
        gps_drift: f64,
        estimation_error: f64,
    ) {
        let mut recorder = self.state.lock().expect("trace recorder state poisoned");
        let decimation = recorder.header.tick_decimation as u64;
        let index = recorder.ticks_seen;
        recorder.ticks_seen += 1;
        if index.is_multiple_of(decimation) {
            recorder.push(TraceEvent::Tick {
                time,
                position: state.position,
                velocity: state.velocity,
                estimated,
                gps_drift,
                estimation_error,
            });
        }
    }

    fn on_mapping(&mut self, time: f64, inserted: usize, dropped: usize, displaced: usize) {
        let mut state = self.state.lock().expect("trace recorder state poisoned");
        let decimation = state.map_decimation();
        let index = state.maps_seen;
        state.maps_seen += 1;
        let tampered = dropped + displaced > 0;
        if tampered || index.is_multiple_of(decimation) {
            state.push(TraceEvent::MapUpdate {
                time,
                inserted,
                dropped,
                displaced,
            });
        }
    }

    fn on_observations(
        &mut self,
        time: f64,
        stage: ObservationStage,
        observations: &[MarkerObservation],
    ) {
        let mut state = self.state.lock().expect("trace recorder state poisoned");
        let record = match stage {
            ObservationStage::PreFault => {
                state.last_pre_nonempty = !observations.is_empty();
                !observations.is_empty()
            }
            // An empty post-fault batch is still evidence when the pre-fault
            // batch had sightings: the fault hook swallowed a frame.
            ObservationStage::PostFault => !observations.is_empty() || state.last_pre_nonempty,
        };
        if record {
            state.push(TraceEvent::Markers {
                time,
                stage,
                markers: observations
                    .iter()
                    .map(MarkerSighting::from_observation)
                    .collect(),
            });
        }
    }

    fn on_directive(&mut self, time: f64, directive: &Directive) {
        let mut state = self.state.lock().expect("trace recorder state poisoned");
        let changed = state
            .last_directive
            .as_ref()
            .map(|last| !same_directive(last, directive))
            .unwrap_or(true);
        if changed {
            state.last_directive = Some(directive.clone());
            state.push(TraceEvent::DirectiveChange {
                time,
                directive: directive.clone(),
            });
        }
    }

    fn on_plan_request(&mut self, time: f64, start: Vec3, goal: Vec3) {
        let mut state = self.state.lock().expect("trace recorder state poisoned");
        state.push(TraceEvent::PlanRequest { time, start, goal });
    }

    fn on_plan_result(
        &mut self,
        time: f64,
        success: bool,
        fallback: bool,
        latency: f64,
        iterations: usize,
    ) {
        let mut state = self.state.lock().expect("trace recorder state poisoned");
        state.push(TraceEvent::PlanResult {
            time,
            success,
            fallback,
            latency,
            iterations,
        });
    }

    fn on_failsafe(&mut self, time: f64, reason: FailsafeReason) {
        let mut state = self.state.lock().expect("trace recorder state poisoned");
        state.push(TraceEvent::Failsafe { time, reason });
    }

    fn on_mission_end(&mut self, time: f64, result: MissionResult) {
        let mut state = self.state.lock().expect("trace recorder state poisoned");
        state.push(TraceEvent::MissionEnd { time, result });
    }
}

impl RecorderState {
    fn map_decimation(&self) -> u64 {
        self.header.map_decimation as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::config_hash;
    use mls_core::SystemVariant;

    fn recorder(config: RecorderConfig) -> (TraceRecorder, TraceHandle) {
        let header = config.header(
            "unit",
            7,
            SystemVariant::MlsV3,
            0,
            "rural-00/s00",
            0,
            0,
            config_hash("{}"),
        );
        let recorder = TraceRecorder::new(header);
        let handle = recorder.handle();
        (recorder, handle)
    }

    fn tick(recorder: &mut TraceRecorder, time: f64) {
        let state = VehicleState::grounded(Vec3::new(0.0, 0.0, 10.0));
        recorder.on_tick(time, &state, Vec3::ZERO, 0.1, 0.05);
    }

    #[test]
    fn ticks_are_decimated() {
        let (mut rec, handle) = recorder(RecorderConfig {
            tick_decimation: 10,
            ..RecorderConfig::default()
        });
        for i in 0..100 {
            tick(&mut rec, i as f64 * 0.02);
        }
        let trace = handle.finish();
        assert_eq!(trace.events.len(), 10);
        assert_eq!(trace.header.dropped_events, 0);
    }

    #[test]
    fn ring_buffer_evicts_oldest_and_counts() {
        let (mut rec, handle) = recorder(RecorderConfig {
            capacity: 5,
            tick_decimation: 1,
            ..RecorderConfig::default()
        });
        for i in 0..12 {
            tick(&mut rec, i as f64);
        }
        let trace = handle.finish();
        assert_eq!(trace.events.len(), 5);
        assert_eq!(trace.header.dropped_events, 7);
        // The newest events survive.
        assert_eq!(trace.events.last().unwrap().time(), 11.0);
        assert_eq!(trace.events.first().unwrap().time(), 7.0);
    }

    #[test]
    fn directives_record_transitions_not_jitter() {
        let (mut rec, handle) = recorder(RecorderConfig::default());
        let fly = Directive::FlyTo {
            goal: Vec3::new(40.0, 0.0, 10.0),
        };
        rec.on_directive(0.0, &fly);
        // Centimetre goal jitter is not a transition.
        rec.on_directive(
            1.0,
            &Directive::FlyTo {
                goal: Vec3::new(40.05, 0.0, 10.0),
            },
        );
        // A different shape is.
        rec.on_directive(2.0, &Directive::Hover);
        // A large goal move is too.
        rec.on_directive(
            3.0,
            &Directive::FlyTo {
                goal: Vec3::new(10.0, 0.0, 10.0),
            },
        );
        let trace = handle.finish();
        assert_eq!(trace.events.len(), 3, "{:?}", trace.events);
    }

    #[test]
    fn fault_edges_are_recorded_once() {
        let (mut rec, handle) = recorder(RecorderConfig::default());
        rec.on_fault(0.0, &TickFaults::NONE);
        let active = TickFaults {
            gps_bias: Vec3::new(5.0, 0.0, 0.0),
            ..TickFaults::NONE
        };
        for t in 1..50 {
            rec.on_fault(t as f64, &active);
        }
        rec.on_fault(50.0, &TickFaults::NONE);
        let trace = handle.finish();
        assert_eq!(trace.events.len(), 2);
        assert!(matches!(trace.events[0], TraceEvent::FaultActive { .. }));
        assert!(matches!(trace.events[1], TraceEvent::FaultCleared { time } if time == 50.0));
    }

    #[test]
    fn ramping_faults_re_record_material_changes_only() {
        let (mut rec, handle) = recorder(RecorderConfig::default());
        // A bias ramping 0 → 8 m in 0.4 m steps: edges land roughly every
        // metre of movement, not every tick.
        for i in 0..21 {
            let faults = TickFaults {
                gps_bias: Vec3::new(0.4 * i as f64, 0.0, 0.0),
                ..TickFaults::NONE
            };
            rec.on_fault(i as f64, &faults);
        }
        let trace = handle.finish();
        let recorded: Vec<f64> = trace
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::FaultActive { gps_bias, .. } => Some(gps_bias.norm()),
                _ => None,
            })
            .collect();
        assert!(
            recorded.len() > 2 && recorded.len() < 21,
            "ramp edges: {recorded:?}"
        );
        assert!(
            recorded.last().unwrap() > &7.0,
            "the trace must show the ramp reaching its plateau: {recorded:?}"
        );
    }

    #[test]
    fn empty_observation_batches_record_only_fault_swallows() {
        let (mut rec, handle) = recorder(RecorderConfig::default());
        // Nothing seen, nothing recorded.
        rec.on_observations(0.0, ObservationStage::PreFault, &[]);
        rec.on_observations(0.0, ObservationStage::PostFault, &[]);
        // A sighting dropped by the fault hook records both stages.
        let sighting = MarkerObservation {
            id: 7,
            world_position: Vec3::new(40.0, 1.0, 0.0),
            confidence: 0.9,
            apparent_size: 24.0,
            estimated_size: 1.5,
            detection: mls_vision::Detection::from_corners(7, [mls_geom::Vec2::ZERO; 4], 0.9),
        };
        rec.on_observations(1.0, ObservationStage::PreFault, &[sighting]);
        rec.on_observations(1.0, ObservationStage::PostFault, &[]);
        let trace = handle.finish();
        assert_eq!(trace.events.len(), 2);
        assert!(
            matches!(&trace.events[1], TraceEvent::Markers { stage: ObservationStage::PostFault, markers, .. } if markers.is_empty())
        );
    }

    #[test]
    fn tampered_map_updates_always_record() {
        let (mut rec, handle) = recorder(RecorderConfig {
            map_decimation: 100,
            ..RecorderConfig::default()
        });
        for i in 0..10 {
            rec.on_mapping(i as f64, 50, 0, 0);
        }
        rec.on_mapping(10.0, 40, 10, 40);
        let trace = handle.finish();
        // One decimated clean update (index 0) plus the tampered one.
        assert_eq!(trace.events.len(), 2);
        assert!(matches!(
            trace.events[1],
            TraceEvent::MapUpdate {
                dropped: 10,
                displaced: 40,
                ..
            }
        ));
    }

    #[test]
    fn policy_semantics() {
        assert!(!TracePolicy::Off.captures());
        assert!(TracePolicy::FailuresOnly.captures());
        assert!(TracePolicy::All.captures());
        assert!(!TracePolicy::Off.keeps(MissionResult::CollisionFailure));
        assert!(!TracePolicy::FailuresOnly.keeps(MissionResult::Success));
        assert!(TracePolicy::FailuresOnly.keeps(MissionResult::PoorLanding));
        assert!(TracePolicy::All.keeps(MissionResult::Success));
        assert_eq!(TracePolicy::default(), TracePolicy::Off);
    }

    #[test]
    fn header_round_trips_recorder_config() {
        let config = RecorderConfig {
            capacity: 100,
            tick_decimation: 5,
            map_decimation: 3,
        };
        let header = config.header("c", 1, SystemVariant::MlsV1, 2, "s", 3, 4, 9);
        assert_eq!(RecorderConfig::from_header(&header), config);
    }
}
