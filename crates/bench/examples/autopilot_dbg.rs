use mls_geom::Vec3;
use mls_sim_uav::{Uav, UavConfig};
use mls_sim_world::{MapStyle, MarkerSite, WorldMap};
use mls_vision::MarkerDictionary;

fn main() {
    let world = WorldMap::empty("flat", MapStyle::Rural, 100.0).with_marker(MarkerSite::target(
        2,
        Vec3::new(10.0, 5.0, 0.0),
        1.5,
        0.0,
    ));
    let mut uav = Uav::new(
        UavConfig::default(),
        mls_sim_world::Weather::clear(),
        Vec3::ZERO,
        MarkerDictionary::standard(),
        42,
    );
    uav.autopilot_mut().arm_and_takeoff(10.0);
    for _ in 0..(20.0 / uav.physics_dt()) as usize {
        uav.step(&world);
    }
    println!(
        "after takeoff z={:.2} mode={:?}",
        uav.true_state().position.z,
        uav.autopilot().mode()
    );
    uav.autopilot_mut().goto(Vec3::new(10.0, 5.0, 10.0), 0.0);
    for _ in 0..(25.0 / uav.physics_dt()) as usize {
        uav.step(&world);
    }
    println!(
        "after goto pos={:?} mode={:?}",
        uav.true_state().position,
        uav.autopilot().mode()
    );
    uav.autopilot_mut().land();
    for i in 0..(40.0 / uav.physics_dt()) as usize {
        uav.step(&world);
        if i % 100 == 0 {
            println!(
                "t={:.1} z={:.3} vz={:.3} landed={} mode={:?} est_z={:.3}",
                uav.time(),
                uav.true_state().position.z,
                uav.true_state().velocity.z,
                uav.true_state().landed,
                uav.autopilot().mode(),
                uav.estimated_pose().position.z
            );
        }
    }
}
