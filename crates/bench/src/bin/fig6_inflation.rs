//! Figure 6 — inflated bounding boxes "swallowing" free space near buildings.
//!
//! The paper's MLS-V2 collisions clustered near buildings "where objects were
//! 'swallowed' by the bounding box, either invalidating all paths during
//! safety checks or defaulting to unsafe straight-line paths". This harness
//! sweeps the obstacle-inflation / clearance radius next to a building and
//! reports (1) the fraction of valid descent corridors around a pad close to
//! the building and (2) whether the bounded A* planner can still find a path
//! along the street canyon.

use mls_bench::{percent, print_header};
use mls_geom::Vec3;
use mls_mapping::{VoxelGridConfig, VoxelGridMap};
use mls_planning::safety::{descent_availability, SafetyConfig};
use mls_planning::{AStarConfig, AStarPlanner, PathPlanner};

/// A street canyon: two building faces 6 m apart.
fn street_canyon() -> VoxelGridMap {
    let mut grid = VoxelGridMap::new(VoxelGridConfig {
        resolution: 0.4,
        half_extent_xy: 25.0,
        height: 20.0,
        carve_free_space: false,
        max_range: 100.0,
    })
    .unwrap();
    for x in -50..=50 {
        for z in 0..40 {
            let xf = x as f64 * 0.4;
            let zf = z as f64 * 0.4;
            grid.mark_occupied(Vec3::new(xf, 3.0, zf));
            grid.mark_occupied(Vec3::new(xf, 3.4, zf));
            grid.mark_occupied(Vec3::new(xf, -3.0, zf));
            grid.mark_occupied(Vec3::new(xf, -3.4, zf));
        }
    }
    grid
}

fn main() {
    print_header("Figure 6 — Inflated bounding box sweep next to buildings");
    let grid = street_canyon();
    let pad = Vec3::new(0.0, 0.0, 0.0);

    println!(
        "{:>18} {:>26} {:>24}",
        "inflation radius", "descent availability", "canyon path found (A*)"
    );
    for radius in [0.4, 0.7, 1.0, 1.3, 1.6, 2.0, 2.4, 2.8] {
        let availability = descent_availability(
            &grid,
            pad,
            2.0,
            10.0,
            &SafetyConfig {
                descent_clearance: radius,
                ..SafetyConfig::default()
            },
        );
        let mut planner = AStarPlanner::with_config(AStarConfig {
            inflation_radius: radius,
            max_expansions: 4000,
            ..AStarConfig::default()
        });
        let path = planner.plan(&grid, Vec3::new(-15.0, 0.0, 5.0), Vec3::new(15.0, 0.0, 5.0));
        println!(
            "{:>16.1} m {:>26} {:>24}",
            radius,
            percent(availability),
            match path {
                Ok(outcome) => format!("yes ({:.1} m)", outcome.path.length()),
                Err(_) => "no (canyon swallowed)".to_string(),
            }
        );
    }
    println!();
    println!("Expected shape: availability and canyon traversability both collapse as the");
    println!("inflation radius approaches half the canyon width (3 m), reproducing the");
    println!("paper's 'swallowed' free space next to buildings.");
}
