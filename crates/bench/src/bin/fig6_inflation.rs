//! Figure 6 — inflated bounding boxes "swallowing" free space near buildings.
//!
//! The paper's MLS-V2 collisions clustered near buildings "where objects were
//! 'swallowed' by the bounding box, either invalidating all paths during
//! safety checks or defaulting to unsafe straight-line paths". This harness
//! reproduces the effect two ways:
//!
//! 1. a controlled geometric sweep — the obstacle-inflation / clearance
//!    radius next to a synthetic street canyon, reporting descent-corridor
//!    availability and bounded-A* traversability;
//! 2. an end-to-end mission sweep — one [`CampaignSpec`] per inflation
//!    radius, each sweeping the scenario-family grid axis
//!    (open × constrained-pad) with the sharded [`CampaignRunner`], so the
//!    collapse shows up in landing outcomes, not just geometry: the open
//!    benchmark pads sit clear of buildings and stay flat across radii,
//!    while the constrained-pad family (wall 1.5–2.5 m from every pad)
//!    loses its descent corridor as the radius grows. Every radius is a
//!    replayable campaign artifact.

use mls_bench::{percent, persist_report, print_header, HarnessOptions};
use mls_campaign::{CampaignRunner, CampaignSpec};
use mls_core::SystemVariant;
use mls_geom::Vec3;
use mls_mapping::{VoxelGridConfig, VoxelGridMap};
use mls_planning::safety::{descent_availability, SafetyConfig};
use mls_planning::{AStarConfig, AStarPlanner, PathPlanner};
use mls_sim_world::ScenarioFamily;

/// A street canyon: two building faces 6 m apart.
fn street_canyon() -> VoxelGridMap {
    let mut grid = VoxelGridMap::new(VoxelGridConfig {
        resolution: 0.4,
        half_extent_xy: 25.0,
        height: 20.0,
        carve_free_space: false,
        max_range: 100.0,
    })
    .unwrap();
    for x in -50..=50 {
        for z in 0..40 {
            let xf = x as f64 * 0.4;
            let zf = z as f64 * 0.4;
            grid.mark_occupied(Vec3::new(xf, 3.0, zf));
            grid.mark_occupied(Vec3::new(xf, 3.4, zf));
            grid.mark_occupied(Vec3::new(xf, -3.0, zf));
            grid.mark_occupied(Vec3::new(xf, -3.4, zf));
        }
    }
    grid
}

fn main() {
    print_header("Figure 6 — Inflated bounding box sweep next to buildings");
    let grid = street_canyon();
    let pad = Vec3::new(0.0, 0.0, 0.0);

    println!(
        "{:>18} {:>26} {:>24}",
        "inflation radius", "descent availability", "canyon path found (A*)"
    );
    for radius in [0.4, 0.7, 1.0, 1.3, 1.6, 2.0, 2.4, 2.8] {
        let availability = descent_availability(
            &grid,
            pad,
            2.0,
            10.0,
            &SafetyConfig {
                descent_clearance: radius,
                ..SafetyConfig::default()
            },
        );
        let mut planner = AStarPlanner::with_config(AStarConfig {
            inflation_radius: radius,
            max_expansions: 4000,
            ..AStarConfig::default()
        });
        let path = planner.plan(&grid, Vec3::new(-15.0, 0.0, 5.0), Vec3::new(15.0, 0.0, 5.0));
        println!(
            "{:>16.1} m {:>26} {:>24}",
            radius,
            percent(availability),
            match path {
                Ok(outcome) => format!("yes ({:.1} m)", outcome.path.length()),
                Err(_) => "no (canyon swallowed)".to_string(),
            }
        );
    }
    println!();
    println!("Expected shape: availability and canyon traversability both collapse as the");
    println!("inflation radius approaches half the canyon width (3 m), reproducing the");
    println!("paper's 'swallowed' free space next to buildings.");

    println!();
    println!("End-to-end mission sweep (one campaign per inflation radius, MLS-V2,");
    println!("scenario-family axis open × constrained-pad):");
    let mut options = HarnessOptions::from_env();
    // Two maps cycle a built-up style into the suite; the inflation effect
    // needs buildings to swallow.
    options.maps = options.maps.min(2);
    options.scenarios_per_map = options.scenarios_per_map.min(4);
    let runner = CampaignRunner::new(options.threads);
    println!(
        "{:>18} {:>17} {:>9} {:>9} {:>9} {:>9}",
        "inflation radius", "family", "success", "collide", "poor", "failsafe"
    );
    let families = [ScenarioFamily::Open, ScenarioFamily::ConstrainedPad];
    let mut success = vec![Vec::new(); families.len()];
    for radius in [0.4, 1.6, 2.8] {
        let mut spec = CampaignSpec {
            name: format!("fig6-inflation-{radius:.1}"),
            seed: options.seed,
            maps: options.maps,
            scenarios_per_map: options.scenarios_per_map,
            families: families.to_vec(),
            repeats: options.repeats,
            variants: vec![SystemVariant::MlsV2],
            ..CampaignSpec::default()
        };
        // The radius swallows free space on both paths the paper names:
        // planning (obstacle inflation) and the descent-corridor safety
        // check (clearance), exactly like the geometric sweep above.
        spec.landing.inflation_radius = radius;
        spec.landing.safety.descent_clearance = radius;
        spec.landing.mission_timeout = 120.0;
        spec.executor.max_duration = 150.0;
        let report = runner
            .run(&spec)
            .expect("the Fig. 6 campaign specification is valid");
        for (index, family) in families.iter().enumerate() {
            let cell = report
                .cell_in_family(*family, SystemVariant::MlsV2, "desktop-sil", None)
                .expect("the family grid contains every family's baseline cell");
            println!(
                "{:>16.1} m {:>17} {:>9} {:>9} {:>9} {:>9}",
                radius,
                family.label(),
                percent(cell.success_rate),
                percent(cell.collision_rate),
                percent(cell.poor_landing_rate),
                percent(cell.failsafe_rate),
            );
            success[index].push(cell.success_rate);
        }
        persist_report(&report);
    }
    println!();
    let spread = |rates: &[f64]| {
        rates.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - rates.iter().cloned().fold(f64::INFINITY, f64::min)
    };
    let (open_spread, constrained_spread) = (spread(&success[0]), spread(&success[1]));
    println!(
        "Success-vs-radius spread: open {} (expected ~flat), constrained-pad {} (expected a",
        percent(open_spread),
        percent(constrained_spread),
    );
    println!("collapse as the radius swallows the wall-adjacent descent corridor).");
    println!(
        "Fig. 6 end-to-end effect measured in mission outcomes: {}",
        if constrained_spread > open_spread + 0.05 {
            "reproduced"
        } else {
            "check the table above"
        }
    );
    mls_bench::finish_obs();
}
