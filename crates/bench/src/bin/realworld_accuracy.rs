//! §V-C — landing accuracy across SIL, HIL and real-world conditions.
//!
//! The paper reports that the real-world drone "was able to land within 60 cm
//! of the marker on average, higher than the 25 cm observed in SIL and HIL
//! tests, primarily due to GPS inaccuracies and wind during the final
//! descent". This harness flies MLS-V3 over the same scenarios three ways:
//!
//! * **SIL** — desktop compute, scenario weather as generated;
//! * **HIL** — Jetson Nano compute, same weather;
//! * **Real-world** — Jetson Nano with the live camera pipeline, plus field
//!   conditions: degraded GNSS geometry and gusty wind (the §V-C flights).

use mls_bench::{
    generate_scenarios, percent, print_comparison, print_header, run_missions, HarnessOptions,
};
use mls_compute::ComputeProfile;
use mls_core::{ExecutorConfig, LandingConfig, MissionOutcome, SystemVariant};
use mls_geom::Vec3;
use mls_sim_world::Scenario;

/// Applies the real-world field conditions of §V-C to a scenario: gusty wind
/// and a GNSS constellation degraded enough to produce the drift of Fig. 5d.
fn to_field_conditions(scenario: &Scenario) -> Scenario {
    let mut field = scenario.clone();
    field.weather.label = format!("{}-field", field.weather.label);
    field.weather.gps_degradation = field.weather.gps_degradation.max(0.6);
    field.weather.wind_mean = Vec3::new(3.5, 1.5, 0.0);
    field.weather.wind_gust = field.weather.wind_gust.max(2.5);
    field
}

fn summary(outcomes: &[MissionOutcome]) -> (f64, f64, usize) {
    let landed: Vec<f64> = outcomes.iter().filter_map(|o| o.landing_error).collect();
    let mean = if landed.is_empty() {
        f64::NAN
    } else {
        landed.iter().sum::<f64>() / landed.len() as f64
    };
    let success = outcomes
        .iter()
        .filter(|o| o.result == mls_core::MissionResult::Success)
        .count() as f64
        / outcomes.len() as f64;
    (mean, success, landed.len())
}

fn main() {
    print_header("§V-C — Landing accuracy: SIL vs HIL vs real-world conditions");
    let mut options = HarnessOptions::from_env();
    options.maps = options.maps.min(4);
    options.scenarios_per_map = options.scenarios_per_map.min(5);
    let scenarios = generate_scenarios(&options);
    let field_scenarios: Vec<Scenario> = scenarios.iter().map(to_field_conditions).collect();

    let landing = LandingConfig::default();
    let executor = ExecutorConfig::default();

    let cases = [
        ("SIL (desktop)", &scenarios, ComputeProfile::desktop_sil()),
        (
            "HIL (Jetson Nano)",
            &scenarios,
            ComputeProfile::jetson_nano_maxn(),
        ),
        (
            "Real-world (Jetson + field weather)",
            &field_scenarios,
            ComputeProfile::jetson_nano_realworld(),
        ),
    ];

    println!(
        "{:<38} {:>14} {:>12} {:>10} {:>14}",
        "Campaign", "mean error", "landed runs", "success", "mean GPS drift"
    );
    let mut means = Vec::new();
    for (label, scenario_set, profile) in cases {
        let outcomes = run_missions(
            scenario_set,
            SystemVariant::MlsV3,
            &profile,
            &landing,
            &executor,
            &options,
        );
        let (mean_error, success, landed) = summary(&outcomes);
        let drift = outcomes.iter().map(|o| o.gps_drift).sum::<f64>() / outcomes.len() as f64;
        println!(
            "{:<38} {:>11.2} m {:>12} {:>10} {:>11.2} m",
            label,
            mean_error,
            landed,
            percent(success),
            drift
        );
        means.push(mean_error);
    }

    println!();
    print_comparison(
        "SIL/HIL mean landing deviation",
        "~0.25 m",
        &format!("{:.2} m", means[0]),
    );
    print_comparison(
        "Real-world mean landing deviation",
        "~0.60 m",
        &format!("{:.2} m", means[2]),
    );
    println!();
    println!(
        "Expected shape: real-world deviation exceeds SIL/HIL deviation. Measured: {}",
        if means[2] > means[0] {
            "reproduced"
        } else {
            "check the table above"
        }
    );
}
