//! §V-C — landing accuracy across SIL, HIL and real-world conditions.
//!
//! The paper reports that the real-world drone "was able to land within 60 cm
//! of the marker on average, higher than the 25 cm observed in SIL and HIL
//! tests, primarily due to GPS inaccuracies and wind during the final
//! descent". This harness flies MLS-V3 over the same scenarios three ways,
//! each as a [`CampaignSpec`]-backed campaign with a persisted, replayable
//! report:
//!
//! * **SIL** — desktop compute, scenario weather as generated;
//! * **HIL** — Jetson Nano compute, same weather (both via
//!   [`CampaignRunner::run`], so both regenerate from the spec alone);
//! * **Real-world** — Jetson Nano with the live camera pipeline, plus field
//!   conditions: degraded GNSS geometry and gusty wind (the §V-C flights).
//!   The field suite is a documented transform of the generated suite, flown
//!   through [`CampaignRunner::run_with_scenarios`].

use mls_bench::{percent, persist_report, print_comparison, print_header, HarnessOptions};
use mls_campaign::{CampaignReport, CampaignRunner, CampaignSpec};
use mls_compute::ComputeProfile;
use mls_core::SystemVariant;
use mls_geom::Vec3;
use mls_sim_world::Scenario;

/// Applies the real-world field conditions of §V-C to a scenario: gusty wind
/// and a GNSS constellation degraded enough to produce the drift of Fig. 5d.
fn to_field_conditions(scenario: &Scenario) -> Scenario {
    let mut field = scenario.clone();
    field.weather.label = format!("{}-field", field.weather.label);
    field.weather.gps_degradation = field.weather.gps_degradation.max(0.6);
    field.weather.wind_mean = Vec3::new(3.5, 1.5, 0.0);
    field.weather.wind_gust = field.weather.wind_gust.max(2.5);
    field
}

fn main() {
    print_header("§V-C — Landing accuracy: SIL vs HIL vs real-world conditions");
    let mut options = HarnessOptions::from_env();
    options.maps = options.maps.min(4);
    options.scenarios_per_map = options.scenarios_per_map.min(5);
    let runner = CampaignRunner::new(options.threads);

    let spec_for = |name: &str, profile: ComputeProfile| CampaignSpec {
        name: name.to_string(),
        seed: options.seed,
        maps: options.maps,
        scenarios_per_map: options.scenarios_per_map,
        repeats: options.repeats,
        variants: vec![SystemVariant::MlsV3],
        profiles: vec![profile],
        ..CampaignSpec::default()
    };

    let sil_spec = spec_for("realworld-accuracy-sil", ComputeProfile::desktop_sil());
    let hil_spec = spec_for("realworld-accuracy-hil", ComputeProfile::jetson_nano_maxn());
    let field_spec = spec_for(
        "realworld-accuracy-field",
        ComputeProfile::jetson_nano_realworld(),
    );
    // The field campaign flies the same suite under §V-C conditions; the
    // transform is deterministic, so (spec, transform) regenerates it.
    let scenarios = runner
        .generate_scenarios(&field_spec)
        .expect("the §V-C campaign specification is valid");
    let field_scenarios: Vec<Scenario> = scenarios.iter().map(to_field_conditions).collect();

    let reports: Vec<(&str, CampaignReport)> = vec![
        (
            "SIL (desktop)",
            runner.run(&sil_spec).expect("the SIL campaign runs"),
        ),
        (
            "HIL (Jetson Nano)",
            runner.run(&hil_spec).expect("the HIL campaign runs"),
        ),
        (
            "Real-world (Jetson + field weather)",
            runner
                .run_with_scenarios(&field_spec, &field_scenarios)
                .expect("the field campaign runs"),
        ),
    ];

    println!(
        "{:<38} {:>14} {:>12} {:>10} {:>14}",
        "Campaign", "mean error", "landed runs", "success", "p95 GPS drift"
    );
    let mut means = Vec::new();
    for (label, report) in &reports {
        let cell = &report.cells[0];
        println!(
            "{:<38} {:>11.2} m {:>12} {:>10} {:>11.2} m",
            label,
            cell.landing_error.mean.unwrap_or(f64::NAN),
            cell.landing_error.count,
            percent(cell.success_rate),
            cell.gps_drift.p95.unwrap_or(f64::NAN),
        );
        means.push(cell.landing_error.mean.unwrap_or(f64::NAN));
        persist_report(report);
    }

    println!();
    print_comparison(
        "SIL/HIL mean landing deviation",
        "~0.25 m",
        &format!("{:.2} m", means[0]),
    );
    print_comparison(
        "Real-world mean landing deviation",
        "~0.60 m",
        &format!("{:.2} m", means[2]),
    );
    println!();
    println!(
        "Expected shape: real-world deviation exceeds SIL/HIL deviation. Measured: {}",
        if means[2] > means[0] {
            "reproduced"
        } else {
            "check the table above"
        }
    );
    mls_bench::finish_obs();
}
