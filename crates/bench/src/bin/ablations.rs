//! Ablation studies of the design choices discussed in the paper.
//!
//! These go beyond the published tables: they quantify the §III-D
//! safety-vs-availability trade-off (validation strictness, clearances), the
//! mapping-representation choice (dense grid vs octree memory), the RRT*
//! iteration budget, the flight-controller upgrade (Pixhawk 2.4.8 → Cuav
//! X7+), and the RTK mitigation §V-C proposes for GNSS drift.
//!
//! The mission-level ablations (1 and 5) run on the `mls-campaign` engine —
//! one [`CampaignSpec`] per configuration row, each persisted as a
//! replayable report. Ablations 2–4 are geometric / sensor micro-benchmarks
//! with no missions to campaign over.

use mls_bench::{percent, persist_report, print_header, HarnessOptions};
use mls_campaign::{CampaignRunner, CampaignSpec};
use mls_compute::ComputeProfile;
use mls_core::{LandingConfig, SystemVariant};
use mls_geom::Vec3;
use mls_mapping::{OccupancyQuery, OctreeConfig, OctreeMap, VoxelGridConfig, VoxelGridMap};
use mls_planning::{PathPlanner, RrtStarConfig, RrtStarPlanner};
use mls_sim_uav::{GpsConfig, GpsSensor, ImuConfig, Uav, UavConfig};
use mls_sim_world::Weather;
use mls_vision::MarkerDictionary;

fn small_options() -> HarnessOptions {
    let mut options = HarnessOptions::from_env();
    options.maps = options.maps.min(3);
    options.scenarios_per_map = options.scenarios_per_map.min(4);
    options.repeats = 1;
    options
}

/// One MLS-V3 campaign over the small suite with an explicit landing
/// configuration, on the given compute profile.
fn landing_config_campaign(
    name: &str,
    landing: LandingConfig,
    profile: ComputeProfile,
    options: &HarnessOptions,
) -> mls_campaign::CampaignReport {
    let spec = CampaignSpec {
        name: name.to_string(),
        seed: options.seed,
        maps: options.maps,
        scenarios_per_map: options.scenarios_per_map,
        repeats: options.repeats,
        variants: vec![SystemVariant::MlsV3],
        profiles: vec![profile],
        landing,
        ..CampaignSpec::default()
    };
    CampaignRunner::new(options.threads)
        .run(&spec)
        .expect("the ablation campaign specification is valid")
}

/// Safety vs availability: sweep the validation strictness and clearances.
fn ablation_safety_availability() {
    print_header("Ablation 1 — Safety vs availability (validation strictness, clearances)");
    let options = small_options();

    println!(
        "{:<24} {:>10} {:>12} {:>14} {:>10}",
        "Configuration", "success", "collision", "poor landing", "failsafe"
    );
    for (label, config) in [
        ("availability-biased", LandingConfig::availability_biased()),
        ("default", LandingConfig::default()),
        ("safety-biased", LandingConfig::safety_biased()),
    ] {
        let report = landing_config_campaign(
            &format!("ablation1-{label}"),
            config,
            ComputeProfile::desktop_sil(),
            &options,
        );
        let cell = &report.cells[0];
        println!(
            "{:<24} {:>10} {:>12} {:>14} {:>10}",
            label,
            percent(cell.success_rate),
            percent(cell.collision_rate),
            percent(cell.poor_landing_rate),
            percent(cell.failsafe_rate),
        );
        persist_report(&report);
    }
    println!("Expected shape: stricter settings abort more (lower availability) but collide less.");
}

/// Grid vs octree memory at matched resolution over the same observations.
fn ablation_map_memory() {
    print_header("Ablation 2 — Occupancy-map memory: dense grid vs octree");
    println!(
        "{:>12} {:>18} {:>18} {:>10}",
        "resolution", "dense grid", "octree", "ratio"
    );
    for resolution in [0.8, 0.4, 0.2] {
        let mut grid = VoxelGridMap::new(VoxelGridConfig {
            resolution,
            half_extent_xy: 60.0,
            height: 30.0,
            carve_free_space: true,
            max_range: 18.0,
        })
        .unwrap();
        let mut tree = OctreeMap::new(OctreeConfig {
            resolution,
            half_extent: 64.0,
            ..OctreeConfig::default()
        })
        .unwrap();
        // A typical observation pattern: a few buildings seen from a transit.
        let origin = Vec3::new(0.0, 0.0, 8.0);
        let mut points = Vec::new();
        for i in 0..400 {
            let a = i as f64 * 0.02;
            points.push(Vec3::new(
                15.0 + (a * 3.0).sin() * 4.0,
                a * 10.0 - 4.0,
                1.0 + (i % 12) as f64 * 0.5,
            ));
        }
        grid.insert_cloud(origin, &points);
        tree.insert_cloud(origin, &points);
        println!(
            "{:>10.1} m {:>14} KiB {:>14} KiB {:>9.1}x",
            resolution,
            grid.memory_bytes() / 1024,
            tree.memory_bytes() / 1024,
            grid.memory_bytes() as f64 / tree.memory_bytes().max(1) as f64
        );
    }
    println!("Expected shape: the dense grid grows cubically with resolution; the octree grows");
    println!("with observed structure only (the paper's motivation for OctoMap).");
}

/// RRT* iteration budget: path quality and failure rate against a cluttered map.
fn ablation_rrt_budget() {
    print_header("Ablation 3 — RRT* iteration budget");
    let mut tree = OctreeMap::new(OctreeConfig {
        resolution: 0.4,
        half_extent: 64.0,
        ..OctreeConfig::default()
    })
    .unwrap();
    // Two staggered walls forming a chicane.
    for y in -20..=6 {
        for z in 0..30 {
            tree.mark_occupied(Vec3::new(10.0, y as f64 * 0.4, z as f64 * 0.4));
        }
    }
    for y in -6..=20 {
        for z in 0..30 {
            tree.mark_occupied(Vec3::new(18.0, y as f64 * 0.4, z as f64 * 0.4));
        }
    }
    let start = Vec3::new(0.0, 0.0, 5.0);
    let goal = Vec3::new(28.0, 0.0, 5.0);
    println!(
        "{:>12} {:>10} {:>14} {:>18}",
        "iterations", "found", "path length", "sharpest corner"
    );
    for budget in [200usize, 600, 1500, 4000] {
        let mut planner = RrtStarPlanner::with_config(RrtStarConfig {
            max_iterations: budget,
            seed: 9,
            ..RrtStarConfig::default()
        });
        match planner.plan(&tree, start, goal) {
            Ok(outcome) => println!(
                "{:>12} {:>10} {:>12.1} m {:>17.0}°",
                budget,
                "yes",
                outcome.path.length(),
                outcome.path.sharpest_corner().to_degrees()
            ),
            Err(_) => println!("{:>12} {:>10} {:>14} {:>18}", budget, "no", "-", "-"),
        }
    }
    println!("Expected shape: larger budgets find the chicane more reliably and produce");
    println!("shorter, smoother paths (rewiring + shortcutting get more samples to work with).");
}

/// Flight-controller upgrade and RTK mitigation: estimation quality.
fn ablation_sensors() {
    print_header("Ablation 4 — Sensor upgrades: Pixhawk 2.4.8 vs Cuav X7+, RTK GNSS");
    let world = mls_sim_world::WorldMap::empty("ablation", mls_sim_world::MapStyle::Rural, 100.0);
    println!(
        "{:<44} {:>22}",
        "Configuration", "EKF error after 60 s hover"
    );
    for (label, imu, rtk) in [
        (
            "Pixhawk 2.4.8 IMU, standard GNSS (rain)",
            ImuConfig::pixhawk_2_4_8(),
            false,
        ),
        (
            "Cuav X7+ IMU, standard GNSS (rain)",
            ImuConfig::cuav_x7_pro(),
            false,
        ),
        (
            "Cuav X7+ IMU, RTK GNSS (rain)",
            ImuConfig::cuav_x7_pro(),
            true,
        ),
    ] {
        let mut config = UavConfig {
            imu,
            ..UavConfig::default()
        };
        if rtk {
            config.gps_override = Some(GpsConfig::from_weather(&Weather::rain()).with_rtk());
        }
        let mut uav = Uav::new(
            config,
            Weather::rain(),
            Vec3::ZERO,
            MarkerDictionary::standard(),
            17,
        );
        uav.autopilot_mut().arm_and_takeoff(10.0);
        for _ in 0..(60.0 / uav.physics_dt()) as usize {
            uav.step(&world);
        }
        println!("{:<44} {:>19.2} m", label, uav.estimation_error());
    }
    // Drift magnitude alone, for §V-C's RTK proposal.
    let mut state = mls_sim_uav::VehicleState::grounded(Vec3::new(0.0, 0.0, 10.0));
    state.landed = false;
    let mut standard = GpsSensor::from_weather(&Weather::rain(), 3);
    let mut rtk = GpsSensor::new(GpsConfig::from_weather(&Weather::rain()).with_rtk(), 3);
    for _ in 0..3000 {
        standard.sample(&state, 0.2);
        rtk.sample(&state, 0.2);
    }
    println!(
        "10-minute GNSS drift in rain: standard {:.2} m vs RTK {:.2} m",
        standard.drift().norm(),
        rtk.drift().norm()
    );
}

/// Detection-rate ablation: how often the marker camera must run.
fn ablation_detection_rate() {
    print_header("Ablation 5 — Detection rate vs landing outcome");
    let options = small_options();
    println!(
        "{:>16} {:>10} {:>12} {:>12}",
        "detection rate", "success", "collision", "mean CPU"
    );
    for rate in [0.5, 1.0, 2.0, 4.0] {
        let landing = LandingConfig {
            detection_rate_hz: rate,
            ..LandingConfig::default()
        };
        let report = landing_config_campaign(
            &format!("ablation5-detection-{rate:.1}hz"),
            landing,
            ComputeProfile::jetson_nano_maxn(),
            &options,
        );
        let cell = &report.cells[0];
        println!(
            "{:>13.1} Hz {:>10} {:>12} {:>11.0}%",
            rate,
            percent(cell.success_rate),
            percent(cell.collision_rate),
            cell.mean_cpu.mean.unwrap_or(f64::NAN) * 100.0
        );
        persist_report(&report);
    }
    println!("Expected shape: very low rates hurt validation/landing; higher rates cost CPU on the Jetson.");
}

fn main() {
    ablation_safety_availability();
    ablation_map_memory();
    ablation_rrt_budget();
    ablation_sensors();
    ablation_detection_rate();
    mls_bench::finish_obs();
}
