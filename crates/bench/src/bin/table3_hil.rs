//! Table III — Hardware-in-the-Loop results for MLS-V3.
//!
//! The paper re-runs the benchmark with the landing-system modules on a
//! Jetson Nano (4 GB, MAXN, TensorRT detector) and observes a drop in the
//! success rate driven by collisions: "trajectories failed to create in time
//! when the drone was heading towards a newly discovered obstacle". The HIL
//! row of the paper is 72.00% / 14.00% / 6.00% (the remaining 8% of runs end
//! in other aborts).
//!
//! This harness flies the same benchmark as Table I but on the
//! `jetson_nano_maxn` compute profile, whose contention model inflates
//! planning latency, and compares the resulting rates plus resource usage.

use mls_bench::{generate_scenarios, percent, print_comparison, print_header, run_and_summarise, HarnessOptions};
use mls_compute::ComputeProfile;
use mls_core::{ExecutorConfig, LandingConfig, SystemVariant};

fn main() {
    let options = HarnessOptions::from_env();
    print_header("Table III — Experiment results of HIL testing (MLS-V3 on Jetson Nano)");
    println!(
        "benchmark: {} missions on profile `jetson-nano-maxn`, {} threads",
        options.missions_per_variant(),
        options.threads
    );

    let scenarios = generate_scenarios(&options);
    let landing = LandingConfig::default();
    let executor = ExecutorConfig::default();

    // Reference: the same system on the SIL desktop profile.
    let (sil, _) = run_and_summarise(
        &scenarios,
        SystemVariant::MlsV3,
        &ComputeProfile::desktop_sil(),
        &landing,
        &executor,
        &options,
    );
    let (hil, hil_outcomes) = run_and_summarise(
        &scenarios,
        SystemVariant::MlsV3,
        &ComputeProfile::jetson_nano_maxn(),
        &landing,
        &executor,
        &options,
    );

    println!();
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>10} {:>12}",
        "Profile", "Success", "Collision", "PoorLanding", "CPU", "Peak mem"
    );
    for (label, summary) in [("SIL desktop", &sil), ("HIL Jetson", &hil)] {
        println!(
            "{:<14} {:>12} {:>12} {:>12} {:>9.0}% {:>9.0} MiB",
            label,
            percent(summary.success_rate),
            percent(summary.collision_rate),
            percent(summary.poor_landing_rate),
            summary.mean_cpu * 100.0,
            summary.peak_memory_mb,
        );
    }

    println!();
    print_comparison("MLS-V3 HIL successful landing rate", "72.00%", &percent(hil.success_rate));
    print_comparison("MLS-V3 HIL failure rate due to collision", "14.00%", &percent(hil.collision_rate));
    print_comparison("MLS-V3 HIL failure rate due to poor landing", "6.00%", &percent(hil.poor_landing_rate));
    print_comparison("HIL memory consumption", "~2.2 GB of 2.9 GB", &format!("{:.1} GB", hil.peak_memory_mb / 1024.0));

    let worst_latency = hil_outcomes
        .iter()
        .map(|o| o.worst_planning_latency)
        .fold(0.0f64, f64::max);
    println!();
    println!("Shape checks:");
    println!(
        "  HIL success rate below SIL:          {} ({} vs {})",
        hil.success_rate < sil.success_rate,
        percent(hil.success_rate),
        percent(sil.success_rate)
    );
    println!(
        "  HIL collision rate above SIL:        {} ({} vs {})",
        hil.collision_rate > sil.collision_rate,
        percent(hil.collision_rate),
        percent(sil.collision_rate)
    );
    println!(
        "  planning latency inflated on Jetson: {} (worst {:.0} ms)",
        worst_latency > 0.05,
        worst_latency * 1000.0
    );
}
