//! Table III — Hardware-in-the-Loop results for MLS-V3.
//!
//! The paper re-runs the benchmark with the landing-system modules on a
//! Jetson Nano (4 GB, MAXN, TensorRT detector) and observes a drop in the
//! success rate driven by collisions: "trajectories failed to create in time
//! when the drone was heading towards a newly discovered obstacle". The HIL
//! row of the paper is 72.00% / 14.00% / 6.00% (the remaining 8% of runs end
//! in other aborts).
//!
//! Runs on the `mls-campaign` engine as a two-cell campaign — MLS-V3 on the
//! SIL desktop and on `jetson_nano_maxn`, whose contention model inflates
//! planning latency — and compares the resulting rates plus resource usage.

use mls_bench::{percent, persist_report, print_comparison, print_header, HarnessOptions};
use mls_campaign::{CampaignRunner, CampaignSpec};
use mls_compute::ComputeProfile;
use mls_core::SystemVariant;

fn main() {
    let options = HarnessOptions::from_env();
    print_header("Table III — Experiment results of HIL testing (MLS-V3 on Jetson Nano)");
    println!(
        "benchmark: {} missions on profile `jetson-nano-maxn`, {} threads",
        options.missions_per_variant(),
        options.threads
    );

    let spec = CampaignSpec {
        name: "table3-hil".to_string(),
        seed: options.seed,
        maps: options.maps,
        scenarios_per_map: options.scenarios_per_map,
        repeats: options.repeats,
        variants: vec![SystemVariant::MlsV3],
        profiles: vec![
            ComputeProfile::desktop_sil(),
            ComputeProfile::jetson_nano_maxn(),
        ],
        ..CampaignSpec::default()
    };
    let report = CampaignRunner::new(options.threads)
        .run(&spec)
        .expect("the Table III campaign specification is valid");
    persist_report(&report);
    let sil = report
        .cell(SystemVariant::MlsV3, "desktop-sil", None)
        .expect("the grid contains the SIL cell");
    let hil = report
        .cell(SystemVariant::MlsV3, "jetson-nano-maxn", None)
        .expect("the grid contains the HIL cell");

    println!();
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>10} {:>12}",
        "Profile", "Success", "Collision", "PoorLanding", "CPU", "Peak mem"
    );
    for (label, cell) in [("SIL desktop", sil), ("HIL Jetson", hil)] {
        println!(
            "{:<14} {:>12} {:>12} {:>12} {:>9.0}% {:>9.0} MiB",
            label,
            percent(cell.success_rate),
            percent(cell.collision_rate),
            percent(cell.poor_landing_rate),
            cell.mean_cpu.mean.unwrap_or(0.0) * 100.0,
            cell.peak_memory_mb.max.unwrap_or(0.0),
        );
    }

    println!();
    print_comparison(
        "MLS-V3 HIL successful landing rate",
        "72.00%",
        &percent(hil.success_rate),
    );
    print_comparison(
        "MLS-V3 HIL failure rate due to collision",
        "14.00%",
        &percent(hil.collision_rate),
    );
    print_comparison(
        "MLS-V3 HIL failure rate due to poor landing",
        "6.00%",
        &percent(hil.poor_landing_rate),
    );
    print_comparison(
        "HIL memory consumption",
        "~2.2 GB of 2.9 GB",
        &format!("{:.1} GB", hil.peak_memory_mb.max.unwrap_or(0.0) / 1024.0),
    );

    let worst_latency = hil.worst_planning_latency.max.unwrap_or(0.0);
    println!();
    println!("Shape checks:");
    println!(
        "  HIL success rate below SIL:          {} ({} vs {})",
        hil.success_rate < sil.success_rate,
        percent(hil.success_rate),
        percent(sil.success_rate)
    );
    println!(
        "  HIL collision rate above SIL:        {} ({} vs {})",
        hil.collision_rate > sil.collision_rate,
        percent(hil.collision_rate),
        percent(sil.collision_rate)
    );
    println!(
        "  planning latency inflated on Jetson: {} (worst {:.0} ms)",
        worst_latency > 0.05,
        worst_latency * 1000.0
    );
    mls_bench::finish_obs();
}
