//! Figure 5 — the four failure-mode case studies the paper illustrates,
//! rebuilt as replayable campaign artifacts.
//!
//! (a) MLS-V2 path-planning failure in front of a large obstacle (bounded A*
//!     search-pool exhaustion, straight-line fallback).
//! (b) Collision while manoeuvring close to an obstacle (trajectory-
//!     following lag overshoots into the inflated boundary).
//! (c) Erroneous point clouds when the pose estimate drifts (points painted
//!     in the wrong place, dropped returns).
//! (d) GPS drift during poor weather despite healthy-looking DOP values.
//!
//! Each case is a small fault-injection campaign flown with the flight
//! recorder on: the runner persists a trace for every failed mission, the
//! triage classifier assigns it a Fig. 5 class, and the first trace matching
//! the case's class becomes the exhibit — which is then *replayed* to prove
//! the artifact regenerates byte-identically from (seed, spec). A failure
//! narrative is no longer a hand-rolled loop; it is a file you can re-run.

use std::path::Path;
use std::process::ExitCode;

use mls_bench::{persist_report, print_header, HarnessOptions};
use mls_campaign::{CampaignRunner, CampaignSpec, FaultKind, FaultPlan, TracePolicy};
use mls_core::SystemVariant;
use mls_trace::{triage, Fig5Class, Trace};

/// One Fig. 5 panel: the campaign that provokes it and the class its
/// exhibit trace must triage to.
struct CaseStudy {
    class: Fig5Class,
    title: &'static str,
    narrative: &'static str,
    spec: CampaignSpec,
}

/// Common sizing for every case campaign: small scenario suites, bounded
/// mission durations, traces kept for failures only.
fn case_spec(
    name: &str,
    maps: usize,
    variant: SystemVariant,
    fault: Option<FaultPlan>,
) -> CampaignSpec {
    let mut spec = CampaignSpec {
        name: name.to_string(),
        seed: 2025,
        maps,
        scenarios_per_map: 4,
        repeats: 1,
        variants: vec![variant],
        baseline: fault.is_none(),
        faults: fault.into_iter().collect(),
        capture: TracePolicy::FailuresOnly,
        ..CampaignSpec::default()
    };
    spec.landing.mission_timeout = 150.0;
    spec.executor.max_duration = 180.0;
    spec
}

fn cases() -> Vec<CaseStudy> {
    // (a) Choke the bounded A*: a fat inflation radius turns urban canyons
    // into walls the 6000-expansion pool cannot get around, and MLS-V2
    // falls back to unchecked straight lines.
    let mut planner_spec = case_spec("fig5a-planner", 2, SystemVariant::MlsV2, None);
    planner_spec.landing.inflation_radius = 1.6;

    // (b) Trajectory-following lag: MLS-V1 flies fast, unchecked straight
    // lines; every plan is "healthy", and the airframe ploughs into
    // obstacles the trajectory never avoided. Three maps cycle the styles
    // so the sweep includes a built-up urban map.
    let mut lag_spec = case_spec("fig5b-lag", 3, SystemVariant::MlsV1, None);
    lag_spec.landing.trajectory.cruise_speed = 6.0;

    // (c) Mis-painted point clouds: the depth-corruption fault displaces
    // every return by a pose-drift offset and drops a fraction, so the
    // MLS-V3 octree fills with phantom obstacles in the wrong place.
    let cloud_spec = case_spec(
        "fig5c-clouds",
        3,
        SystemVariant::MlsV3,
        Some(FaultPlan::new(FaultKind::DepthCorruption, 1.0)),
    );

    // (d) Silent GPS drift: an 8 m bias step that no DOP value reveals;
    // mapless MLS-V1 lands confidently in the wrong place.
    let gps_spec = case_spec(
        "fig5d-gps",
        1,
        SystemVariant::MlsV1,
        Some(FaultPlan::new(FaultKind::GpsBias, 0.8)),
    );

    vec![
        CaseStudy {
            class: Fig5Class::PlannerExhaustion,
            title: "(a) Path-planning failure of MLS-V2 due to a large obstacle",
            narrative: "bounded A* exhausts its search pool; the V2 fallback flies an \
                        unchecked straight line",
            spec: planner_spec,
        },
        CaseStudy {
            class: Fig5Class::TrajectoryLagCollision,
            title: "(b) Collision while manoeuvring close to an obstacle",
            narrative: "every planning query healthy, yet the airframe lags the commanded \
                        trajectory into an obstacle",
            spec: lag_spec,
        },
        CaseStudy {
            class: Fig5Class::MapCorruption,
            title: "(c) Erroneous point clouds under pose-estimate drift",
            narrative: "depth returns are painted 3 m off and partially dropped; the map \
                        no longer matches the world",
            spec: cloud_spec,
        },
        CaseStudy {
            class: Fig5Class::GpsDrift,
            title: "(d) GPS drift during poor weather",
            narrative: "a GNSS bias step the DOP values do not reveal steers the landing \
                        metres off the marker",
            spec: gps_spec,
        },
    ]
}

/// Runs one case end to end; returns `true` when an exhibit trace with the
/// expected class was produced and replayed byte-identically.
fn run_case(case: &CaseStudy, threads: usize) -> bool {
    println!("\n{}", case.title);
    println!("  {}", case.narrative);

    let runner = CampaignRunner::new(threads);
    let report = match runner.run(&case.spec) {
        Ok(report) => report,
        Err(err) => {
            println!("  campaign failed: {err}");
            return false;
        }
    };
    persist_report(&report);
    let failures = report.traces.len();
    println!(
        "  campaign: {} missions, {} failure traces captured under {}",
        report.missions,
        failures,
        runner.trace_dir(&case.spec).display()
    );

    let Some(link) = report
        .traces
        .iter()
        .find(|link| link.triage.as_deref() == Some(case.class.label()))
    else {
        println!(
            "  NO trace triaged as {} (saw: {:?})",
            case.class.label(),
            report
                .traces
                .iter()
                .map(|t| t.triage.clone().unwrap_or_else(|| "unclassified".into()))
                .collect::<Vec<_>>()
        );
        return false;
    };

    let trace = match Trace::read_from(Path::new(&link.path)) {
        Ok(trace) => trace,
        Err(err) => {
            println!("  exhibit unreadable: {err}");
            return false;
        }
    };
    let verdict = triage(&trace);
    println!(
        "  exhibit: {} (cell {}, scenario {}, seed {})",
        link.path, link.cell_index, link.scenario_id, link.seed
    );
    println!(
        "  triage → {} [Fig. 5{}], {} events",
        case.class.label(),
        case.class.panel(),
        trace.events.len()
    );
    for line in &verdict.evidence {
        println!("    evidence: {line}");
    }

    // Replay the exhibit: re-execute its (seed, spec) and demand a
    // byte-identical event stream.
    let scenarios = match runner.generate_scenarios(&case.spec) {
        Ok(scenarios) => scenarios,
        Err(err) => {
            println!("  scenario regeneration failed: {err}");
            return false;
        }
    };
    match runner.replay(&case.spec, &scenarios, &trace) {
        Ok(replay_verdict) if replay_verdict.is_identical() => {
            println!("  replay: {replay_verdict}");
            true
        }
        Ok(replay_verdict) => {
            println!("  replay DIVERGED: {replay_verdict}");
            false
        }
        Err(err) => {
            println!("  replay failed: {err}");
            false
        }
    }
}

fn main() -> ExitCode {
    print_header("Figure 5 — Failure-mode case studies (replayable campaign artifacts)");
    let threads = HarnessOptions::from_env().threads;

    let mut all_good = true;
    for case in cases() {
        all_good &= run_case(&case, threads);
    }

    mls_bench::finish_obs();

    println!();
    if all_good {
        println!("All four Fig. 5 classes captured, triaged and replayed byte-identically.");
        ExitCode::SUCCESS
    } else {
        println!("At least one case study failed to capture, triage or replay.");
        ExitCode::FAILURE
    }
}
