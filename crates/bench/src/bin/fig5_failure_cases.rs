//! Figure 5 — the four failure-mode case studies the paper illustrates.
//!
//! (a) MLS-V2 path-planning failure in front of a large building (bounded A*
//!     search-pool exhaustion, straight-line fallback).
//! (b) Collision while turning close to an obstacle (trajectory-following lag
//!     at a sharp corner overshoots into the inflated boundary).
//! (c) Erroneous point clouds when the pose estimate drifts (points painted
//!     in the wrong place).
//! (d) GPS drift during poor weather despite healthy-looking DOP values.

use mls_bench::print_header;
use mls_geom::{Pose, Vec3};
use mls_mapping::{
    CellState, OccupancyQuery, OctreeConfig, OctreeMap, VoxelGridConfig, VoxelGridMap,
};
use mls_planning::{
    AStarConfig, AStarPlanner, Path, PathPlanner, RrtStarPlanner, Trajectory, TrajectoryConfig,
};
use mls_sim_uav::{
    AirframeConfig, ControlCommand, DepthCamera, DepthCameraConfig, GpsSensor, QuadrotorDynamics,
    VehicleState,
};
use mls_sim_world::{MapStyle, Obstacle, Weather, WorldMap};

/// Case (a): a building wide and tall enough to exhaust the bounded search
/// pool of the V2 planner, while the V3 planner still finds a route.
fn case_a_planning_failure() {
    println!("\n(a) Path-planning failure of MLS-V2 due to a large obstacle");
    let mut grid = VoxelGridMap::new(VoxelGridConfig {
        resolution: 0.4,
        half_extent_xy: 25.0,
        height: 30.0,
        carve_free_space: false,
        max_range: 100.0,
    })
    .unwrap();
    let mut octree = OctreeMap::new(OctreeConfig {
        resolution: 0.4,
        half_extent: 64.0,
        ..OctreeConfig::default()
    })
    .unwrap();
    // A 40 m wide, 26 m tall building face 10 m ahead.
    let mut y = -20.0;
    while y <= 20.0 {
        let mut z = 0.2;
        while z <= 26.0 {
            grid.mark_occupied(Vec3::new(10.0, y, z));
            grid.mark_occupied(Vec3::new(10.4, y, z));
            octree.mark_occupied(Vec3::new(10.0, y, z));
            octree.mark_occupied(Vec3::new(10.4, y, z));
            z += 0.4;
        }
        y += 0.4;
    }
    let start = Vec3::new(0.0, 0.0, 6.0);
    let goal = Vec3::new(20.0, 0.0, 6.0);

    let mut v2 = AStarPlanner::with_config(AStarConfig {
        max_expansions: 2_000,
        ..AStarConfig::default()
    });
    match v2.plan(&grid, start, goal) {
        Ok(outcome) => println!(
            "  bounded A*: unexpectedly found a path of {:.1} m",
            outcome.path.length()
        ),
        Err(err) => println!("  bounded A* (search pool 2000): FAILED — {err}"),
    }
    println!(
        "  MLS-V2 behaviour on failure: fall back to the straight line (crosses the building)."
    );

    let mut v3 = RrtStarPlanner::new();
    match v3.plan(&octree, start, goal) {
        Ok(outcome) => println!(
            "  RRT* on the global octree: path of {:.1} m with {} waypoints (sharpest corner {:.0}°)",
            outcome.path.length(),
            outcome.path.len(),
            outcome.path.sharpest_corner().to_degrees()
        ),
        Err(err) => println!("  RRT*: failed — {err}"),
    }
}

/// Case (b): follow a trajectory with a sharp corner next to an obstacle and
/// measure how far the airframe overshoots the corner.
fn case_b_turning_collision() {
    println!("\n(b) Collision during a turning action close to an obstacle");
    let corner_path = Path::new(vec![
        Vec3::new(0.0, 0.0, 6.0),
        Vec3::new(14.0, 0.0, 6.0),
        Vec3::new(14.0, 12.0, 6.0),
    ]);
    println!(
        "  commanded path: L-shaped, corner angle {:.0}°",
        corner_path.sharpest_corner().to_degrees()
    );
    for (label, cruise) in [
        ("cautious (2 m/s)", 2.0),
        ("nominal (4 m/s)", 4.0),
        ("aggressive (6 m/s)", 6.0),
    ] {
        let trajectory = Trajectory::from_path(
            &corner_path,
            TrajectoryConfig {
                cruise_speed: cruise,
                corner_speed: cruise.min(1.2),
                ..TrajectoryConfig::default()
            },
        )
        .unwrap();
        let mut dynamics =
            QuadrotorDynamics::new(AirframeConfig::default(), Vec3::new(0.0, 0.0, 6.0));
        let mut state = VehicleState::grounded(Vec3::new(0.0, 0.0, 6.0));
        state.landed = false;
        dynamics.set_state(state);
        let dt = 0.02;
        let mut t = 0.0;
        let mut worst_overshoot = 0.0f64;
        while t < trajectory.duration() + 3.0 {
            let sample = trajectory.sample(t);
            // Simple position P-controller, as the autopilot cascade would do.
            let error = sample.position - dynamics.state().position;
            let command = ControlCommand {
                acceleration: error * 1.2 + (sample.velocity - dynamics.state().velocity) * 1.6,
                yaw: 0.0,
            };
            dynamics.step(&command, Vec3::ZERO, 0.0, dt);
            // Overshoot: how far past the corner line (x = 14) the vehicle gets.
            worst_overshoot = worst_overshoot.max(dynamics.state().position.x - 14.0);
            t += dt;
        }
        println!(
            "  {label:<20} corner overshoot {:.2} m {}",
            worst_overshoot,
            if worst_overshoot > 0.9 {
                "→ inside a 0.9 m inflated obstacle boundary (collision)"
            } else {
                "→ stays clear of the inflated boundary"
            }
        );
    }
}

/// Case (c): the depth camera reconstructs returns through a drifted pose
/// estimate, painting the building in the wrong place.
fn case_c_erroneous_pointclouds() {
    println!("\n(c) Erroneous point clouds under pose-estimate drift");
    let world = WorldMap::empty("case-c", MapStyle::Urban, 80.0).with_obstacle(Obstacle::building(
        Vec3::new(12.0, 0.0, 0.0),
        8.0,
        8.0,
        12.0,
    ));
    let true_pose = Pose::from_position_yaw(Vec3::new(0.0, 0.0, 6.0), 0.0);
    for drift in [0.0, 1.0, 2.5, 4.0] {
        let est_pose = Pose::from_position_yaw(Vec3::new(0.0, drift, 6.0), 0.0);
        let mut camera = DepthCamera::new(DepthCameraConfig::default(), 9);
        let cloud = camera.capture(&world, &true_pose, &est_pose);
        // Fraction of returns that land farther than 0.5 m from the true
        // building surface (x in [8, 16], |y| <= 4).
        let erroneous = cloud
            .points
            .iter()
            .filter(|p| p.z > 0.5)
            .filter(|p| p.y.abs() > 4.5 || p.x < 7.5 || p.x > 16.5)
            .count();
        let wall_returns = cloud.points.iter().filter(|p| p.z > 0.5).count().max(1);
        // Insert into a fresh octree and check where the map thinks the wall is.
        let mut map = OctreeMap::new(OctreeConfig::default()).unwrap();
        for _ in 0..3 {
            map.insert_cloud(cloud.origin, &cloud.points);
        }
        let true_wall_occupied = map.state_at(Vec3::new(8.2, 0.0, 3.0)) == CellState::Occupied;
        let shifted_wall_occupied = map.state_at(Vec3::new(8.2, drift, 3.0)) == CellState::Occupied;
        println!(
            "  estimate drift {:.1} m: {:>5.1}% of wall returns displaced; map marks true wall: {}, drifted wall: {}",
            drift,
            100.0 * erroneous as f64 / wall_returns as f64,
            true_wall_occupied,
            shifted_wall_occupied
        );
    }
}

/// Case (d): GNSS random-walk drift in poor weather, with DOPs that still
/// look acceptable (2–8).
fn case_d_gps_drift() {
    println!("\n(d) GPS drift during poor weather");
    let mut state = VehicleState::grounded(Vec3::new(0.0, 0.0, 10.0));
    state.landed = false;
    for (label, weather) in [
        ("clear", Weather::clear()),
        ("rain", Weather::rain()),
        ("fog", Weather::fog()),
    ] {
        let mut gps = GpsSensor::from_weather(&weather, 21);
        let mut worst_hdop: f64 = 0.0;
        let mut drift_at = Vec::new();
        for minute in 1..=10 {
            for _ in 0..(60.0 / gps.interval()) as usize {
                let fix = gps.sample(&state, gps.interval());
                worst_hdop = worst_hdop.max(fix.hdop);
            }
            drift_at.push((minute, gps.drift().horizontal().norm()));
        }
        let series: Vec<String> = drift_at
            .iter()
            .filter(|(m, _)| m % 2 == 0)
            .map(|(m, d)| format!("{m}min:{d:.2}m"))
            .collect();
        println!(
            "  {label:<6} worst HDOP {:.1}  drift over time  {}",
            worst_hdop,
            series.join("  ")
        );
    }
    println!("  (the paper observed drift while VDOP/HDOP stayed within 2–8)");
}

fn main() {
    print_header("Figure 5 — Failure-mode case studies");
    case_a_planning_failure();
    case_b_turning_collision();
    case_c_erroneous_pointclouds();
    case_d_gps_drift();
}
