//! perfsuite — the performance-baseline harness behind `BENCH_perf.json`.
//!
//! Every figure and every falsification counterexample in this workspace is
//! bought with wall-clock: the number of fault-injected missions flown per
//! core-hour *is* the methodology's throughput. This binary times the
//! canonical workloads and persists the measurements as `BENCH_perf.json`
//! at the repository root — the seed of the perf trajectory future PRs
//! extend and regress against.
//!
//! Workloads:
//!
//! * **campaign-grid** — a fixed baseline campaign grid on the persistent
//!   executor (missions per second).
//! * **falsify-grid** — the smoke falsify-space workload (MLS-V1,
//!   occlusion × GNSS bias, grid-refinement searcher), timed twice: the
//!   *sequential searcher path* (probes evaluated one campaign at a time,
//!   every mission flown — the pre-batching behaviour) against the
//!   *batched* path (whole generations fanned out over the executor with
//!   early-stopped probe schedules). The recorded `speedup` is the
//!   headline number; the probe sequences and the found failing point are
//!   checked identical.
//! * **falsify-cma** — one falsify space on the CMA-ES searcher, batched
//!   vs sequential under identical early-stop flags, probe logs checked
//!   byte-identical (this isolates the pure batching transport; its win is
//!   parallel-hardware dependent).
//! * **replay-throughput** — capture one failing trace, then time repeated
//!   byte-exact replay verifications (replays per second).
//!
//! * **obs-overhead** — the campaign-grid and falsify-cma workloads timed
//!   with the `mls-obs` sinks off and on inside one process (the runtime
//!   master switch). Records the relative overhead — budgeted at < 2 % —
//!   and *enforces* that reports and probe logs are identical across the
//!   toggle (the non-perturbation contract).
//! * **fabric-grid** — the campaign-grid workload re-run over the
//!   multi-process campaign fabric at 2 workers (this binary re-executes
//!   itself as the workers). Records the distributed wall-clock against
//!   the in-process one and *enforces* that the distributed report is
//!   byte-identical (the fabric's aggregation contract).
//! * **journal-overhead** — the campaign-grid workload unjournaled vs
//!   with the write-ahead result journal attached (one fsync'd record
//!   per mission). Records the relative overhead — budgeted at < 2 % —
//!   and *enforces* that the reports are byte-identical (journaling must
//!   never perturb results).
//!
//! `MLS_PERF_SMOKE=1` shrinks every workload to a CI-sized smoke run
//! (same measurements, same JSON shape, `"mode": "smoke"`). `MLS_THREADS`
//! and `MLS_SEED` are honoured as usual.

use std::process::ExitCode;
use std::time::Instant;

use mls_bench::{finish_obs, print_header, HarnessOptions, HostMeta};
use mls_campaign::{
    CampaignRunner, CampaignSpec, CmaEsConfig, FalsificationConfig, FalsificationSearch, FaultAxis,
    FaultKind, FaultPlan, FaultSpace, GridRefinementConfig, ProbeExecution, SearchStage, Searcher,
    TracePolicy, Transport,
};
use mls_core::SystemVariant;
use serde::Serialize;

/// One timed falsify-space comparison.
#[derive(Debug, Serialize)]
struct FalsifyMeasurement {
    name: String,
    searcher: String,
    variant: String,
    /// Wall-clock of the sequential searcher path, seconds.
    sequential_wall_s: f64,
    /// Missions the sequential path flew.
    sequential_missions: usize,
    /// Wall-clock of the batched path, seconds.
    batched_wall_s: f64,
    /// Missions the batched path flew.
    batched_missions: usize,
    /// `sequential_wall_s / batched_wall_s`.
    speedup: f64,
    /// Distinct probe points evaluated (identical across paths).
    probes: usize,
    /// Whether both paths evaluated identical probe sequences and found
    /// the same failing point.
    equivalent: bool,
}

/// One timed throughput workload.
#[derive(Debug, Serialize)]
struct ThroughputMeasurement {
    name: String,
    wall_s: f64,
    units: String,
    count: usize,
    per_s: f64,
}

/// One obs-off vs obs-on timing of the same workload in the same process.
#[derive(Debug, Serialize)]
struct ObsOverheadMeasurement {
    name: String,
    /// Wall-clock with the obs master switch off, seconds.
    off_wall_s: f64,
    /// Wall-clock with the JSONL + exposition sinks live, seconds.
    on_wall_s: f64,
    /// `(on − off) / off`; the instrumentation budget is < 0.02. Recorded,
    /// not enforced — single-digit-second workloads on a shared host are
    /// noisier than the budget itself.
    overhead: f64,
    /// Whether the workload produced identical results across the toggle
    /// (this *is* enforced: obs must never perturb).
    equivalent: bool,
}

/// One in-process vs distributed-fabric timing of the same campaign.
#[derive(Debug, Serialize)]
struct FabricMeasurement {
    name: String,
    /// Worker processes the fabric run sharded over.
    workers: usize,
    /// Wall-clock of the in-process run, seconds.
    in_process_wall_s: f64,
    /// Wall-clock of the fabric run (includes worker spawn, handshake and
    /// per-worker suite regeneration), seconds.
    fabric_wall_s: f64,
    /// Missions the campaign flew (identical across transports).
    missions: usize,
    /// `in_process_wall_s / fabric_wall_s` — below 1 on small grids,
    /// where process spawn + suite regeneration dominate.
    speedup: f64,
    /// Whether the two reports serialised byte-identically (enforced).
    equivalent: bool,
}

/// One unjournaled vs write-ahead-journaled timing of the same campaign.
#[derive(Debug, Serialize)]
struct JournalOverheadMeasurement {
    name: String,
    /// Wall-clock with no journal attached, seconds.
    off_wall_s: f64,
    /// Wall-clock with one fsync'd journal record per mission, seconds.
    on_wall_s: f64,
    /// `(on − off) / off`; the crash-safety budget is < 0.02. Recorded,
    /// not enforced — single-digit-second workloads on a shared host are
    /// noisier than the budget itself.
    overhead: f64,
    /// Durable journal records the run left behind (one per mission).
    records: usize,
    /// Whether the serialized reports were byte-identical across the
    /// toggle (this *is* enforced: the journal must never perturb).
    equivalent: bool,
}

/// The persisted perf report.
#[derive(Debug, Serialize)]
struct PerfReport {
    schema: String,
    mode: String,
    threads: usize,
    host: HostMeta,
    throughput: Vec<ThroughputMeasurement>,
    falsify: Vec<FalsifyMeasurement>,
    obs_overhead: Vec<ObsOverheadMeasurement>,
    fabric: Vec<FabricMeasurement>,
    journal_overhead: Vec<JournalOverheadMeasurement>,
}

fn seconds(start: Instant) -> f64 {
    start.elapsed().as_secs_f64()
}

/// The spec of the fixed campaign-grid workload: every variant, baseline
/// cells only (shared by the throughput and obs-overhead measurements).
fn campaign_grid_spec(smoke: bool, seed: u64) -> CampaignSpec {
    let mut spec = CampaignSpec {
        name: "perf-campaign-grid".to_string(),
        seed,
        maps: 1,
        scenarios_per_map: if smoke { 2 } else { 4 },
        variants: if smoke {
            vec![SystemVariant::MlsV1, SystemVariant::MlsV3]
        } else {
            SystemVariant::ALL.to_vec()
        },
        faults: Vec::new(),
        ..CampaignSpec::default()
    };
    spec.landing.mission_timeout = 120.0;
    spec.executor.max_duration = 150.0;
    spec
}

/// The fixed campaign-grid workload: every variant, baseline cells only.
fn campaign_grid(threads: usize, smoke: bool, seed: u64) -> Result<ThroughputMeasurement, String> {
    let spec = campaign_grid_spec(smoke, seed);
    let runner = CampaignRunner::new(threads);
    // Suite generation is timed in: it is part of what a campaign costs
    // (and what the suite cache amortises across repeated campaigns).
    let start = Instant::now();
    let report = runner.run(&spec).map_err(|e| e.to_string())?;
    let wall = seconds(start);
    Ok(ThroughputMeasurement {
        name: "campaign-grid".to_string(),
        wall_s: wall,
        units: "missions".to_string(),
        count: report.missions,
        per_s: report.missions as f64 / wall.max(1e-9),
    })
}

/// The fabric workload: the campaign-grid spec in-process vs sharded over
/// 2 worker processes, reports compared byte for byte.
fn fabric_grid(threads: usize, smoke: bool, seed: u64) -> Result<FabricMeasurement, String> {
    let workers = 2;
    let spec = campaign_grid_spec(smoke, seed);
    let in_process = CampaignRunner::new(threads);
    let start = Instant::now();
    let baseline = in_process.run(&spec).map_err(|e| e.to_string())?;
    let in_process_wall_s = seconds(start);
    let baseline_json = baseline.to_json().map_err(|e| e.to_string())?;

    let fabric = CampaignRunner::new(threads).with_transport(Transport::Fabric { workers });
    let start = Instant::now();
    let distributed = fabric.run(&spec).map_err(|e| e.to_string())?;
    let fabric_wall_s = seconds(start);
    let distributed_json = distributed.to_json().map_err(|e| e.to_string())?;

    Ok(FabricMeasurement {
        name: "fabric-grid".to_string(),
        workers,
        in_process_wall_s,
        fabric_wall_s,
        missions: baseline.missions,
        speedup: in_process_wall_s / fabric_wall_s.max(1e-9),
        equivalent: baseline_json == distributed_json,
    })
}

/// Builds the falsification config of the perf falsify workloads.
fn falsify_config(
    seed: u64,
    repeats: usize,
    threshold: f64,
    early_stop: bool,
) -> FalsificationConfig {
    let mut config = FalsificationConfig {
        seed,
        maps: 1,
        scenarios_per_map: 2,
        repeats,
        failure_threshold: threshold,
        minimizer_passes: 1,
        minimizer_bisections: 3,
        probe_early_stop: early_stop,
        ..FalsificationConfig::default()
    };
    config.landing.mission_timeout = 120.0;
    config.executor.max_duration = 150.0;
    config
}

/// Runs one search stage and returns (wall seconds, stage).
fn timed_search(
    config: FalsificationConfig,
    threads: usize,
    execution: ProbeExecution,
    variant: SystemVariant,
    space: &FaultSpace,
    searcher: &Searcher,
) -> Result<(f64, SearchStage), String> {
    let search = FalsificationSearch::new(config, threads).with_probe_execution(execution);
    let start = Instant::now();
    let stage = search
        .search_space(variant, space, searcher)
        .map_err(|e| e.to_string())?;
    Ok((seconds(start), stage))
}

/// The headline workload: the smoke falsify space on the grid searcher,
/// sequential-every-mission vs batched-early-stopped.
fn falsify_grid(threads: usize, smoke: bool, seed: u64) -> Result<FalsifyMeasurement, String> {
    // Both axes are floored well into the stressed regime (a 45 %
    // occlusion duty cycle, a 3 m GNSS bias), so the lattice probes sit on
    // decisively failing fault points — the regime a falsification search
    // spends most of its missions in, and the one where the early-stop
    // bound pays: a probe that keeps failing is decided after
    // ~N·(1−threshold)+1 missions instead of N.
    let space = FaultSpace::new(
        "perf-v1-occlusion-x-gps-bias",
        vec![
            FaultAxis::new(FaultKind::MarkerOcclusion, 0.45, 1.0),
            FaultAxis::new(FaultKind::GpsBias, 0.3, 1.0),
        ],
    );
    let searcher = Searcher::GridRefinement(GridRefinementConfig {
        resolution: 3,
        rounds: 0,
    });
    let repeats = if smoke { 3 } else { 6 };
    let variant = SystemVariant::MlsV1;
    // "Fails" means success below 85 % — the strict dependability bar a
    // falsification probe is held to here. It also makes the early-stop
    // bound sharp: at 12 planned missions a probe is decided *failing*
    // after its second failure ((s + N − n)/N < 0.85), so decisively
    // broken fault points stop after a couple of flights.
    let threshold = 0.85;

    // Warm the suite cache so neither path pays generation and the timing
    // isolates probe evaluation.
    FalsificationSearch::new(falsify_config(seed, repeats, threshold, false), threads)
        .runner()
        .generate_scenarios(&probe_warmup_spec(seed, repeats))
        .map_err(|e| e.to_string())?;

    let (sequential_wall_s, sequential) = timed_search(
        falsify_config(seed, repeats, threshold, false),
        threads,
        ProbeExecution::Sequential,
        variant,
        &space,
        &searcher,
    )?;
    let (batched_wall_s, batched) = timed_search(
        falsify_config(seed, repeats, threshold, true),
        threads,
        ProbeExecution::Batched,
        variant,
        &space,
        &searcher,
    )?;
    if batched.probes.is_empty() {
        return Err("degenerate workload: the searcher flew no probes".to_string());
    }

    // Early stopping changes the *recorded* rates (prefix rates) but never
    // a pass/fail classification, so the grid searcher must visit the same
    // points and land on the same failing point.
    let points_of = |stage: &SearchStage| {
        stage
            .probes
            .iter()
            .map(|probe| probe.point.clone())
            .collect::<Vec<_>>()
    };
    let equivalent = points_of(&sequential) == points_of(&batched)
        && sequential.failing_point == batched.failing_point;

    Ok(FalsifyMeasurement {
        name: "falsify-grid".to_string(),
        searcher: searcher.label().to_string(),
        variant: variant.label().to_string(),
        sequential_wall_s,
        sequential_missions: sequential.missions_flown,
        batched_wall_s,
        batched_missions: batched.missions_flown,
        speedup: sequential_wall_s / batched_wall_s.max(1e-9),
        probes: batched.probes.len(),
        equivalent,
    })
}

/// The fault space of the CMA-ES workloads.
fn cma_space() -> FaultSpace {
    FaultSpace::new(
        "perf-v3-dropout-x-gps-bias",
        vec![
            FaultAxis::full(FaultKind::DetectionDropout),
            FaultAxis::new(FaultKind::GpsBias, 0.15, 1.0),
        ],
    )
}

/// The searcher of the CMA-ES workloads.
fn cma_searcher(smoke: bool) -> Searcher {
    Searcher::CmaEs(CmaEsConfig {
        population: 4,
        generations: if smoke { 1 } else { 2 },
        initial_step: 0.3,
        seed: 7,
    })
}

/// The CMA-ES workload: both paths under identical early-stop flags, so
/// the probe logs must be byte-identical and the speedup isolates the
/// batching transport.
fn falsify_cma(threads: usize, smoke: bool, seed: u64) -> Result<FalsifyMeasurement, String> {
    let space = cma_space();
    let searcher = cma_searcher(smoke);
    let repeats = if smoke { 1 } else { 2 };
    let variant = SystemVariant::MlsV3;
    // The falsify harness's single-trajectory bar: with few repeats per
    // probe, one failed mission fails the probe. (A stricter bar would
    // fail the *baseline* on this suite and degenerate the search.)
    let threshold = 0.75;

    let (sequential_wall_s, sequential) = timed_search(
        falsify_config(seed, repeats, threshold, true),
        threads,
        ProbeExecution::Sequential,
        variant,
        &space,
        &searcher,
    )?;
    let (batched_wall_s, batched) = timed_search(
        falsify_config(seed, repeats, threshold, true),
        threads,
        ProbeExecution::Batched,
        variant,
        &space,
        &searcher,
    )?;
    if batched.probes.is_empty() {
        return Err("degenerate workload: the searcher flew no probes".to_string());
    }
    let equivalent = sequential.probes == batched.probes
        && sequential.failing_point == batched.failing_point
        && sequential.missions_flown == batched.missions_flown;

    Ok(FalsifyMeasurement {
        name: "falsify-cma".to_string(),
        searcher: searcher.label().to_string(),
        variant: variant.label().to_string(),
        sequential_wall_s,
        sequential_missions: sequential.missions_flown,
        batched_wall_s,
        batched_missions: batched.missions_flown,
        speedup: sequential_wall_s / batched_wall_s.max(1e-9),
        probes: batched.probes.len(),
        equivalent,
    })
}

/// The spec whose suite the falsify workloads fly over (for cache warmup).
fn probe_warmup_spec(seed: u64, repeats: usize) -> CampaignSpec {
    CampaignSpec {
        name: "perf-warmup".to_string(),
        seed,
        maps: 1,
        scenarios_per_map: 2,
        repeats,
        ..CampaignSpec::default()
    }
}

/// Captures one failing trace and times repeated replay verification.
fn replay_throughput(threads: usize, smoke: bool) -> Result<ThroughputMeasurement, String> {
    // The known-failing combo of the trace-replay integration suite: a
    // blinded, biased MLS-V1 reliably leaves failure traces on this grid.
    let mut spec = CampaignSpec {
        name: "perf-replay".to_string(),
        seed: 2025,
        maps: 1,
        scenarios_per_map: 4,
        variants: vec![SystemVariant::MlsV1],
        baseline: false,
        combos: vec![vec![
            FaultPlan::new(FaultKind::MarkerOcclusion, 0.6),
            FaultPlan::new(FaultKind::GpsBias, 0.8),
        ]],
        capture: TracePolicy::FailuresOnly,
        ..CampaignSpec::default()
    };
    spec.landing.mission_timeout = 150.0;
    spec.executor.max_duration = 180.0;
    let runner = CampaignRunner::new(threads).with_trace_dir("target/perf-traces");
    let report = runner.run(&spec).map_err(|e| e.to_string())?;
    let link = report
        .traces
        .first()
        .ok_or("the blinded, biased V1 campaign must fail somewhere")?;
    let trace =
        mls_trace::Trace::read_from(std::path::Path::new(&link.path)).map_err(|e| e.to_string())?;
    let scenarios = runner
        .generate_scenarios(&spec)
        .map_err(|e| e.to_string())?;
    let replays = if smoke { 2 } else { 5 };
    let start = Instant::now();
    for _ in 0..replays {
        let verdict = runner
            .replay(&spec, &scenarios, &trace)
            .map_err(|e| e.to_string())?;
        if !verdict.is_identical() {
            return Err(format!("replay diverged: {verdict}"));
        }
    }
    let wall = seconds(start);
    Ok(ThroughputMeasurement {
        name: "replay-throughput".to_string(),
        wall_s: wall,
        units: "replays".to_string(),
        count: replays,
        per_s: replays as f64 / wall.max(1e-9),
    })
}

/// Times `workload` with the obs master switch off, then on, inside this
/// process; `identical` decides result equivalence across the toggle. The
/// switch is left off afterwards.
fn toggled<T>(
    name: &str,
    workload: impl Fn() -> Result<T, String>,
    identical: impl Fn(&T, &T) -> bool,
) -> Result<ObsOverheadMeasurement, String> {
    mls_obs::set_enabled(false);
    let start = Instant::now();
    let off = workload()?;
    let off_wall_s = seconds(start);
    mls_obs::set_enabled(true);
    let start = Instant::now();
    let on = workload()?;
    let on_wall_s = seconds(start);
    mls_obs::set_enabled(false);
    Ok(ObsOverheadMeasurement {
        name: name.to_string(),
        off_wall_s,
        on_wall_s,
        overhead: (on_wall_s - off_wall_s) / off_wall_s.max(1e-9),
        equivalent: identical(&off, &on),
    })
}

/// Obs overhead on the campaign grid: the serialized campaign report must
/// be byte-identical across the toggle.
fn obs_overhead_grid(
    threads: usize,
    smoke: bool,
    seed: u64,
) -> Result<ObsOverheadMeasurement, String> {
    let spec = campaign_grid_spec(smoke, seed);
    let runner = CampaignRunner::new(threads);
    toggled(
        "obs-overhead-grid",
        || {
            let report = runner.run(&spec).map_err(|e| e.to_string())?;
            report.to_json().map_err(|e| e.to_string())
        },
        |off, on| off == on,
    )
}

/// Journal overhead on the campaign grid: the same spec unjournaled vs
/// with the write-ahead journal attached, reports compared byte for byte.
/// The suite cache is warmed first so both timings isolate mission
/// flying + journaling from scenario generation.
fn journal_overhead_grid(
    threads: usize,
    smoke: bool,
    seed: u64,
) -> Result<JournalOverheadMeasurement, String> {
    let spec = campaign_grid_spec(smoke, seed);
    let runner = CampaignRunner::new(threads);
    runner
        .generate_scenarios(&spec)
        .map_err(|e| e.to_string())?;

    let start = Instant::now();
    let off = runner.run(&spec).map_err(|e| e.to_string())?;
    let off_wall_s = seconds(start);
    let off_json = off.to_json().map_err(|e| e.to_string())?;

    let journal = std::path::PathBuf::from("target/perf-journal.jsonl");
    let _ = std::fs::remove_file(&journal);
    let journaled = CampaignRunner::new(threads).with_journal(&journal);
    let start = Instant::now();
    let on = journaled.run(&spec).map_err(|e| e.to_string())?;
    let on_wall_s = seconds(start);
    let on_json = on.to_json().map_err(|e| e.to_string())?;
    let records = std::fs::read_to_string(&journal)
        .map(|text| text.matches('\n').count().saturating_sub(1))
        .unwrap_or(0);
    if records != off.missions {
        return Err(format!(
            "expected one journal record per mission, got {records} for {} missions",
            off.missions
        ));
    }

    Ok(JournalOverheadMeasurement {
        name: "journal-overhead-grid".to_string(),
        off_wall_s,
        on_wall_s,
        overhead: (on_wall_s - off_wall_s) / off_wall_s.max(1e-9),
        records,
        equivalent: off_json == on_json,
    })
}

/// Obs overhead on the batched CMA-ES search: probe log, failing point and
/// mission count must be identical across the toggle.
fn obs_overhead_cma(
    threads: usize,
    smoke: bool,
    seed: u64,
) -> Result<ObsOverheadMeasurement, String> {
    let space = cma_space();
    let searcher = cma_searcher(smoke);
    let repeats = if smoke { 1 } else { 2 };
    let threshold = 0.75;
    toggled(
        "obs-overhead-cma",
        || {
            timed_search(
                falsify_config(seed, repeats, threshold, true),
                threads,
                ProbeExecution::Batched,
                SystemVariant::MlsV3,
                &space,
                &searcher,
            )
            .map(|(_, stage)| stage)
        },
        |off, on| {
            off.probes == on.probes
                && off.failing_point == on.failing_point
                && off.missions_flown == on.missions_flown
        },
    )
}

fn main() -> ExitCode {
    // Spawned copies of this binary become fabric workers before any
    // output happens (worker stdout carries only protocol frames).
    mls_fabric::maybe_worker();
    mls_fabric::install();

    print_header("perfsuite — canonical workload timings → BENCH_perf.json");
    let options = HarnessOptions::from_env();
    let smoke = std::env::var("MLS_PERF_SMOKE")
        .map(|v| v == "1")
        .unwrap_or(false);
    // Seed 3 is the suite every generation lands clean over (the falsify
    // harness's clean-baseline default); an explicit MLS_SEED wins.
    let seed = if std::env::var("MLS_SEED").is_ok() {
        options.seed
    } else {
        3
    };
    let threads = options.threads;
    let host = HostMeta::capture();
    println!(
        "mode: {}, {} threads, seed {seed}, host: {} cores, {} build @ {}",
        if smoke { "smoke" } else { "full" },
        threads,
        host.cores,
        host.profile,
        host.git_rev,
    );

    // The obs-overhead workload toggles the sinks inside this process, so
    // they are pinned here explicitly (JSONL + exposition; an inherited
    // `MLS_OBS` would race with the toggle) and stay off for the plain
    // timing workloads.
    mls_obs::init(mls_obs::ObsConfig::standard());
    mls_obs::set_enabled(false);

    let mut throughput = Vec::new();
    let mut falsify = Vec::new();
    let mut obs_overhead = Vec::new();
    let mut fabric = Vec::new();
    let mut journal_overhead = Vec::new();
    let mut all_good = true;

    println!("\n[1/7] campaign-grid");
    match campaign_grid(threads, smoke, seed) {
        Ok(m) => {
            println!(
                "  {} missions in {:.1} s → {:.3} missions/s",
                m.count, m.wall_s, m.per_s
            );
            throughput.push(m);
        }
        Err(err) => {
            println!("  FAILED: {err}");
            all_good = false;
        }
    }

    println!("\n[2/7] falsify-grid (sequential searcher path vs batched)");
    match falsify_grid(threads, smoke, seed) {
        Ok(m) => {
            println!(
                "  sequential: {:.1} s / {} missions; batched: {:.1} s / {} missions",
                m.sequential_wall_s, m.sequential_missions, m.batched_wall_s, m.batched_missions
            );
            println!(
                "  speedup {:.2}x over {} probes (equivalent: {})",
                m.speedup, m.probes, m.equivalent
            );
            all_good &= m.equivalent;
            falsify.push(m);
        }
        Err(err) => {
            println!("  FAILED: {err}");
            all_good = false;
        }
    }

    println!("\n[3/7] falsify-cma (batching transport, identical flags)");
    match falsify_cma(threads, smoke, seed) {
        Ok(m) => {
            println!(
                "  sequential: {:.1} s; batched: {:.1} s; speedup {:.2}x (byte-equivalent: {})",
                m.sequential_wall_s, m.batched_wall_s, m.speedup, m.equivalent
            );
            all_good &= m.equivalent;
            falsify.push(m);
        }
        Err(err) => {
            println!("  FAILED: {err}");
            all_good = false;
        }
    }

    println!("\n[4/7] replay-throughput");
    match replay_throughput(threads, smoke) {
        Ok(m) => {
            println!(
                "  {} replays in {:.1} s → {:.3} replays/s",
                m.count, m.wall_s, m.per_s
            );
            throughput.push(m);
        }
        Err(err) => {
            println!("  FAILED: {err}");
            all_good = false;
        }
    }

    println!("\n[5/7] obs-overhead (sinks off vs on, same process; budget < 2%)");
    for result in [
        obs_overhead_grid(threads, smoke, seed),
        obs_overhead_cma(threads, smoke, seed),
    ] {
        match result {
            Ok(m) => {
                println!(
                    "  {}: off {:.1} s, on {:.1} s → overhead {:+.2}% (equivalent: {})",
                    m.name,
                    m.off_wall_s,
                    m.on_wall_s,
                    m.overhead * 100.0,
                    m.equivalent
                );
                // The equivalence half is a hard invariant; the overhead
                // number is recorded against the budget but not gated on
                // (wall-clock noise on shared CI hosts dwarfs 2 %).
                all_good &= m.equivalent;
                obs_overhead.push(m);
            }
            Err(err) => {
                println!("  FAILED: {err}");
                all_good = false;
            }
        }
    }

    println!("\n[6/7] fabric-grid (in-process vs 2 worker processes)");
    match fabric_grid(threads, smoke, seed) {
        Ok(m) => {
            println!(
                "  in-process: {:.1} s; fabric ×{}: {:.1} s over {} missions (byte-equivalent: {})",
                m.in_process_wall_s, m.workers, m.fabric_wall_s, m.missions, m.equivalent
            );
            all_good &= m.equivalent;
            fabric.push(m);
        }
        Err(err) => {
            println!("  FAILED: {err}");
            all_good = false;
        }
    }

    println!("\n[7/7] journal-overhead (unjournaled vs write-ahead journal; budget < 2%)");
    match journal_overhead_grid(threads, smoke, seed) {
        Ok(m) => {
            println!(
                "  off {:.1} s, on {:.1} s ({} records) → overhead {:+.2}% (equivalent: {})",
                m.off_wall_s,
                m.on_wall_s,
                m.records,
                m.overhead * 100.0,
                m.equivalent
            );
            // As with obs-overhead: equivalence is the hard invariant, the
            // overhead number is recorded against the budget.
            all_good &= m.equivalent;
            journal_overhead.push(m);
        }
        Err(err) => {
            println!("  FAILED: {err}");
            all_good = false;
        }
    }

    let report = PerfReport {
        schema: "mls-perf-v4".to_string(),
        mode: if smoke { "smoke" } else { "full" }.to_string(),
        threads,
        host,
        throughput,
        falsify,
        obs_overhead,
        fabric,
        journal_overhead,
    };
    match serde_json::to_string_pretty(&report) {
        Ok(json) => match mls_obs::atomic_write(
            std::path::Path::new("BENCH_perf.json"),
            (json + "\n").as_bytes(),
        ) {
            Ok(()) => println!("\nreport: BENCH_perf.json"),
            Err(err) => {
                println!("\ncannot write BENCH_perf.json: {err}");
                all_good = false;
            }
        },
        Err(err) => {
            println!("\ncannot serialise the perf report: {err}");
            all_good = false;
        }
    }

    // The overhead runs populated the registry and the event log; flush
    // them as this process's obs artifacts.
    mls_obs::set_enabled(true);
    finish_obs();

    if all_good {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
