//! fabric — the distributed-campaign smoke harness behind CI's
//! `fabric-smoke` job.
//!
//! Runs a small campaign grid three ways in one process tree — in-process,
//! over 2 fabric workers, and over 2 fabric workers with a chaos directive
//! that kills worker 0 mid-campaign — and *enforces by exit code* that all
//! three produce a byte-identical `CampaignReport` and byte-identical
//! persisted failure traces. This is the end-to-end dependability check of
//! the fabric: sharding, the frame protocol, worker failover and
//! distributed aggregation all sit on the hot path of every comparison.
//!
//! Workers are this same binary re-executed with `MLS_FABRIC_WORKER=1`
//! (hence the [`mls_fabric::maybe_worker`] call at the top of `main`), so
//! the smoke run also proves the self-spawn path the production harnesses
//! use. `MLS_OBS` / `MLS_OBS_DIR` propagate to workers, whose artifacts
//! land tagged `worker-<id>` next to the dispatcher's.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use mls_bench::{finish_obs, print_header, HarnessOptions};
use mls_campaign::{CampaignRunner, CampaignSpec, FaultKind, FaultPlan, TracePolicy, Transport};
use mls_core::SystemVariant;

/// The smoke grid: 2 variants × (baseline + 2 faults) = 6 cells, with
/// failure-trace capture so the trace path is exercised too.
fn smoke_spec(seed: u64) -> CampaignSpec {
    let mut spec = CampaignSpec {
        name: "fabric-smoke".to_string(),
        seed,
        maps: 1,
        scenarios_per_map: 2,
        variants: vec![SystemVariant::MlsV1, SystemVariant::MlsV3],
        faults: vec![
            FaultPlan::new(FaultKind::MarkerOcclusion, 0.6),
            FaultPlan::new(FaultKind::GpsBias, 0.6),
        ],
        capture: TracePolicy::FailuresOnly,
        ..CampaignSpec::default()
    };
    spec.landing.mission_timeout = 120.0;
    spec.executor.max_duration = 150.0;
    spec
}

/// Reads every file under `dir` into path-relative bytes.
fn snapshot_dir(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut files = BTreeMap::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(current) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&current) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if let (Ok(relative), Ok(bytes)) = (path.strip_prefix(dir), std::fs::read(&path))
            {
                files.insert(relative.to_string_lossy().into_owned(), bytes);
            }
        }
    }
    files
}

/// One transport's smoke result: the report JSON, the persisted trace
/// bytes, and how long the run took.
struct Run {
    report_json: String,
    traces: BTreeMap<String, Vec<u8>>,
    wall_s: f64,
}

/// Runs the smoke spec on `transport` into `trace_dir` (wiped first).
fn run(
    spec: &CampaignSpec,
    threads: usize,
    transport: Transport,
    trace_dir: &Path,
) -> Result<Run, String> {
    let _ = std::fs::remove_dir_all(trace_dir);
    let start = Instant::now();
    let report = CampaignRunner::new(threads)
        .with_transport(transport)
        .with_trace_dir(trace_dir)
        .run(spec)
        .map_err(|err| format!("campaign on {transport:?} failed: {err}"))?;
    let wall_s = start.elapsed().as_secs_f64();
    let report_json = report.to_json().map_err(|err| err.to_string())?;
    Ok(Run {
        report_json,
        traces: snapshot_dir(trace_dir),
        wall_s,
    })
}

fn check(label: &str, baseline: &Run, candidate: &Run) -> bool {
    let report_ok = baseline.report_json == candidate.report_json;
    let traces_ok = baseline.traces == candidate.traces;
    println!(
        "  {label}: {:.1} s — report {}, traces {} ({} files)",
        candidate.wall_s,
        if report_ok { "identical" } else { "DIVERGED" },
        if traces_ok { "identical" } else { "DIVERGED" },
        candidate.traces.len(),
    );
    report_ok && traces_ok
}

fn main() -> ExitCode {
    // Spawned copies of this binary become fabric workers before any
    // output or parsing happens.
    mls_fabric::maybe_worker();
    mls_fabric::install();

    print_header("fabric — distributed campaign smoke (byte-identity by exit code)");
    let options = HarnessOptions::from_env();
    let threads = options.threads;
    let seed = options.seed;
    let spec = smoke_spec(seed);
    let dir = PathBuf::from("target/fabric-smoke-traces");
    println!(
        "grid: {} cells × {} missions, {} threads, seed {seed}",
        spec.cells().len(),
        spec.missions_per_cell(),
        threads
    );

    println!("\n[1/3] in-process baseline");
    let baseline = match run(&spec, threads, Transport::InProcess, &dir) {
        Ok(result) => {
            println!(
                "  {:.1} s, {} trace files",
                result.wall_s,
                result.traces.len()
            );
            result
        }
        Err(err) => {
            println!("  FAILED: {err}");
            return ExitCode::FAILURE;
        }
    };
    if baseline.traces.is_empty() {
        println!("  FAILED: the smoke grid must capture failure traces");
        return ExitCode::FAILURE;
    }

    let mut all_good = true;

    println!("\n[2/3] fabric, 2 workers");
    match run(&spec, threads, Transport::Fabric { workers: 2 }, &dir) {
        Ok(result) => all_good &= check("2 workers", &baseline, &result),
        Err(err) => {
            println!("  FAILED: {err}");
            all_good = false;
        }
    }

    println!("\n[3/3] fabric, 2 workers, worker 0 chaos-killed on its 2nd lease");
    mls_fabric::set_chaos(Some("exit-after=1".to_string()));
    match run(&spec, threads, Transport::Fabric { workers: 2 }, &dir) {
        Ok(result) => all_good &= check("2 workers + chaos", &baseline, &result),
        Err(err) => {
            println!("  FAILED: {err}");
            all_good = false;
        }
    }
    mls_fabric::set_chaos(None);

    finish_obs();
    if all_good {
        println!("\nfabric smoke: byte-identical across transports");
        ExitCode::SUCCESS
    } else {
        println!("\nfabric smoke: DIVERGENCE DETECTED");
        ExitCode::FAILURE
    }
}
