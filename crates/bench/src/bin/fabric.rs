//! fabric — the distributed-campaign smoke harness behind CI's
//! `fabric-smoke` job.
//!
//! Runs a small campaign grid three ways in one process tree — in-process,
//! over 2 fabric workers, and over 2 fabric workers with a chaos directive
//! that kills worker 0 mid-campaign — and *enforces by exit code* that all
//! three produce a byte-identical `CampaignReport` and byte-identical
//! persisted failure traces. This is the end-to-end dependability check of
//! the fabric: sharding, the frame protocol, worker failover and
//! distributed aggregation all sit on the hot path of every comparison.
//!
//! Workers are this same binary re-executed with `MLS_FABRIC_WORKER=1`
//! (hence the [`mls_fabric::maybe_worker`] call at the top of `main`), so
//! the smoke run also proves the self-spawn path the production harnesses
//! use. `MLS_OBS` / `MLS_OBS_DIR` propagate to workers, whose artifacts
//! land tagged `worker-<id>` next to the dispatcher's.
//!
//! With `MLS_RESUME_SMOKE=1` the binary instead runs the crash/resume
//! smoke behind CI's `resume-smoke` job: it re-executes itself as a
//! *journaled* fabric dispatcher, SIGKILLs that dispatcher once the
//! write-ahead journal holds N durable records (the harness-side reading
//! of the `sigkill-dispatcher-after=N` chaos directive), then resumes
//! from the orphaned journal and enforces by exit code that the resumed
//! report and traces are byte-identical to an undisturbed run.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::{Duration, Instant};

use mls_bench::{finish_obs, print_header, HarnessOptions};
use mls_campaign::{CampaignRunner, CampaignSpec, FaultKind, FaultPlan, TracePolicy, Transport};
use mls_core::SystemVariant;

/// The smoke grid: 2 variants × (baseline + 2 faults) = 6 cells, with
/// failure-trace capture so the trace path is exercised too.
fn smoke_spec(seed: u64) -> CampaignSpec {
    let mut spec = CampaignSpec {
        name: "fabric-smoke".to_string(),
        seed,
        maps: 1,
        scenarios_per_map: 2,
        variants: vec![SystemVariant::MlsV1, SystemVariant::MlsV3],
        faults: vec![
            FaultPlan::new(FaultKind::MarkerOcclusion, 0.6),
            FaultPlan::new(FaultKind::GpsBias, 0.6),
        ],
        capture: TracePolicy::FailuresOnly,
        ..CampaignSpec::default()
    };
    spec.landing.mission_timeout = 120.0;
    spec.executor.max_duration = 150.0;
    spec
}

/// Reads every file under `dir` into path-relative bytes.
fn snapshot_dir(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut files = BTreeMap::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(current) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&current) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if let (Ok(relative), Ok(bytes)) = (path.strip_prefix(dir), std::fs::read(&path))
            {
                files.insert(relative.to_string_lossy().into_owned(), bytes);
            }
        }
    }
    files
}

/// One transport's smoke result: the report JSON, the persisted trace
/// bytes, and how long the run took.
struct Run {
    report_json: String,
    traces: BTreeMap<String, Vec<u8>>,
    wall_s: f64,
}

/// Runs the smoke spec on `transport` into `trace_dir` (wiped first).
fn run(
    spec: &CampaignSpec,
    threads: usize,
    transport: Transport,
    trace_dir: &Path,
) -> Result<Run, String> {
    let _ = std::fs::remove_dir_all(trace_dir);
    let start = Instant::now();
    let report = CampaignRunner::new(threads)
        .with_transport(transport)
        .with_trace_dir(trace_dir)
        .run(spec)
        .map_err(|err| format!("campaign on {transport:?} failed: {err}"))?;
    let wall_s = start.elapsed().as_secs_f64();
    let report_json = report.to_json().map_err(|err| err.to_string())?;
    Ok(Run {
        report_json,
        traces: snapshot_dir(trace_dir),
        wall_s,
    })
}

fn check(label: &str, baseline: &Run, candidate: &Run) -> bool {
    let report_ok = baseline.report_json == candidate.report_json;
    let traces_ok = baseline.traces == candidate.traces;
    println!(
        "  {label}: {:.1} s — report {}, traces {} ({} files)",
        candidate.wall_s,
        if report_ok { "identical" } else { "DIVERGED" },
        if traces_ok { "identical" } else { "DIVERGED" },
        candidate.traces.len(),
    );
    report_ok && traces_ok
}

/// Selects the crash/resume smoke instead of the transport-identity smoke.
const RESUME_SMOKE_ENV: &str = "MLS_RESUME_SMOKE";
/// Marks the re-executed copy of this binary that plays the doomed
/// journaled dispatcher inside the resume smoke.
const RESUME_DISPATCH_ENV: &str = "MLS_RESUME_SMOKE_DISPATCH";

/// Artifact locations for the resume smoke: trace dir and journal.
fn resume_paths() -> (PathBuf, PathBuf) {
    (
        PathBuf::from("target/fabric-resume-smoke-traces"),
        PathBuf::from("target/fabric-resume-smoke.journal.jsonl"),
    )
}

/// The doomed dispatcher: a journaled 2-worker fabric run of the smoke
/// grid. The parent harness SIGKILLs this process mid-campaign, so the
/// success path below is only reached on fast exits (already-complete
/// journals) — the journal on disk is the real output.
fn resume_dispatch() -> ExitCode {
    let options = HarnessOptions::from_env();
    let spec = smoke_spec(options.seed);
    let (dir, journal) = resume_paths();
    match CampaignRunner::new(options.threads)
        .with_transport(Transport::Fabric { workers: 2 })
        .with_journal(&journal)
        .with_trace_dir(&dir)
        .run(&spec)
    {
        Ok(_) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("resume-smoke dispatcher failed: {err}");
            ExitCode::FAILURE
        }
    }
}

/// Counts durable (newline-terminated) journal records on disk; the
/// header line does not count, nor does a torn tail.
fn durable_records(journal: &Path) -> usize {
    std::fs::read_to_string(journal)
        .map(|text| text.matches('\n').count().saturating_sub(1))
        .unwrap_or(0)
}

/// The crash/resume smoke: baseline in-process run, SIGKILL a journaled
/// dispatcher child after `sigkill-dispatcher-after=N` durable records,
/// resume from its journal over the fabric, compare every byte.
fn resume_smoke() -> ExitCode {
    print_header("fabric — crash/resume smoke (SIGKILL the dispatcher, resume byte-identically)");
    let options = HarnessOptions::from_env();
    let threads = options.threads;
    let spec = smoke_spec(options.seed);
    let (dir, journal) = resume_paths();

    // `sigkill-dispatcher-after` is the one chaos mode workers ignore:
    // the *harness* interprets it, by killing the dispatcher process.
    let kill_after = std::env::var(mls_fabric::dispatcher::CHAOS_ENV)
        .ok()
        .and_then(|directive| mls_fabric::worker::parse_chaos(&directive))
        .and_then(|schedule| schedule.sigkill_dispatcher_after)
        .unwrap_or(3);
    println!(
        "grid: {} cells × {} missions, seed {}; SIGKILL after {kill_after} journal records",
        spec.cells().len(),
        spec.missions_per_cell(),
        options.seed
    );

    println!("\n[1/3] in-process baseline");
    let baseline = match run(&spec, threads, Transport::InProcess, &dir) {
        Ok(result) => {
            println!(
                "  {:.1} s, {} trace files",
                result.wall_s,
                result.traces.len()
            );
            result
        }
        Err(err) => {
            println!("  FAILED: {err}");
            return ExitCode::FAILURE;
        }
    };

    println!("\n[2/3] journaled fabric dispatcher, killed -9 mid-campaign");
    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_dir_all(&dir);
    let exe = match std::env::current_exe() {
        Ok(exe) => exe,
        Err(err) => {
            println!("  FAILED: cannot locate own executable: {err}");
            return ExitCode::FAILURE;
        }
    };
    let mut child = match std::process::Command::new(exe)
        .env(RESUME_DISPATCH_ENV, "1")
        .spawn()
    {
        Ok(child) => child,
        Err(err) => {
            println!("  FAILED: cannot spawn dispatcher: {err}");
            return ExitCode::FAILURE;
        }
    };
    let deadline = Instant::now() + Duration::from_secs(600);
    let mut finished_early = false;
    loop {
        match child.try_wait() {
            Ok(Some(status)) => {
                // Dispatcher outran the kill threshold; a complete
                // journal still exercises the resume path below.
                if !status.success() {
                    println!("  FAILED: dispatcher exited with {status} before the kill");
                    return ExitCode::FAILURE;
                }
                finished_early = true;
                break;
            }
            Ok(None) => {}
            Err(err) => {
                println!("  FAILED: cannot poll dispatcher: {err}");
                return ExitCode::FAILURE;
            }
        }
        if durable_records(&journal) >= kill_after {
            let _ = child.kill();
            let _ = child.wait();
            break;
        }
        if Instant::now() > deadline {
            let _ = child.kill();
            let _ = child.wait();
            println!("  FAILED: journal never reached {kill_after} records");
            return ExitCode::FAILURE;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    let survived = durable_records(&journal);
    if survived == 0 {
        println!("  FAILED: no durable journal records survived the kill");
        return ExitCode::FAILURE;
    }
    println!(
        "  {} with {survived} durable journal records",
        if finished_early {
            "dispatcher finished before the kill threshold"
        } else {
            "dispatcher SIGKILLed"
        }
    );

    println!("\n[3/3] resume from the orphaned journal, 2 workers");
    let _ = std::fs::remove_dir_all(&dir);
    let start = Instant::now();
    let resumed = CampaignRunner::new(threads)
        .with_transport(Transport::Fabric { workers: 2 })
        .with_trace_dir(&dir)
        .resume(&journal);
    let wall_s = start.elapsed().as_secs_f64();
    let resumed = match resumed {
        Ok(report) => match report.to_json() {
            Ok(report_json) => Run {
                report_json,
                traces: snapshot_dir(&dir),
                wall_s,
            },
            Err(err) => {
                println!("  FAILED: {err}");
                return ExitCode::FAILURE;
            }
        },
        Err(err) => {
            println!("  FAILED: {err}");
            return ExitCode::FAILURE;
        }
    };
    let all_good = check("resumed", &baseline, &resumed);

    finish_obs();
    if all_good {
        println!("\nresume smoke: byte-identical after kill -9 at {survived} records");
        ExitCode::SUCCESS
    } else {
        println!("\nresume smoke: DIVERGENCE DETECTED");
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    // Spawned copies of this binary become fabric workers before any
    // output or parsing happens.
    mls_fabric::maybe_worker();
    mls_fabric::install();
    if std::env::var(RESUME_DISPATCH_ENV).as_deref() == Ok("1") {
        return resume_dispatch();
    }
    if std::env::var(RESUME_SMOKE_ENV).as_deref() == Ok("1") {
        return resume_smoke();
    }

    print_header("fabric — distributed campaign smoke (byte-identity by exit code)");
    let options = HarnessOptions::from_env();
    let threads = options.threads;
    let seed = options.seed;
    let spec = smoke_spec(seed);
    let dir = PathBuf::from("target/fabric-smoke-traces");
    println!(
        "grid: {} cells × {} missions, {} threads, seed {seed}",
        spec.cells().len(),
        spec.missions_per_cell(),
        threads
    );

    println!("\n[1/3] in-process baseline");
    let baseline = match run(&spec, threads, Transport::InProcess, &dir) {
        Ok(result) => {
            println!(
                "  {:.1} s, {} trace files",
                result.wall_s,
                result.traces.len()
            );
            result
        }
        Err(err) => {
            println!("  FAILED: {err}");
            return ExitCode::FAILURE;
        }
    };
    if baseline.traces.is_empty() {
        println!("  FAILED: the smoke grid must capture failure traces");
        return ExitCode::FAILURE;
    }

    let mut all_good = true;

    println!("\n[2/3] fabric, 2 workers");
    match run(&spec, threads, Transport::Fabric { workers: 2 }, &dir) {
        Ok(result) => all_good &= check("2 workers", &baseline, &result),
        Err(err) => {
            println!("  FAILED: {err}");
            all_good = false;
        }
    }

    println!("\n[3/3] fabric, 2 workers, worker 0 chaos-killed on its 2nd lease");
    mls_fabric::set_chaos(Some("exit-after=1".to_string()));
    match run(&spec, threads, Transport::Fabric { workers: 2 }, &dir) {
        Ok(result) => all_good &= check("2 workers + chaos", &baseline, &result),
        Err(err) => {
            println!("  FAILED: {err}");
            all_good = false;
        }
    }
    mls_fabric::set_chaos(None);

    finish_obs();
    if all_good {
        println!("\nfabric smoke: byte-identical across transports");
        ExitCode::SUCCESS
    } else {
        println!("\nfabric smoke: DIVERGENCE DETECTED");
        ExitCode::FAILURE
    }
}
