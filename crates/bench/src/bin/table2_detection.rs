//! Table II — Marker-detection false-negative rates.
//!
//! The paper reports the false-negative rate of each generation's detector
//! during the SIL campaign: OpenCV 4.00% (MLS-V1), TPH-YOLO 2.67% (MLS-V2)
//! and 2.00% (MLS-V3). This harness reproduces the comparison two ways:
//!
//! 1. a controlled standalone sweep — the same scene rendered over a grid of
//!    altitudes × weather × lighting conditions, decoded by both detectors;
//! 2. the in-mission rates pooled from a (reduced) benchmark run of each
//!    system variant, expressed as a baseline-only [`CampaignSpec`] and
//!    flown by the sharded [`CampaignRunner`] — the same replayable campaign
//!    grid the Table I/III harnesses run on.

use mls_bench::{percent, persist_report, print_comparison, print_header, HarnessOptions};
use mls_campaign::{CampaignRunner, CampaignSpec};
use mls_compute::ComputeProfile;
use mls_core::SystemVariant;
use mls_geom::{Pose, Vec2, Vec3};
use mls_vision::{
    Camera, ClassicalDetector, DegradationConfig, GroundScene, ImageDegrader, LearnedDetector,
    LightingCondition, MarkerDetector, MarkerDictionary, MarkerPlacement, MarkerRenderer,
    WeatherKind,
};

/// Standalone sweep: false-negative rate of a detector over a condition grid.
fn standalone_false_negative_rate(detector: &dyn MarkerDetector, seed: u64) -> f64 {
    let dictionary = MarkerDictionary::standard();
    let renderer = MarkerRenderer::new(dictionary);
    let camera = Camera::downward();
    let mut misses = 0usize;
    let mut frames = 0usize;
    let altitudes = [6.0, 8.0, 10.0, 12.0, 14.0];
    let offsets = [
        Vec2::new(0.0, 0.0),
        Vec2::new(1.5, -1.0),
        Vec2::new(-2.0, 1.5),
    ];
    for (wi, weather) in WeatherKind::ALL.iter().enumerate() {
        for (li, lighting) in LightingCondition::ALL.iter().enumerate() {
            for (ai, altitude) in altitudes.iter().enumerate() {
                for (oi, offset) in offsets.iter().enumerate() {
                    let marker_id = ((wi * 7 + li * 5 + ai * 3 + oi) % 50) as u32;
                    let scene = GroundScene::new()
                        .with_marker(MarkerPlacement::new(marker_id, *offset, 1.5, 0.3));
                    let pose = Pose::from_position_yaw(Vec3::new(0.0, 0.0, *altitude), 0.1);
                    let frame = renderer.render(&camera, &pose, &scene);
                    let config = DegradationConfig::for_conditions(*weather, *lighting);
                    let frame_seed = seed + (wi * 1000 + li * 100 + ai * 10 + oi) as u64;
                    let degraded = ImageDegrader::new(config, frame_seed).apply(&frame);
                    frames += 1;
                    if !detector.detect(&degraded).iter().any(|d| d.id == marker_id) {
                        misses += 1;
                    }
                }
            }
        }
    }
    misses as f64 / frames as f64
}

fn main() {
    print_header("Table II — Marker detection results (false-negative rate)");

    let dictionary = MarkerDictionary::standard();
    let classical = ClassicalDetector::new(dictionary.clone());
    let learned = LearnedDetector::new(dictionary);

    println!("Standalone condition sweep (5 weather x 4 lighting x 5 altitudes x 3 offsets):");
    let classical_fnr = standalone_false_negative_rate(&classical, 11);
    let learned_fnr = standalone_false_negative_rate(&learned, 11);
    println!(
        "  OpenCV-style classical pipeline : {}",
        percent(classical_fnr)
    );
    println!(
        "  TPH-YOLO surrogate              : {}",
        percent(learned_fnr)
    );
    println!(
        "  learned detector more robust    : {}",
        learned_fnr < classical_fnr
    );

    println!();
    println!("In-mission false-negative rates (pooled over a campaign run):");
    let mut options = HarnessOptions::from_env();
    // Detection statistics converge with far fewer missions than Table I.
    options.maps = options.maps.min(4);
    options.scenarios_per_map = options.scenarios_per_map.min(5);
    let spec = CampaignSpec {
        name: "table2-detection".to_string(),
        seed: options.seed,
        maps: options.maps,
        scenarios_per_map: options.scenarios_per_map,
        repeats: options.repeats,
        variants: SystemVariant::ALL.to_vec(),
        profiles: vec![ComputeProfile::desktop_sil()],
        ..CampaignSpec::default()
    };
    let report = CampaignRunner::new(options.threads)
        .run(&spec)
        .expect("the Table II campaign specification is valid");
    persist_report(&report);

    let paper = [
        (SystemVariant::MlsV1, "OpenCV", 4.00),
        (SystemVariant::MlsV2, "TPH-YOLO", 2.67),
        (SystemVariant::MlsV3, "TPH-YOLO", 2.00),
    ];
    for (variant, implementation, paper_fnr) in paper {
        let cell = report
            .cell(variant, "desktop-sil", None)
            .expect("the campaign grid contains every variant's baseline cell");
        print_comparison(
            &format!("{} ({implementation}) false-negative rate", variant.label()),
            &format!("{paper_fnr:.2}%"),
            &percent(cell.false_negative_rate),
        );
    }
    println!();
    println!("Note: the paper's TPH-YOLO does not estimate marker orientation;");
    println!("neither does the surrogate (Detection::orientation is None).");
    mls_bench::finish_obs();
}
