//! Table I — Software-in-the-Loop comparison of MLS-V1/V2/V3.
//!
//! Reproduces the paper's SIL campaign: every system generation flies the
//! full benchmark (10 maps × 10 scenarios, half adverse weather, `MLS_REPEATS`
//! repetitions) on the desktop compute profile, and the landing outcomes are
//! bucketed into success / collision failure / poor-landing failure.
//!
//! Paper values (Table I):
//! MLS-V1 24.67% / 71.33% / 4.00%,
//! MLS-V2 42.00% / 48.67% / 9.34%,
//! MLS-V3 84.00% / 3.33% / 12.67%.

use mls_bench::{generate_scenarios, percent, print_comparison, print_header, run_and_summarise, HarnessOptions};
use mls_compute::ComputeProfile;
use mls_core::{ExecutorConfig, LandingConfig, SystemVariant};

fn main() {
    let options = HarnessOptions::from_env();
    print_header("Table I — Experiment results of SIL testing");
    println!(
        "benchmark: {} maps x {} scenarios x {} repeats = {} missions per system, {} threads",
        options.maps,
        options.scenarios_per_map,
        options.repeats,
        options.missions_per_variant(),
        options.threads
    );

    let scenarios = generate_scenarios(&options);
    let profile = ComputeProfile::desktop_sil();
    let landing = LandingConfig::default();
    let executor = ExecutorConfig::default();

    let paper_rows = [
        (SystemVariant::MlsV1, (24.67, 71.33, 4.00)),
        (SystemVariant::MlsV2, (42.00, 48.67, 9.34)),
        (SystemVariant::MlsV3, (84.00, 3.33, 12.67)),
    ];

    println!();
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>14} {:>14}",
        "System", "Success", "Collision", "PoorLanding", "Landing err", "Detection err"
    );
    let mut summaries = Vec::new();
    for (variant, paper) in paper_rows {
        let (summary, outcomes) =
            run_and_summarise(&scenarios, variant, &profile, &landing, &executor, &options);
        println!(
            "{:<8} {:>12} {:>12} {:>12} {:>13.2}m {:>13.2}m",
            variant.label(),
            percent(summary.success_rate),
            percent(summary.collision_rate),
            percent(summary.poor_landing_rate),
            summary.mean_landing_error.unwrap_or(f64::NAN),
            summary.mean_detection_error.unwrap_or(f64::NAN),
        );
        print_comparison(
            &format!("{} successful landing rate", variant.label()),
            &format!("{:.2}%", paper.0),
            &percent(summary.success_rate),
        );
        print_comparison(
            &format!("{} failure rate due to collision", variant.label()),
            &format!("{:.2}%", paper.1),
            &percent(summary.collision_rate),
        );
        print_comparison(
            &format!("{} failure rate due to poor landing", variant.label()),
            &format!("{:.2}%", paper.2),
            &percent(summary.poor_landing_rate),
        );
        let _ = outcomes;
        summaries.push(summary);
    }

    println!();
    println!("Shape checks (the reproduction targets ordering, not absolute numbers):");
    let v1 = &summaries[0];
    let v2 = &summaries[1];
    let v3 = &summaries[2];
    println!(
        "  success ordering V1 < V2 < V3:      {}",
        v1.success_rate < v2.success_rate && v2.success_rate < v3.success_rate
    );
    println!(
        "  collision ordering V1 > V2 > V3:    {}",
        v1.collision_rate > v2.collision_rate && v2.collision_rate > v3.collision_rate
    );
    println!(
        "  V3 trades collisions for aborts:    {}",
        v3.poor_landing_rate >= v2.poor_landing_rate || v3.collision_rate < 0.1
    );
}
