//! Table I — Software-in-the-Loop comparison of MLS-V1/V2/V3.
//!
//! Reproduces the paper's SIL campaign: every system generation flies the
//! full benchmark (10 maps × 10 scenarios, half adverse weather, `MLS_REPEATS`
//! repetitions) on the desktop compute profile, and the landing outcomes are
//! bucketed into success / collision failure / poor-landing failure.
//!
//! Runs on the `mls-campaign` engine: the benchmark is expressed as a
//! baseline-only [`CampaignSpec`] (three variants × one profile × no fault)
//! and flown by the sharded [`CampaignRunner`].
//!
//! Paper values (Table I):
//! MLS-V1 24.67% / 71.33% / 4.00%,
//! MLS-V2 42.00% / 48.67% / 9.34%,
//! MLS-V3 84.00% / 3.33% / 12.67%.

use mls_bench::{percent, persist_report, print_comparison, print_header, HarnessOptions};
use mls_campaign::{CampaignRunner, CampaignSpec, CellReport};
use mls_compute::ComputeProfile;
use mls_core::SystemVariant;

fn main() {
    let options = HarnessOptions::from_env();
    print_header("Table I — Experiment results of SIL testing");
    println!(
        "benchmark: {} maps x {} scenarios x {} repeats = {} missions per system, {} threads",
        options.maps,
        options.scenarios_per_map,
        options.repeats,
        options.missions_per_variant(),
        options.threads
    );

    let spec = CampaignSpec {
        name: "table1-sil".to_string(),
        seed: options.seed,
        maps: options.maps,
        scenarios_per_map: options.scenarios_per_map,
        repeats: options.repeats,
        variants: SystemVariant::ALL.to_vec(),
        profiles: vec![ComputeProfile::desktop_sil()],
        ..CampaignSpec::default()
    };
    let report = CampaignRunner::new(options.threads)
        .run(&spec)
        .expect("the Table I campaign specification is valid");
    persist_report(&report);

    let paper_rows = [
        (SystemVariant::MlsV1, (24.67, 71.33, 4.00)),
        (SystemVariant::MlsV2, (42.00, 48.67, 9.34)),
        (SystemVariant::MlsV3, (84.00, 3.33, 12.67)),
    ];

    println!();
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>14} {:>14}",
        "System", "Success", "Collision", "PoorLanding", "Landing err", "Detection err"
    );
    let mut cells: Vec<&CellReport> = Vec::new();
    for (variant, paper) in paper_rows {
        let cell = report
            .cell(variant, "desktop-sil", None)
            .expect("the campaign grid contains every variant's baseline cell");
        println!(
            "{:<8} {:>12} {:>12} {:>12} {:>13.2}m {:>13.2}m",
            variant.label(),
            percent(cell.success_rate),
            percent(cell.collision_rate),
            percent(cell.poor_landing_rate),
            cell.landing_error.mean.unwrap_or(f64::NAN),
            cell.detection_error.mean.unwrap_or(f64::NAN),
        );
        print_comparison(
            &format!("{} successful landing rate", variant.label()),
            &format!("{:.2}%", paper.0),
            &percent(cell.success_rate),
        );
        print_comparison(
            &format!("{} failure rate due to collision", variant.label()),
            &format!("{:.2}%", paper.1),
            &percent(cell.collision_rate),
        );
        print_comparison(
            &format!("{} failure rate due to poor landing", variant.label()),
            &format!("{:.2}%", paper.2),
            &percent(cell.poor_landing_rate),
        );
        cells.push(cell);
    }

    println!();
    println!("Shape checks (the reproduction targets ordering, not absolute numbers):");
    let (v1, v2, v3) = (cells[0], cells[1], cells[2]);
    println!(
        "  success ordering V1 < V2 < V3:      {}",
        v1.success_rate < v2.success_rate && v2.success_rate < v3.success_rate
    );
    println!(
        "  collision ordering V1 > V2 > V3:    {}",
        v1.collision_rate > v2.collision_rate && v2.collision_rate > v3.collision_rate
    );
    println!(
        "  V3 trades collisions for aborts:    {}",
        v3.poor_landing_rate >= v2.poor_landing_rate || v3.collision_rate < 0.1
    );
    mls_bench::finish_obs();
}
