//! falsify — multi-dimensional falsification with replayable minimal
//! counterexamples.
//!
//! The paper's core lesson is that landing failures live at the
//! *intersection* of stressors; the scalar fault sweeps of Tables I–III
//! cannot see those intersections. This harness searches two-axis fault
//! spaces for the lowest-severity point that breaks each system generation,
//! shrinks the point onto the failure frontier, and ships it as a flight
//! trace that replays byte-identically — a failure you can re-run, not just
//! a coordinate.
//!
//! Four spaces are configured:
//!
//! * MLS-V1 — marker-occlusion bursts × GNSS bias (the Fig. 5d mechanism
//!   under intermittent blindness), grid-refinement searcher;
//! * MLS-V2 — planner search-budget starvation × wind gusts (the Fig. 5a
//!   mechanism under disturbance), grid-refinement searcher;
//! * MLS-V3 — detection-stream dropout × GNSS bias (the validated descent
//!   loses its marker and trusts a biased solution), CMA-ES searcher;
//! * MLS-V3 over the **constrained-pad scenario family** — marker-occlusion
//!   bursts × wind gusts next to a wall-adjacent pad: the measurably harder
//!   space the Fig. 6 geometry creates, where the strongest generation
//!   breaks under stressors the open benchmark absorbs.
//!
//! The combined report is written as JSON and CSV under `target/falsify/`;
//! counterexample traces land under `traces/falsify-<space>/`. The exit
//! code enforces the contract: every space must produce a counterexample
//! whose trace exists, carries a triage class and replays byte-identically.
//!
//! `MLS_MAPS` / `MLS_SCENARIOS_PER_MAP` / `MLS_REPEATS` / `MLS_SEED` /
//! `MLS_THREADS` rescale the probe campaigns as usual (defaults here are
//! deliberately small: falsification flies hundreds of missions per space).
//! `MLS_FALSIFY_SMOKE=1` searches only the constrained-pad space with a
//! minimal lattice — the few-probe CI smoke that keeps the harder space
//! green on every push.

use std::process::ExitCode;

use mls_bench::{percent, print_header, HarnessOptions};
use mls_campaign::{
    CmaEsConfig, FalsificationConfig, FalsificationSearch, FaultAxis, FaultKind, FaultSpace,
    GridRefinementConfig, Searcher, SpaceFalsification,
};
use mls_core::SystemVariant;
use mls_sim_world::ScenarioFamily;

/// One falsification target: a system generation, the scenario family and
/// fault space to search over it, and the searcher to use.
struct Target {
    variant: SystemVariant,
    family: ScenarioFamily,
    space: FaultSpace,
    searcher: Searcher,
    /// Probe-suite seed this target needs for a clean fault-free baseline
    /// (`None`: the harness default). An explicit `MLS_SEED` wins.
    seed_override: Option<u64>,
    narrative: &'static str,
}

/// The constrained-pad target: the strongest generation over the hardest
/// geometry. In smoke mode the lattice is minimal (a handful of probes) so
/// CI can fly it on every push.
fn constrained_target(smoke: bool) -> Target {
    Target {
        variant: SystemVariant::MlsV3,
        family: ScenarioFamily::ConstrainedPad,
        space: FaultSpace::new(
            "v3-constrained-occlusion-x-wind",
            vec![
                FaultAxis::full(FaultKind::MarkerOcclusion),
                FaultAxis::full(FaultKind::WindGust),
            ],
        ),
        searcher: Searcher::GridRefinement(GridRefinementConfig {
            resolution: if smoke { 2 } else { 3 },
            rounds: if smoke { 0 } else { 1 },
        }),
        // The constrained suite derives from seed ^ hash("constrained-pad"),
        // so the open default (3) names a different world here; seed 2 is a
        // suite MLS-V3 lands clean fault-free while the all-axes-at-max
        // corner still breaks it.
        seed_override: Some(2),
        narrative: "wall-adjacent pads leave no descent margin: occlusion bursts stall the \
                    validated descent beside the wall exactly when gusts push toward it — \
                    stressor levels the open benchmark absorbs",
    }
}

fn targets() -> Vec<Target> {
    vec![
        Target {
            variant: SystemVariant::MlsV1,
            family: ScenarioFamily::Open,
            // The GNSS axis is floored at intensity 0.15 (a 1.5 m bias):
            // below that the bias is physically negligible, and the floor
            // guarantees every counterexample carries the Fig. 5d signature.
            space: FaultSpace::new(
                "v1-occlusion-x-gps-bias",
                vec![
                    FaultAxis::full(FaultKind::MarkerOcclusion),
                    FaultAxis::new(FaultKind::GpsBias, 0.15, 1.0),
                ],
            ),
            searcher: Searcher::GridRefinement(GridRefinementConfig {
                resolution: 3,
                rounds: 1,
            }),
            seed_override: None,
            narrative: "occlusion bursts while the GNSS solution is biased: mapless MLS-V1 \
                        descends on a wrong, intermittently invisible target",
        },
        Target {
            variant: SystemVariant::MlsV2,
            family: ScenarioFamily::Open,
            space: FaultSpace::new(
                "v2-starvation-x-wind",
                vec![
                    FaultAxis::new(FaultKind::PlannerStarvation, 0.5, 1.0),
                    FaultAxis::full(FaultKind::WindGust),
                ],
            ),
            searcher: Searcher::GridRefinement(GridRefinementConfig {
                resolution: 3,
                rounds: 1,
            }),
            seed_override: None,
            narrative: "a starved A* pool falls back to unchecked straight lines exactly when \
                        gusts push the airframe off them",
        },
        Target {
            variant: SystemVariant::MlsV3,
            family: ScenarioFamily::Open,
            // The GNSS axis is floored as in the V1 space, so every
            // counterexample carries the drift signature.
            space: FaultSpace::new(
                "v3-dropout-x-gps-bias",
                vec![
                    FaultAxis::full(FaultKind::DetectionDropout),
                    FaultAxis::new(FaultKind::GpsBias, 0.15, 1.0),
                ],
            ),
            searcher: Searcher::CmaEs(CmaEsConfig {
                population: 6,
                generations: 4,
                initial_step: 0.3,
                seed: 7,
            }),
            seed_override: None,
            narrative: "detection-stream dropouts blind the validated descent exactly while the \
                        GNSS solution it falls back on is biased",
        },
    ]
}

/// Prints one result and returns whether it satisfies the contract:
/// counterexample found, trace persisted with a triage class, replay
/// byte-identical.
fn assess(result: &SpaceFalsification) -> bool {
    println!(
        "  baseline success {}, {} probes",
        percent(result.baseline_success_rate),
        result.probes.len(),
    );
    let Some(ce) = &result.counterexample else {
        println!("  NOT falsified: no point of the space broke the system");
        return false;
    };
    println!(
        "  minimal counterexample: {} (success rate {})",
        mls_campaign::fault_point_label(&ce.plans),
        percent(ce.success_rate),
    );
    let Some(link) = &ce.trace else {
        println!("  NO trace captured for the counterexample");
        return false;
    };
    println!(
        "  trace: {} (result {:?}, triage {})",
        link.path,
        link.result,
        link.triage.as_deref().unwrap_or("unclassified"),
    );
    match ce.replay_identical {
        Some(true) => println!("  replay: byte-identical"),
        other => {
            println!("  replay FAILED to verify: {other:?}");
            return false;
        }
    }
    if link.triage.is_none() {
        println!("  trace carries NO triage class");
        return false;
    }
    true
}

fn main() -> ExitCode {
    print_header("Falsification — minimal multi-axis failures as replayable traces");
    let options = HarnessOptions::from_env();
    // Falsification flies a whole campaign per probe and dozens of probes
    // per space, so the default probe suite is tiny (1 map × 2 scenarios);
    // an explicitly set variable wins over the smallness default, because
    // the harness-wide defaults (10×10) would make every probe a Table I.
    let env_set = |name: &str| std::env::var(name).is_ok();
    let maps = if env_set("MLS_MAPS") { options.maps } else { 1 };
    let scenarios_per_map = if env_set("MLS_SCENARIOS_PER_MAP") {
        options.scenarios_per_map
    } else {
        2
    };
    // The default benchmark seed generates a 1×2 suite whose baselines are
    // marginal; seed 3 yields a suite every generation lands clean, which is
    // what a falsification baseline needs. An explicit MLS_SEED still wins,
    // even when it names the default value.
    let seed = if env_set("MLS_SEED") { options.seed } else { 3 };
    let mut config = FalsificationConfig {
        seed,
        maps,
        scenarios_per_map,
        repeats: options.repeats,
        // With two missions per probe, a probe fails once either mission
        // fails — the single-trajectory falsification standard of the
        // literature, and every failing probe leaves a replayable trace.
        failure_threshold: 0.75,
        minimizer_passes: 1,
        minimizer_bisections: 3,
        ..FalsificationConfig::default()
    };
    // Bounded missions keep timed-out probes from dominating the search.
    config.landing.mission_timeout = 120.0;
    config.executor.max_duration = 150.0;
    let missions_per_probe = maps * scenarios_per_map * options.repeats;
    println!(
        "probe suite: {} missions per probe, threshold {}, {} threads",
        missions_per_probe, config.failure_threshold, options.threads,
    );

    // Smoke mode: only the constrained-pad space with a minimal lattice, the
    // few-probe configuration the CI `falsify-smoke` job flies on every push.
    let smoke = std::env::var("MLS_FALSIFY_SMOKE")
        .map(|v| v == "1")
        .unwrap_or(false);
    let selected = if smoke {
        println!("smoke mode: constrained-pad space only, minimal lattice");
        vec![constrained_target(true)]
    } else {
        let mut all = targets();
        all.push(constrained_target(false));
        all
    };

    let mut results = Vec::new();
    let mut all_good = true;
    for target in selected {
        println!(
            "\n{} over '{}' [{}, {} family]",
            target.variant.label(),
            target.space.name,
            target.searcher.label(),
            target.family.label(),
        );
        println!("  {}", target.narrative);
        // Each target flies its own scenario family (and, unless MLS_SEED
        // is set, its own baseline-clean probe seed); the search object is
        // otherwise identical.
        let target_seed = if env_set("MLS_SEED") {
            seed
        } else {
            target.seed_override.unwrap_or(seed)
        };
        let search = FalsificationSearch::new(
            FalsificationConfig {
                family: target.family,
                seed: target_seed,
                ..config.clone()
            },
            options.threads,
        );
        match search.falsify(target.variant, &target.space, &target.searcher) {
            Ok(result) => {
                all_good &= assess(&result);
                results.push(result);
            }
            Err(err) => {
                println!("  search failed: {err}");
                all_good = false;
            }
        }
    }

    let report = mls_campaign::FalsificationReport { results };
    println!();
    match report.to_json() {
        Ok(json) => {
            let dir = std::path::Path::new("target/falsify");
            let json_path = dir.join("report.json");
            let csv_path = dir.join("report.csv");
            let wrote = mls_obs::atomic_write(&json_path, json.as_bytes())
                .and_then(|()| mls_obs::atomic_write(&csv_path, report.to_csv().as_bytes()));
            match wrote {
                Ok(()) => println!("report: {} and {}", json_path.display(), csv_path.display()),
                Err(err) => {
                    println!("cannot write the report: {err}");
                    all_good = false;
                }
            }
        }
        Err(err) => {
            println!("cannot serialise the report: {err}");
            all_good = false;
        }
    }

    mls_bench::finish_obs();

    if all_good {
        println!("All spaces falsified; every counterexample is a triaged, replayable trace.");
        ExitCode::SUCCESS
    } else {
        println!("At least one space failed to falsify, capture, triage or replay.");
        ExitCode::FAILURE
    }
}
