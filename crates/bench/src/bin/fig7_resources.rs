//! Figure 7 — Jetson Nano resource utilisation during a mission.
//!
//! The paper plots CPU and memory utilisation of the Jetson Nano in HIL
//! testing and again during real-world flights, where the live camera
//! pipeline pushes both noticeably higher.
//!
//! The headline numbers run on the `mls-campaign` engine: one
//! [`CampaignSpec`] whose profile axis carries `jetson-nano-maxn` (HIL) and
//! `jetson-nano-realworld`, flown by the sharded [`CampaignRunner`] and
//! persisted as a replayable report. The per-second CPU sparkline is an
//! illustration on top: it re-flies one mission per profile directly,
//! because the compute model's tick-level trace is instrumentation the
//! aggregated campaign report deliberately condenses away.

use mls_bench::{generate_scenarios, persist_report, print_header, HarnessOptions};
use mls_campaign::{CampaignRunner, CampaignSpec};
use mls_compute::{ComputeModel, ComputeProfile};
use mls_core::{ExecutorConfig, LandingConfig, MissionExecutor, MissionOutcome, SystemVariant};

fn run_trace(profile: ComputeProfile, seed: u64) -> (MissionOutcome, ComputeModel) {
    let options = HarnessOptions {
        maps: 1,
        scenarios_per_map: 1,
        ..HarnessOptions::quick()
    };
    let scenarios = generate_scenarios(&options);
    let compute = ComputeModel::new(profile).expect("profile is valid");
    let executor = MissionExecutor::for_variant(
        &scenarios[0],
        SystemVariant::MlsV3,
        LandingConfig::default(),
        compute,
        ExecutorConfig::default(),
        seed,
    )
    .expect("configuration is valid");
    executor.run_with_compute()
}

fn sparkline(samples: &[f64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    samples
        .iter()
        .map(|v| LEVELS[((v.clamp(0.0, 1.0)) * (LEVELS.len() - 1) as f64).round() as usize])
        .collect()
}

/// Averages the per-tick CPU samples into one value per second of simulation.
fn per_second_cpu(model: &ComputeModel) -> Vec<f64> {
    let mut out = Vec::new();
    let mut bucket = Vec::new();
    let mut next_second = 1.0;
    for sample in model.trace() {
        if sample.time > next_second {
            if !bucket.is_empty() {
                out.push(bucket.iter().sum::<f64>() / bucket.len() as f64);
                bucket.clear();
            }
            next_second += 1.0;
        }
        bucket.push(sample.cpu);
    }
    if !bucket.is_empty() {
        out.push(bucket.iter().sum::<f64>() / bucket.len() as f64);
    }
    out
}

fn main() {
    print_header("Figure 7 — Jetson Nano performance (HIL vs real-world)");

    // The campaign: MLS-V3 over a small suite, HIL and real-world Jetson
    // profiles as the grid's profile axis.
    let mut options = HarnessOptions::from_env();
    options.maps = options.maps.min(2);
    options.scenarios_per_map = options.scenarios_per_map.min(3);
    let profiles = [
        ("HIL (jetson-nano-maxn)", ComputeProfile::jetson_nano_maxn()),
        (
            "Real-world (jetson-nano-realworld)",
            ComputeProfile::jetson_nano_realworld(),
        ),
    ];
    let spec = CampaignSpec {
        name: "fig7-resources".to_string(),
        seed: options.seed,
        maps: options.maps,
        scenarios_per_map: options.scenarios_per_map,
        repeats: options.repeats,
        variants: vec![SystemVariant::MlsV3],
        profiles: profiles.iter().map(|(_, p)| p.clone()).collect(),
        ..CampaignSpec::default()
    };
    let report = CampaignRunner::new(options.threads)
        .run(&spec)
        .expect("the Fig. 7 campaign specification is valid");

    println!();
    println!(
        "{:<38} {:>10} {:>12} {:>16} {:>20}",
        "Campaign", "mean CPU", "p95 CPU", "peak memory MiB", "p95 plan latency (s)"
    );
    let mut mean_cpu = Vec::new();
    for (label, profile) in &profiles {
        let cell = report
            .cell(SystemVariant::MlsV3, &profile.name, None)
            .expect("the campaign grid contains every profile's baseline cell");
        println!(
            "{:<38} {:>9.0}% {:>11.0}% {:>16.0} {:>20.3}",
            label,
            cell.mean_cpu.mean.unwrap_or(f64::NAN) * 100.0,
            cell.mean_cpu.p95.unwrap_or(f64::NAN) * 100.0,
            cell.peak_memory_mb.max.unwrap_or(f64::NAN),
            cell.worst_planning_latency.p95.unwrap_or(f64::NAN),
        );
        mean_cpu.push(cell.mean_cpu.mean.unwrap_or(f64::NAN));
    }
    persist_report(&report);

    // Illustration: one mission per profile re-flown with the tick-level
    // compute trace attached.
    for (label, profile) in &profiles {
        let (outcome, model) = run_trace(profile.clone(), 5);
        let cpu = per_second_cpu(&model);
        println!();
        println!(
            "{label} — scenario `{}`, result {:?}",
            outcome.scenario_name, outcome.result
        );
        println!("  CPU trace ({} s):", cpu.len());
        println!("  {}", sparkline(&cpu));
        println!(
            "  mean CPU {:.0}%   peak CPU {:.0}%   peak memory {:.0} MiB of {:.0} MiB",
            outcome.mean_cpu * 100.0,
            cpu.iter().fold(0.0f64, |a, &b| a.max(b)) * 100.0,
            outcome.peak_memory_mb,
            model.profile().available_memory_mb,
        );
        println!(
            "  worst planning latency {:.0} ms   detection frames {}",
            outcome.worst_planning_latency * 1000.0,
            outcome.detection_stats.total_frames
        );
    }

    println!();
    println!("Expected shape (paper): the real-world trace sits above the HIL trace in both");
    println!(
        "CPU and memory because of the live camera processing and communication. Measured: {}",
        if mean_cpu.len() == 2 && mean_cpu[1] > mean_cpu[0] {
            "reproduced"
        } else {
            "check the traces above"
        }
    );
    mls_bench::finish_obs();
}
