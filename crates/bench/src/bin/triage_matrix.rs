//! triage_matrix — the triage-classifier validation harness behind CI's
//! `triage-matrix-smoke` job.
//!
//! Runs a ground-truth campaign grid — every [`FaultKind`] at full
//! intensity, across two scenario families, with trace capture for *all*
//! missions — ingests the resulting corpus, and cross-tabulates the
//! injected fault kind against the triage class the corpus recorded for
//! each trace. The confusion matrix, with per-class precision/recall, is
//! written to `target/reports/triage_matrix.{json,csv}` and printed as a
//! table; the run *fails by exit code* when fewer than
//! [`MIN_TRACES`] traces were ingested or any pinned class's recall falls
//! below its floor — classifier quality is a tested contract, not a
//! claim.
//!
//! The grid is split by fault mechanism, mirroring the Fig. 5 case
//! studies: the vision-channel and physical-channel kinds fly on MLS v1
//! (whose thin pipeline fails them plentifully), while depth corruption,
//! planner starvation and compute throttling fly on MLS v3 — the only
//! generation with the mapping and sampling-planner subsystems those
//! faults attack (on v1 they are no-ops and would poison the ground
//! truth with baseline failures).
//!
//! `MLS_SEED` moves the seed, and `MLS_REPEATS` (values above the default
//! 3) deepens the grid for full-scale validation runs.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use mls_bench::{finish_obs, print_header, HarnessOptions, TriageMatrix};
use mls_campaign::{
    CampaignRunner, CampaignSpec, CorpusRecord, FaultKind, FaultPlan, TraceCorpus, TracePolicy,
};
use mls_core::SystemVariant;
use mls_sim_world::ScenarioFamily;
use mls_trace::Fig5Class;

/// Minimum ingested ground-truth traces for the matrix to count — the
/// acceptance bar CI enforces.
const MIN_TRACES: usize = 200;

/// Fault kinds flown on MLS v1: vision-channel and physical-channel
/// mechanisms the first generation already has.
const V1_KINDS: &[FaultKind] = &[
    FaultKind::MarkerOcclusion,
    FaultKind::DetectionDropout,
    FaultKind::MarkerSpoof,
    FaultKind::GpsBias,
    FaultKind::WindGust,
];

/// Fault kinds flown on MLS v3: they attack the occupancy map and the
/// sampling planner, subsystems only the third generation carries.
const V3_KINDS: &[FaultKind] = &[
    FaultKind::ComputeThrottle,
    FaultKind::DepthCorruption,
    FaultKind::PlannerStarvation,
];

/// Pinned per-class recall floors, set a safety margin below the values
/// measured on the default grid (seed 2025: perception-loss 0.951,
/// map-corruption 1.000, gps-drift 0.737, planner-exhaustion 0.250) so a
/// real classifier regression trips them while a re-seeded grid does not.
///
/// `TrajectoryLagCollision` carries no floor yet: compute-throttle
/// failures on MLS-V3 present as timeout stalls with healthy plans, which
/// the collision-gated lag class cannot claim (observed recall 0.000) —
/// recovering lag from throttle is an open classifier item tracked in
/// ROADMAP.md, not an enforceable contract.
const RECALL_FLOORS: &[(Fig5Class, f64)] = &[
    (Fig5Class::PerceptionLoss, 0.60),
    (Fig5Class::GpsDrift, 0.45),
    (Fig5Class::MapCorruption, 0.60),
    (Fig5Class::PlannerExhaustion, 0.20),
];

/// One ground-truth sub-grid: the given fault kinds at full intensity ×
/// two scenario families on one system generation, every trace captured.
fn grid_spec(
    seed: u64,
    repeats: usize,
    variant: SystemVariant,
    kinds: &[FaultKind],
) -> CampaignSpec {
    let mut spec = CampaignSpec {
        name: format!("triage-matrix-{}", variant.label()),
        seed,
        maps: 1,
        scenarios_per_map: 5,
        repeats,
        families: vec![ScenarioFamily::Open, ScenarioFamily::ConstrainedPad],
        variants: vec![variant],
        baseline: false,
        faults: kinds
            .iter()
            .map(|kind| FaultPlan::new(*kind, 1.0))
            .collect(),
        capture: TracePolicy::All,
        ..CampaignSpec::default()
    };
    spec.landing.mission_timeout = 150.0;
    spec.executor.max_duration = 180.0;
    spec
}

fn print_matrix(matrix: &TriageMatrix) {
    let width = matrix
        .columns
        .iter()
        .map(|column| column.len())
        .max()
        .unwrap_or(12);
    print!("{:22} {:>24}", "injected \\ predicted", "expected");
    for column in &matrix.columns {
        print!(" {column:>width$}");
    }
    println!();
    for row in &matrix.rows {
        print!("{:22} {:>24}", row.kind, row.expected);
        for count in &row.counts {
            print!(" {count:>width$}");
        }
        println!();
    }
    println!();
    println!(
        "{:26} {:>8} {:>8} {:>10} {:>10} {:>8}",
        "class", "support", "correct", "predicted", "precision", "recall"
    );
    for score in &matrix.scores {
        println!(
            "{:26} {:>8} {:>8} {:>10} {:>10.3} {:>8.3}",
            score.class,
            score.support,
            score.correct,
            score.predicted,
            score.precision,
            score.recall
        );
    }
}

fn main() -> ExitCode {
    print_header("triage_matrix — classifier confusion matrix on a ground-truth grid");
    let options = HarnessOptions::from_env();
    let repeats = options.repeats.max(3);
    let grids = [
        (SystemVariant::MlsV1, V1_KINDS),
        (SystemVariant::MlsV3, V3_KINDS),
    ];

    let root = PathBuf::from("target/triage-matrix-traces");
    let _ = std::fs::remove_dir_all(&root);
    let mut records: Vec<CorpusRecord> = Vec::new();
    let mut signatures = 0usize;
    for (variant, kinds) in grids {
        let spec = grid_spec(options.seed, repeats, variant, kinds);
        let trace_dir = root.join(variant.label());
        println!(
            "{}: {} cells ({} fault kinds × {} families) × {} missions, {} threads, seed {}",
            spec.name,
            spec.cells().len(),
            kinds.len(),
            spec.families.len(),
            spec.missions_per_cell(),
            options.threads,
            spec.seed,
        );
        let start = Instant::now();
        let report = match CampaignRunner::new(options.threads)
            .with_trace_dir(&trace_dir)
            .run(&spec)
        {
            Ok(report) => report,
            Err(err) => {
                println!("ground-truth campaign failed: {err}");
                return ExitCode::FAILURE;
            }
        };
        let corpus = match TraceCorpus::open(&trace_dir) {
            Ok(corpus) => corpus,
            Err(err) => {
                println!("opening the {} corpus failed: {err}", spec.name);
                return ExitCode::FAILURE;
            }
        };
        println!(
            "  flew {} missions in {:.1} s — {} traces ingested, {} distinct failure signatures",
            report.missions,
            start.elapsed().as_secs_f64(),
            corpus.len(),
            corpus.distinct_signatures()
        );
        signatures += corpus.distinct_signatures();
        records.extend(corpus.records().iter().cloned());
    }
    println!(
        "corpus: {} traces, {} distinct failure signatures\n",
        records.len(),
        signatures
    );

    let matrix = TriageMatrix::from_records(&records);
    print_matrix(&matrix);

    let reports = PathBuf::from("target/reports");
    let json = match matrix.to_json() {
        Ok(json) => json,
        Err(err) => {
            println!("encoding the matrix failed: {err}");
            return ExitCode::FAILURE;
        }
    };
    let json_path = reports.join("triage_matrix.json");
    let csv_path = reports.join("triage_matrix.csv");
    if let Err(err) = mls_obs::atomic_write(&json_path, json.as_bytes())
        .and_then(|()| mls_obs::atomic_write(&csv_path, matrix.to_csv().as_bytes()))
    {
        println!("writing matrix artifacts failed: {err}");
        return ExitCode::FAILURE;
    }
    println!("\nwrote {} and {}", json_path.display(), csv_path.display());

    finish_obs();
    let mut failed = false;
    if matrix.total < MIN_TRACES {
        println!(
            "FAILED: only {} traces ingested, the bar is {MIN_TRACES}",
            matrix.total
        );
        failed = true;
    }
    for violation in matrix.check_recall_floors(RECALL_FLOORS) {
        println!("FAILED: {violation}");
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!(
            "\ntriage matrix: {} traces, every pinned recall floor holds",
            matrix.total
        );
        ExitCode::SUCCESS
    }
}
