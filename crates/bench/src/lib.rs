//! Shared harness utilities for the table/figure reproduction binaries.
//!
//! Every binary in `src/bin/` reproduces one table or figure of the paper's
//! evaluation. They share the same scaffolding: generate the benchmark
//! scenario suite, fly a set of system variants over it on a chosen compute
//! profile (in parallel across OS threads), aggregate the outcomes, and print
//! a plain-text table next to the values the paper reports.
//!
//! The workload size is controlled by environment variables so the same
//! binaries serve both quick smoke runs and the full reproduction:
//!
//! | Variable | Meaning | Default |
//! |---|---|---|
//! | `MLS_MAPS` | number of benchmark maps | 10 |
//! | `MLS_SCENARIOS_PER_MAP` | scenarios per map | 10 |
//! | `MLS_REPEATS` | repetitions per scenario | 1 (paper: 3) |
//! | `MLS_THREADS` | worker threads | available parallelism |
//! | `MLS_SEED` | benchmark seed | 2025 |
//! | `MLS_QUICK` | set to `1` for a 3×4 smoke benchmark | unset |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mls_compute::{ComputeModel, ComputeProfile};
use mls_core::{
    BenchmarkSummary, ExecutorConfig, LandingConfig, MissionExecutor, MissionOutcome, SystemVariant,
};
use mls_sim_world::{Scenario, ScenarioConfig, ScenarioGenerator};

/// Workload sizing for a harness run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HarnessOptions {
    /// Number of benchmark maps.
    pub maps: usize,
    /// Scenarios generated per map.
    pub scenarios_per_map: usize,
    /// Repetitions of every scenario (the paper uses 3).
    pub repeats: usize,
    /// Worker threads used to fly missions in parallel.
    pub threads: usize,
    /// Benchmark seed.
    pub seed: u64,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        Self {
            maps: 10,
            scenarios_per_map: 10,
            repeats: 1,
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            seed: 2025,
        }
    }
}

impl HarnessOptions {
    /// A small smoke-test workload (3 maps × 4 scenarios).
    pub fn quick() -> Self {
        Self {
            maps: 3,
            scenarios_per_map: 4,
            repeats: 1,
            ..Self::default()
        }
    }

    /// Reads the workload size from the `MLS_*` environment variables.
    pub fn from_env() -> Self {
        let mut options = if std::env::var("MLS_QUICK").map(|v| v == "1").unwrap_or(false) {
            Self::quick()
        } else {
            Self::default()
        };
        let read = |name: &str| std::env::var(name).ok().and_then(|v| v.parse::<usize>().ok());
        if let Some(v) = read("MLS_MAPS") {
            options.maps = v.max(1);
        }
        if let Some(v) = read("MLS_SCENARIOS_PER_MAP") {
            options.scenarios_per_map = v.max(1);
        }
        if let Some(v) = read("MLS_REPEATS") {
            options.repeats = v.max(1);
        }
        if let Some(v) = read("MLS_THREADS") {
            options.threads = v.max(1);
        }
        if let Some(v) = std::env::var("MLS_SEED").ok().and_then(|v| v.parse::<u64>().ok()) {
            options.seed = v;
        }
        options
    }

    /// Total missions flown per system variant.
    pub fn missions_per_variant(&self) -> usize {
        self.maps * self.scenarios_per_map * self.repeats
    }
}

/// Generates the benchmark scenario suite for a set of options.
///
/// # Panics
///
/// Panics when the scenario generator rejects the options (zero maps), which
/// [`HarnessOptions`] prevents.
pub fn generate_scenarios(options: &HarnessOptions) -> Vec<Scenario> {
    let config = ScenarioConfig {
        maps: options.maps,
        scenarios_per_map: options.scenarios_per_map,
        ..ScenarioConfig::default()
    };
    ScenarioGenerator::new(config)
        .generate_benchmark(options.seed)
        .expect("benchmark scenario generation cannot fail for validated options")
}

/// Flies one system variant over every scenario (times `repeats`), spreading
/// the missions over `threads` OS threads.
pub fn run_missions(
    scenarios: &[Scenario],
    variant: SystemVariant,
    profile: &ComputeProfile,
    landing: &LandingConfig,
    executor: &ExecutorConfig,
    options: &HarnessOptions,
) -> Vec<MissionOutcome> {
    let mut jobs: Vec<(usize, &Scenario, u64)> = Vec::new();
    for repeat in 0..options.repeats {
        for scenario in scenarios {
            let seed = options
                .seed
                .wrapping_mul(31)
                .wrapping_add(scenario.id as u64)
                .wrapping_add((repeat as u64) << 24);
            jobs.push((jobs.len(), scenario, seed));
        }
    }

    let threads = options.threads.max(1).min(jobs.len().max(1));
    let mut outcomes: Vec<Option<MissionOutcome>> = vec![None; jobs.len()];
    let chunk_size = jobs.len().div_ceil(threads);

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (chunk_index, chunk) in jobs.chunks(chunk_size).enumerate() {
            let profile = profile.clone();
            let landing = landing.clone();
            let executor_config = executor.clone();
            handles.push((
                chunk_index,
                scope.spawn(move || {
                    chunk
                        .iter()
                        .map(|(job_index, scenario, seed)| {
                            let compute = ComputeModel::new(profile.clone())
                                .expect("benchmark compute profiles are valid");
                            let mission = MissionExecutor::for_variant(
                                scenario,
                                variant,
                                landing.clone(),
                                compute,
                                executor_config.clone(),
                                *seed,
                            )
                            .expect("benchmark landing configuration is valid");
                            (*job_index, mission.run())
                        })
                        .collect::<Vec<(usize, MissionOutcome)>>()
                }),
            ));
        }
        for (_, handle) in handles {
            for (job_index, outcome) in handle.join().expect("mission worker thread panicked") {
                outcomes[job_index] = Some(outcome);
            }
        }
    });

    outcomes.into_iter().map(|o| o.expect("every job ran")).collect()
}

/// Runs a variant and aggregates it into a summary in one call.
pub fn run_and_summarise(
    scenarios: &[Scenario],
    variant: SystemVariant,
    profile: &ComputeProfile,
    landing: &LandingConfig,
    executor: &ExecutorConfig,
    options: &HarnessOptions,
) -> (BenchmarkSummary, Vec<MissionOutcome>) {
    let outcomes = run_missions(scenarios, variant, profile, landing, executor, options);
    (BenchmarkSummary::from_outcomes(variant, &outcomes), outcomes)
}

/// Prints a boxed section header.
pub fn print_header(title: &str) {
    println!();
    println!("==================================================================");
    println!("{title}");
    println!("==================================================================");
}

/// Formats a fraction as a percentage with two decimals.
pub fn percent(value: f64) -> String {
    format!("{:.2}%", value * 100.0)
}

/// Prints the paper-reported value next to the measured one.
pub fn print_comparison(label: &str, paper: &str, measured: &str) {
    println!("  {label:<42} paper: {paper:>10}   measured: {measured:>10}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_options_are_smaller_than_default() {
        let quick = HarnessOptions::quick();
        let full = HarnessOptions::default();
        assert!(quick.missions_per_variant() < full.missions_per_variant());
        assert_eq!(full.missions_per_variant(), 100);
    }

    #[test]
    fn scenario_generation_matches_options() {
        let options = HarnessOptions {
            maps: 2,
            scenarios_per_map: 3,
            ..HarnessOptions::quick()
        };
        let scenarios = generate_scenarios(&options);
        assert_eq!(scenarios.len(), 6);
    }

    #[test]
    fn percent_formatting() {
        assert_eq!(percent(0.8432), "84.32%");
        assert_eq!(percent(0.0), "0.00%");
    }

    #[test]
    fn missions_run_in_parallel_and_preserve_order() {
        let options = HarnessOptions {
            maps: 1,
            scenarios_per_map: 2,
            repeats: 1,
            threads: 2,
            seed: 3,
        };
        let scenarios = generate_scenarios(&options);
        let outcomes = run_missions(
            &scenarios,
            SystemVariant::MlsV1,
            &ComputeProfile::desktop_sil(),
            &LandingConfig::default(),
            &ExecutorConfig::default(),
            &options,
        );
        assert_eq!(outcomes.len(), 2);
        assert_eq!(outcomes[0].scenario_id, scenarios[0].id);
        assert_eq!(outcomes[1].scenario_id, scenarios[1].id);
    }
}
