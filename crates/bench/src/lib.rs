//! Shared harness utilities for the table/figure reproduction binaries.
//!
//! Every binary in `src/bin/` reproduces one table or figure of the paper's
//! evaluation. They share the same scaffolding: generate the benchmark
//! scenario suite, fly a set of system variants over it on a chosen compute
//! profile (in parallel across OS threads), aggregate the outcomes, and print
//! a plain-text table next to the values the paper reports.
//!
//! Mission sharding is delegated to the `mls-campaign` engine's persistent
//! work-stealing pool ([`mls_campaign::MissionExecutor`]), whose worker
//! threads are spawned once per process and shared across every batch; the
//! campaign-grid binaries (`table1_sil`, `table2_detection`, `table3_hil`,
//! `fig6_inflation`) go further and run entirely on
//! [`mls_campaign::CampaignRunner`], `fig5_failure_cases` adds the
//! `mls-trace` flight recorder on top (capture → triage → byte-exact replay
//! of the paper's four failure narratives), `falsify` runs the
//! multi-dimensional falsification engine end to end (search three two-axis
//! fault spaces, minimize each counterexample onto the failure frontier,
//! and ship it as a triaged, replay-verified trace), and `perfsuite` times
//! the canonical workloads and writes the `BENCH_perf.json` trajectory.
//!
//! The workload size is controlled by environment variables so the same
//! binaries serve both quick smoke runs and the full reproduction:
//!
//! | Variable | Meaning | Default |
//! |---|---|---|
//! | `MLS_MAPS` | number of benchmark maps | 10 |
//! | `MLS_SCENARIOS_PER_MAP` | scenarios per map | 10 |
//! | `MLS_REPEATS` | repetitions per scenario | 1 (paper: 3) |
//! | `MLS_THREADS` | worker threads (capped at 512) | available parallelism |
//! | `MLS_SEED` | benchmark seed | 2025 |
//! | `MLS_QUICK` | set to `1` for a 3×4 smoke benchmark | unset |
//!
//! A value of `0` for any `MLS_*` sizing variable means "use the default",
//! consistently across variables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod confusion;

pub use confusion::{expected_class, ClassScore, MatrixRow, TriageMatrix};

use mls_compute::{ComputeModel, ComputeProfile};
use mls_core::{
    BenchmarkSummary, ExecutorConfig, LandingConfig, MissionExecutor, MissionOutcome, SystemVariant,
};
use mls_sim_world::{Scenario, ScenarioConfig, ScenarioGenerator};
use serde::Serialize;

/// Upper bound on the worker-thread count accepted from `MLS_THREADS`; a
/// typo like `MLS_THREADS=10000` would otherwise ask the OS for ten thousand
/// stacks.
pub const MAX_THREADS: usize = 512;

/// Workload sizing for a harness run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HarnessOptions {
    /// Number of benchmark maps.
    pub maps: usize,
    /// Scenarios generated per map.
    pub scenarios_per_map: usize,
    /// Repetitions of every scenario (the paper uses 3).
    pub repeats: usize,
    /// Worker threads used to fly missions in parallel.
    pub threads: usize,
    /// Benchmark seed.
    pub seed: u64,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        Self {
            maps: 10,
            scenarios_per_map: 10,
            repeats: 1,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            seed: 2025,
        }
    }
}

impl HarnessOptions {
    /// A small smoke-test workload (3 maps × 4 scenarios).
    pub fn quick() -> Self {
        Self {
            maps: 3,
            scenarios_per_map: 4,
            repeats: 1,
            ..Self::default()
        }
    }

    /// Reads the workload size from the `MLS_*` environment variables.
    pub fn from_env() -> Self {
        Self::from_lookup(|name| std::env::var(name).ok())
    }

    /// Reads the workload size through an arbitrary variable lookup (the
    /// seam the unit tests use; [`HarnessOptions::from_env`] passes
    /// `std::env::var`).
    ///
    /// Parsing is strict but forgiving in effect: unset, unparsable and `0`
    /// values all mean "keep the default", and the thread count is clamped
    /// to [`MAX_THREADS`].
    pub fn from_lookup(lookup: impl Fn(&str) -> Option<String>) -> Self {
        let mut options = if lookup("MLS_QUICK").map(|v| v == "1").unwrap_or(false) {
            Self::quick()
        } else {
            Self::default()
        };
        // `0` is treated as "unset" for every sizing variable: a disabled
        // knob falls back to the default instead of silently becoming 1.
        let read = |name: &str| {
            lookup(name)
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&v| v > 0)
        };
        if let Some(v) = read("MLS_MAPS") {
            options.maps = v;
        }
        if let Some(v) = read("MLS_SCENARIOS_PER_MAP") {
            options.scenarios_per_map = v;
        }
        if let Some(v) = read("MLS_REPEATS") {
            options.repeats = v;
        }
        if let Some(v) = read("MLS_THREADS") {
            options.threads = v.min(MAX_THREADS);
        }
        if let Some(v) = lookup("MLS_SEED").and_then(|v| v.trim().parse::<u64>().ok()) {
            options.seed = v;
        }
        options
    }

    /// Total missions flown per system variant.
    pub fn missions_per_variant(&self) -> usize {
        self.maps * self.scenarios_per_map * self.repeats
    }
}

/// Generates the benchmark scenario suite for a set of options.
///
/// # Panics
///
/// Panics when the scenario generator rejects the options (zero maps), which
/// [`HarnessOptions`] prevents.
pub fn generate_scenarios(options: &HarnessOptions) -> Vec<Scenario> {
    let config = ScenarioConfig {
        maps: options.maps,
        scenarios_per_map: options.scenarios_per_map,
        ..ScenarioConfig::default()
    };
    ScenarioGenerator::new(config)
        .generate_benchmark(options.seed)
        .expect("benchmark scenario generation cannot fail for validated options")
}

/// Flies one system variant over every scenario (times `repeats`) on the
/// campaign engine's persistent work-stealing mission pool
/// ([`mls_campaign::MissionExecutor::global`]), so repeated harness calls
/// (one per variant and profile) reuse the same worker threads.
///
/// Outcomes are returned in job order (scenario-major within each repeat)
/// regardless of how the pool schedules them; mission seeds are pure
/// functions of (benchmark seed, scenario id, repeat), so results are
/// independent of the thread count.
pub fn run_missions(
    scenarios: &[Scenario],
    variant: SystemVariant,
    profile: &ComputeProfile,
    landing: &LandingConfig,
    executor: &ExecutorConfig,
    options: &HarnessOptions,
) -> Vec<MissionOutcome> {
    let mut jobs: Vec<(usize, u64)> = Vec::new();
    for repeat in 0..options.repeats {
        for (index, scenario) in scenarios.iter().enumerate() {
            let seed = options
                .seed
                .wrapping_mul(31)
                .wrapping_add(scenario.id as u64)
                .wrapping_add((repeat as u64) << 24);
            jobs.push((index, seed));
        }
    }

    // The persistent pool's job closures outlive this call's borrows, so
    // the per-call context is moved into shared ownership once.
    let context = std::sync::Arc::new((
        scenarios.to_vec(),
        profile.clone(),
        landing.clone(),
        executor.clone(),
        jobs,
    ));
    let count = context.4.len();
    mls_campaign::MissionExecutor::global().execute(count, options.threads, move |index| {
        let (scenarios, profile, landing, executor, jobs) = &*context;
        let (scenario_index, seed) = jobs[index];
        let compute =
            ComputeModel::new(profile.clone()).expect("benchmark compute profiles are valid");
        MissionExecutor::for_variant(
            &scenarios[scenario_index],
            variant,
            landing.clone(),
            compute,
            executor.clone(),
            seed,
        )
        .expect("benchmark landing configuration is valid")
        .run()
    })
}

/// Runs a variant and aggregates it into a summary in one call.
pub fn run_and_summarise(
    scenarios: &[Scenario],
    variant: SystemVariant,
    profile: &ComputeProfile,
    landing: &LandingConfig,
    executor: &ExecutorConfig,
    options: &HarnessOptions,
) -> (BenchmarkSummary, Vec<MissionOutcome>) {
    let outcomes = run_missions(scenarios, variant, profile, landing, executor, options);
    (
        BenchmarkSummary::from_outcomes(variant, &outcomes),
        outcomes,
    )
}

/// Host metadata stamped into persisted measurement reports
/// (`BENCH_perf.json`), so numbers stay attributable to the machine,
/// build profile and commit that produced them.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct HostMeta {
    /// Logical cores available to the process.
    pub cores: usize,
    /// Cargo build profile the binary was compiled under (`release`,
    /// `debug`, ...), resolved at build time.
    pub profile: String,
    /// Short git revision of the checkout the binary was built from
    /// (`unknown` when the build ran outside a git checkout).
    pub git_rev: String,
}

impl HostMeta {
    /// Captures the metadata of the running host and binary.
    pub fn capture() -> Self {
        Self {
            cores: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            profile: env!("MLS_BUILD_PROFILE").to_string(),
            git_rev: env!("MLS_GIT_REV").to_string(),
        }
    }
}

/// Flushes the observability sinks at the end of a bench run and prints
/// where the artifacts landed. Every bench binary calls this last; it is
/// silent (and free) when `MLS_OBS` is off.
pub fn finish_obs() {
    for path in mls_obs::flush() {
        println!("  [obs: {}]", path.display());
    }
}

/// Persists a campaign report as JSON + CSV under `target/reports/`, keyed
/// by the report (= spec) name, and prints where it landed. Every bench
/// binary calls this for each campaign it flies, so every table and figure
/// is backed by a replayable `CampaignSpec` artifact.
///
/// Write failures are reported but non-fatal: the printed tables remain
/// useful on a read-only checkout.
pub fn persist_report(report: &mls_campaign::CampaignReport) {
    let dir = std::path::Path::new("target/reports");
    let written = report
        .to_json()
        .map_err(|e| e.to_string())
        .and_then(|json| {
            mls_obs::atomic_write(&dir.join(format!("{}.json", report.name)), json.as_bytes())
                .map_err(|e| e.to_string())
        })
        .and_then(|()| {
            mls_obs::atomic_write(
                &dir.join(format!("{}.csv", report.name)),
                report.to_csv().as_bytes(),
            )
            .map_err(|e| e.to_string())
        });
    match written {
        Ok(()) => println!(
            "  [report: target/reports/{}.json (+ .csv), replayable campaign artifact]",
            report.name
        ),
        Err(err) => println!("  [report {} could not be persisted: {err}]", report.name),
    }
}

/// Prints a boxed section header.
pub fn print_header(title: &str) {
    println!();
    println!("==================================================================");
    println!("{title}");
    println!("==================================================================");
}

/// Formats a fraction as a percentage with two decimals.
pub fn percent(value: f64) -> String {
    format!("{:.2}%", value * 100.0)
}

/// Prints the paper-reported value next to the measured one.
pub fn print_comparison(label: &str, paper: &str, measured: &str) {
    println!("  {label:<42} paper: {paper:>10}   measured: {measured:>10}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_options_are_smaller_than_default() {
        let quick = HarnessOptions::quick();
        let full = HarnessOptions::default();
        assert!(quick.missions_per_variant() < full.missions_per_variant());
        assert_eq!(full.missions_per_variant(), 100);
    }

    #[test]
    fn scenario_generation_matches_options() {
        let options = HarnessOptions {
            maps: 2,
            scenarios_per_map: 3,
            ..HarnessOptions::quick()
        };
        let scenarios = generate_scenarios(&options);
        assert_eq!(scenarios.len(), 6);
    }

    #[test]
    fn host_meta_is_stamped_at_build_time() {
        let meta = HostMeta::capture();
        assert!(meta.cores >= 1);
        assert!(!meta.profile.is_empty(), "build.rs must stamp the profile");
        assert!(!meta.git_rev.is_empty(), "build.rs must stamp the revision");
    }

    #[test]
    fn percent_formatting() {
        assert_eq!(percent(0.8432), "84.32%");
        assert_eq!(percent(0.0), "0.00%");
    }

    fn lookup_from<'a>(pairs: &'a [(&'a str, &'a str)]) -> impl Fn(&str) -> Option<String> + 'a {
        move |name| {
            pairs
                .iter()
                .find(|(key, _)| *key == name)
                .map(|(_, value)| (*value).to_string())
        }
    }

    #[test]
    fn from_lookup_with_nothing_set_is_the_default() {
        let options = HarnessOptions::from_lookup(lookup_from(&[]));
        assert_eq!(options, HarnessOptions::default());
    }

    #[test]
    fn from_lookup_reads_every_variable() {
        let options = HarnessOptions::from_lookup(lookup_from(&[
            ("MLS_MAPS", "4"),
            ("MLS_SCENARIOS_PER_MAP", "5"),
            ("MLS_REPEATS", "2"),
            ("MLS_THREADS", "3"),
            ("MLS_SEED", "99"),
        ]));
        assert_eq!(options.maps, 4);
        assert_eq!(options.scenarios_per_map, 5);
        assert_eq!(options.repeats, 2);
        assert_eq!(options.threads, 3);
        assert_eq!(options.seed, 99);
    }

    #[test]
    fn zero_means_default_for_every_sizing_variable() {
        let defaults = HarnessOptions::default();
        let options = HarnessOptions::from_lookup(lookup_from(&[
            ("MLS_MAPS", "0"),
            ("MLS_SCENARIOS_PER_MAP", "0"),
            ("MLS_REPEATS", "0"),
            ("MLS_THREADS", "0"),
        ]));
        assert_eq!(options, defaults);
    }

    #[test]
    fn garbage_values_fall_back_to_the_default() {
        let defaults = HarnessOptions::default();
        let options = HarnessOptions::from_lookup(lookup_from(&[
            ("MLS_MAPS", "many"),
            ("MLS_THREADS", "-3"),
            ("MLS_SEED", "12.5"),
        ]));
        assert_eq!(options, defaults);
    }

    #[test]
    fn thread_count_is_clamped_and_whitespace_tolerated() {
        let options = HarnessOptions::from_lookup(lookup_from(&[
            ("MLS_THREADS", "1000000"),
            ("MLS_MAPS", " 7 "),
        ]));
        assert_eq!(options.threads, MAX_THREADS);
        assert_eq!(options.maps, 7);
    }

    #[test]
    fn quick_flag_composes_with_overrides() {
        let options =
            HarnessOptions::from_lookup(lookup_from(&[("MLS_QUICK", "1"), ("MLS_REPEATS", "2")]));
        assert_eq!(options.maps, HarnessOptions::quick().maps);
        assert_eq!(options.repeats, 2);
        // MLS_QUICK values other than "1" are ignored.
        let options = HarnessOptions::from_lookup(lookup_from(&[("MLS_QUICK", "yes")]));
        assert_eq!(options.maps, HarnessOptions::default().maps);
    }

    #[test]
    fn missions_run_in_parallel_and_preserve_order() {
        let options = HarnessOptions {
            maps: 1,
            scenarios_per_map: 2,
            repeats: 1,
            threads: 2,
            seed: 3,
        };
        let scenarios = generate_scenarios(&options);
        let outcomes = run_missions(
            &scenarios,
            SystemVariant::MlsV1,
            &ComputeProfile::desktop_sil(),
            &LandingConfig::default(),
            &ExecutorConfig::default(),
            &options,
        );
        assert_eq!(outcomes.len(), 2);
        assert_eq!(outcomes[0].scenario_id, scenarios[0].id);
        assert_eq!(outcomes[1].scenario_id, scenarios[1].id);
    }
}
