//! The triage confusion matrix: scoring the Fig. 5 classifier against a
//! ground-truth corpus.
//!
//! A campaign that injects exactly one fault kind per cell is a labelled
//! dataset: the injected [`FaultKind`] is the ground truth, the triage
//! class the corpus recorded for each captured trace is the prediction.
//! Cross-tabulating the two gives the confusion matrix the `triage_matrix`
//! harness emits, and per-class precision/recall turn classifier quality
//! into an enforceable contract — CI fails when any pinned class's recall
//! regresses below its floor.
//!
//! Scoring conventions:
//!
//! * Successful missions land in the `success` column and are excluded
//!   from precision/recall — the classifier never claims successes by
//!   design, so they carry no signal about it.
//! * Failed missions the classifier declined to claim land in the
//!   `unclassified` column and count *against* recall.
//! * Ground truth comes from the single fault axis a record flew
//!   ([`CorpusRecord::coordinates`]); records with zero or several axes
//!   (baselines, combo cells) are skipped and counted in
//!   [`TriageMatrix::skipped`].

use std::collections::BTreeMap;

use mls_campaign::{CorpusRecord, FaultKind};
use mls_trace::Fig5Class;
use serde::Serialize;

/// The Fig. 5 class a single-kind injection is expected to be triaged as —
/// the ground-truth labelling of the confusion matrix. `None` for the
/// kinds whose failures have no single honest class: a spoofed marker
/// *deceives* the lander into a confident wrong touchdown (healthy
/// subsystems, no blindness — deliberately unclassified), and a gust can
/// end as a lag collision, a long blow-away or an off-pad touchdown
/// depending on when it hits. Unmapped kinds still appear as matrix rows
/// but are excluded from precision/recall scoring.
///
/// The mapping follows each fault's mechanism: occlusion and dropout
/// blind the marker pipeline (perception loss), GNSS bias is the paper's
/// silent-drift narrative (d), depth corruption poisons the occupancy map
/// (c), planner starvation exhausts the search pool (a), and a throttled
/// compute platform stretches plan latencies until the airframe lags its
/// plan into an obstacle (b).
pub fn expected_class(kind: FaultKind) -> Option<Fig5Class> {
    match kind {
        FaultKind::MarkerOcclusion => Some(Fig5Class::PerceptionLoss),
        FaultKind::DetectionDropout => Some(Fig5Class::PerceptionLoss),
        FaultKind::MarkerSpoof => None,
        FaultKind::GpsBias => Some(Fig5Class::GpsDrift),
        FaultKind::WindGust => None,
        FaultKind::ComputeThrottle => Some(Fig5Class::TrajectoryLagCollision),
        FaultKind::DepthCorruption => Some(Fig5Class::MapCorruption),
        FaultKind::PlannerStarvation => Some(Fig5Class::PlannerExhaustion),
    }
}

/// Column label for a failed mission the classifier declined to claim.
pub const UNCLASSIFIED: &str = "unclassified";

/// Column label for successful missions (excluded from scoring).
pub const SUCCESS: &str = "success";

/// One matrix row: every captured trace of one injected fault kind,
/// tallied by predicted column.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MatrixRow {
    /// Injected fault kind (the axis label — the ground truth).
    pub kind: String,
    /// The class label this kind is expected to triage as (`"-"` for
    /// kinds excluded from scoring).
    pub expected: String,
    /// Count per predicted column, aligned with [`TriageMatrix::columns`].
    pub counts: Vec<usize>,
    /// Captured traces of this kind that failed (the scoring denominator).
    pub failed: usize,
}

/// Precision/recall of one triage class over the ground-truth corpus.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ClassScore {
    /// Triage class label.
    pub class: String,
    /// Failed traces whose injected kind maps to this class.
    pub support: usize,
    /// Of those, the ones the classifier predicted correctly.
    pub correct: usize,
    /// Failed traces of any kind the classifier predicted as this class.
    pub predicted: usize,
    /// `correct / predicted` (0 when nothing was predicted).
    pub precision: f64,
    /// `correct / support` (0 when the class has no support).
    pub recall: f64,
}

/// The full confusion matrix: injected [`FaultKind`] rows × predicted
/// triage-class columns, with per-class scores.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TriageMatrix {
    /// Predicted column labels: the five Fig. 5 classes, then
    /// [`UNCLASSIFIED`], then [`SUCCESS`].
    pub columns: Vec<String>,
    /// One row per injected fault kind, in [`FaultKind::ALL`] order.
    pub rows: Vec<MatrixRow>,
    /// Per-class precision/recall, in [`Fig5Class::ALL`] order.
    pub scores: Vec<ClassScore>,
    /// Traces scored (single-axis records).
    pub total: usize,
    /// Of those, missions that failed.
    pub failed: usize,
    /// Records skipped for ambiguous ground truth (baseline or multi-fault
    /// cells).
    pub skipped: usize,
}

impl TriageMatrix {
    /// Cross-tabulates a corpus of single-fault ground-truth records.
    pub fn from_records<'a>(records: impl IntoIterator<Item = &'a CorpusRecord>) -> Self {
        let columns: Vec<String> = Fig5Class::ALL
            .iter()
            .map(|class| class.label().to_string())
            .chain([UNCLASSIFIED.to_string(), SUCCESS.to_string()])
            .collect();
        let column_of = |label: &str| {
            columns
                .iter()
                .position(|column| column == label)
                .unwrap_or(columns.len() - 2)
        };
        let mut counts: BTreeMap<&'static str, Vec<usize>> = FaultKind::ALL
            .iter()
            .map(|kind| (kind.label(), vec![0usize; columns.len()]))
            .collect();
        let mut total = 0usize;
        let mut failed = 0usize;
        let mut skipped = 0usize;
        for record in records {
            let [coordinate] = record.coordinates.as_slice() else {
                skipped += 1;
                continue;
            };
            let Some(row) = counts.get_mut(coordinate.axis.as_str()) else {
                skipped += 1;
                continue;
            };
            total += 1;
            let column = if record.verdict == SUCCESS {
                columns.len() - 1
            } else {
                failed += 1;
                column_of(&record.class)
            };
            row[column] += 1;
        }

        let rows: Vec<MatrixRow> = FaultKind::ALL
            .iter()
            .map(|kind| {
                let row = &counts[kind.label()];
                MatrixRow {
                    kind: kind.label().to_string(),
                    expected: expected_class(*kind)
                        .map(|class| class.label().to_string())
                        .unwrap_or_else(|| "-".to_string()),
                    failed: row.iter().sum::<usize>() - row[columns.len() - 1],
                    counts: row.clone(),
                }
            })
            .collect();

        let scores: Vec<ClassScore> = Fig5Class::ALL
            .iter()
            .map(|class| {
                let label = class.label();
                let column = column_of(label);
                let mut support = 0usize;
                let mut correct = 0usize;
                let mut predicted = 0usize;
                for (kind, row) in FaultKind::ALL.iter().zip(rows.iter()) {
                    // Unmapped kinds carry no ground truth: they count in
                    // neither the support nor the precision denominator.
                    let Some(expected) = expected_class(*kind) else {
                        continue;
                    };
                    predicted += row.counts[column];
                    if expected == *class {
                        support += row.failed;
                        correct += row.counts[column];
                    }
                }
                let ratio = |n: usize, d: usize| if d == 0 { 0.0 } else { n as f64 / d as f64 };
                ClassScore {
                    class: label.to_string(),
                    support,
                    correct,
                    predicted,
                    precision: ratio(correct, predicted),
                    recall: ratio(correct, support),
                }
            })
            .collect();

        Self {
            columns,
            rows,
            scores,
            total,
            failed,
            skipped,
        }
    }

    /// The recall of one class, by label.
    pub fn recall(&self, class: &str) -> Option<f64> {
        self.scores
            .iter()
            .find(|score| score.class == class)
            .map(|score| score.recall)
    }

    /// Checks per-class recall floors, returning one human-readable
    /// violation per breached class (empty means the contract holds). A
    /// floored class with no support is itself a violation — a floor over
    /// zero evidence would pass vacuously forever.
    pub fn check_recall_floors(&self, floors: &[(Fig5Class, f64)]) -> Vec<String> {
        let mut violations = Vec::new();
        for (class, floor) in floors {
            let label = class.label();
            let Some(score) = self.scores.iter().find(|score| score.class == label) else {
                violations.push(format!("class {label} is missing from the matrix"));
                continue;
            };
            if score.support == 0 {
                violations.push(format!(
                    "class {label} has no failed ground-truth traces to score"
                ));
            } else if score.recall < *floor {
                violations.push(format!(
                    "class {label} recall {:.3} fell below the pinned floor {:.3} \
                     ({} / {} ground-truth failures recovered)",
                    score.recall, floor, score.correct, score.support
                ));
            }
        }
        violations
    }

    /// Pretty-JSON encoding of the matrix (the artifact CI uploads, and
    /// the golden fixture the seed-grid test pins byte for byte).
    ///
    /// # Errors
    ///
    /// Returns the serde error message when encoding fails.
    pub fn to_json(&self) -> Result<String, String> {
        serde_json::to_string_pretty(self).map_err(|err| err.to_string())
    }

    /// RFC 4180 CSV encoding: one row per fault kind, then a blank line
    /// and the per-class score block.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,expected");
        for column in &self.columns {
            out.push(',');
            out.push_str(column);
        }
        out.push_str(",failed\n");
        for row in &self.rows {
            out.push_str(&row.kind);
            out.push(',');
            out.push_str(&row.expected);
            for count in &row.counts {
                out.push_str(&format!(",{count}"));
            }
            out.push_str(&format!(",{}\n", row.failed));
        }
        out.push_str("\nclass,support,correct,predicted,precision,recall\n");
        for score in &self.scores {
            out.push_str(&format!(
                "{},{},{},{},{},{}\n",
                score.class,
                score.support,
                score.correct,
                score.predicted,
                score.precision,
                score.recall
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mls_trace::AxisCoordinate;

    fn record(axis: &str, verdict: &str, class: &str) -> CorpusRecord {
        CorpusRecord {
            campaign: "confusion-test".to_string(),
            family: "open".to_string(),
            cell_index: 0,
            scenario_id: 0,
            repeat: 0,
            seed: 1,
            variant: mls_core::SystemVariant::MlsV1,
            coordinates: vec![AxisCoordinate {
                axis: axis.to_string(),
                value: 1.0,
            }],
            verdict: verdict.to_string(),
            class: class.to_string(),
            signature: format!("{verdict}/{class}/clean/no-tick"),
            path: "c000-s000-r0.jsonl".to_string(),
        }
    }

    #[test]
    fn matrices_tally_score_and_skip() {
        let mut records = vec![
            record("gps-bias", "poor-landing", "gps-drift"),
            record("gps-bias", "poor-landing", "gps-drift"),
            record("gps-bias", "poor-landing", "unclassified"),
            record("gps-bias", "success", "unclassified"),
            record("depth-corruption", "collision", "map-corruption"),
            record("depth-corruption", "collision", "gps-drift"),
        ];
        // A baseline record (no coordinates) has no ground truth.
        let mut baseline = record("gps-bias", "poor-landing", "gps-drift");
        baseline.coordinates.clear();
        records.push(baseline);

        let matrix = TriageMatrix::from_records(&records);
        assert_eq!(matrix.total, 6);
        assert_eq!(matrix.failed, 5);
        assert_eq!(matrix.skipped, 1);

        let gps_row = matrix
            .rows
            .iter()
            .find(|row| row.kind == "gps-bias")
            .unwrap();
        assert_eq!(gps_row.failed, 3);
        assert_eq!(gps_row.expected, "gps-drift");
        let gps = matrix
            .scores
            .iter()
            .find(|s| s.class == "gps-drift")
            .unwrap();
        assert_eq!((gps.support, gps.correct, gps.predicted), (3, 2, 3));
        assert!((gps.recall - 2.0 / 3.0).abs() < 1e-12);
        assert!((gps.precision - 2.0 / 3.0).abs() < 1e-12);
        let map = matrix
            .scores
            .iter()
            .find(|s| s.class == "map-corruption")
            .unwrap();
        assert_eq!((map.support, map.correct), (2, 1));

        assert_eq!(matrix.recall("gps-drift"), Some(gps.recall));
        assert_eq!(matrix.recall("nope"), None);
    }

    #[test]
    fn recall_floors_catch_regressions_and_vacuous_passes() {
        let records = vec![
            record("gps-bias", "poor-landing", "gps-drift"),
            record("gps-bias", "poor-landing", "unclassified"),
        ];
        let matrix = TriageMatrix::from_records(&records);
        assert!(matrix
            .check_recall_floors(&[(Fig5Class::GpsDrift, 0.5)])
            .is_empty());
        let violations = matrix
            .check_recall_floors(&[(Fig5Class::GpsDrift, 0.9), (Fig5Class::MapCorruption, 0.5)]);
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations[0].contains("fell below"), "{}", violations[0]);
        assert!(violations[1].contains("no failed"), "{}", violations[1]);
    }

    #[test]
    fn encodings_are_complete() {
        let records = vec![record(
            "compute-throttle",
            "collision",
            "trajectory-lag-collision",
        )];
        let matrix = TriageMatrix::from_records(&records);
        let json = matrix.to_json().unwrap();
        assert!(json.contains("\"columns\""));
        assert!(json.contains("trajectory-lag-collision"));
        let csv = matrix.to_csv();
        assert!(csv.starts_with("kind,expected,"));
        assert!(csv.contains("wind-gust"));
        assert!(csv.lines().count() > FaultKind::ALL.len() + Fig5Class::ALL.len());
        // Every fault kind has a row and an expected class.
        for kind in FaultKind::ALL {
            assert!(csv.contains(kind.label()));
            let _ = expected_class(kind);
        }
    }
}
