//! Criterion benchmark of a complete mission: MLS-V3 flying one benign
//! benchmark scenario end to end (takeoff → search → validation → landing).
//! This measures how much wall-clock time one simulated mission costs, which
//! bounds how long the Table I/III reproductions take.

use criterion::{criterion_group, criterion_main, Criterion};
use mls_compute::{ComputeModel, ComputeProfile};
use mls_core::{ExecutorConfig, LandingConfig, MissionExecutor, SystemVariant};
use mls_sim_world::{ScenarioConfig, ScenarioGenerator};

fn bench_full_mission(c: &mut Criterion) {
    let scenarios = ScenarioGenerator::new(ScenarioConfig {
        maps: 1,
        scenarios_per_map: 1,
        ..ScenarioConfig::default()
    })
    .generate_benchmark(77)
    .unwrap();

    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    for variant in [SystemVariant::MlsV1, SystemVariant::MlsV3] {
        group.bench_function(format!("mission_{}", variant.label()), |b| {
            b.iter(|| {
                let compute = ComputeModel::new(ComputeProfile::desktop_sil()).unwrap();
                let executor = MissionExecutor::for_variant(
                    std::hint::black_box(&scenarios[0]),
                    variant,
                    LandingConfig::default(),
                    compute,
                    ExecutorConfig::default(),
                    11,
                )
                .unwrap();
                executor.run()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench_full_mission
}
criterion_main!(benches);
