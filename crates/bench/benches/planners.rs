//! Criterion micro-benchmarks of the path planners: bounded A* (MLS-V2) and
//! RRT* (MLS-V3) over maps of increasing obstacle density.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mls_geom::Vec3;
use mls_mapping::{OctreeConfig, OctreeMap};
use mls_planning::{AStarPlanner, PathPlanner, RrtStarConfig, RrtStarPlanner};

/// An octree populated with `columns` vertical pillars between start and goal.
fn pillar_world(columns: usize) -> OctreeMap {
    let mut tree = OctreeMap::new(OctreeConfig {
        resolution: 0.4,
        half_extent: 64.0,
        ..OctreeConfig::default()
    })
    .unwrap();
    for i in 0..columns {
        let x = 6.0 + (i as f64 * 37.0) % 20.0;
        let y = -8.0 + (i as f64 * 53.0) % 16.0;
        for z in 0..30 {
            tree.mark_occupied(Vec3::new(x, y, z as f64 * 0.4));
            tree.mark_occupied(Vec3::new(x + 0.4, y, z as f64 * 0.4));
        }
    }
    tree
}

fn bench_planners(c: &mut Criterion) {
    let start = Vec3::new(0.0, 0.0, 5.0);
    let goal = Vec3::new(28.0, 0.0, 5.0);
    let mut group = c.benchmark_group("planning");
    group.sample_size(20);
    for &pillars in &[0usize, 6, 18] {
        let world = pillar_world(pillars);
        group.bench_with_input(BenchmarkId::new("astar", pillars), &world, |b, world| {
            b.iter(|| {
                let mut planner = AStarPlanner::new();
                planner.plan(world, std::hint::black_box(start), goal)
            })
        });
        group.bench_with_input(BenchmarkId::new("rrt_star", pillars), &world, |b, world| {
            b.iter(|| {
                let mut planner = RrtStarPlanner::with_config(RrtStarConfig {
                    seed: 3,
                    ..RrtStarConfig::default()
                });
                planner.plan(world, std::hint::black_box(start), goal)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench_planners
}
criterion_main!(benches);
