//! Criterion micro-benchmarks of the occupancy-map substrates: point-cloud
//! insertion and occupancy queries for the dense local grid (MLS-V2) and the
//! probabilistic octree (MLS-V3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mls_geom::Vec3;
use mls_mapping::{OccupancyQuery, OctreeConfig, OctreeMap, VoxelGridConfig, VoxelGridMap};

fn synthetic_cloud(points: usize) -> Vec<Vec3> {
    (0..points)
        .map(|i| {
            let a = i as f64 * 0.017;
            Vec3::new(
                12.0 + (a * 3.1).sin() * 5.0,
                (a * 2.3).cos() * 8.0,
                1.0 + (i % 20) as f64 * 0.4,
            )
        })
        .collect()
}

fn bench_insertion(c: &mut Criterion) {
    let mut group = c.benchmark_group("map_insert_cloud");
    for &points in &[100usize, 400, 1600] {
        let cloud = synthetic_cloud(points);
        let origin = Vec3::new(0.0, 0.0, 6.0);
        group.bench_with_input(BenchmarkId::new("grid", points), &cloud, |b, cloud| {
            b.iter(|| {
                let mut grid = VoxelGridMap::new(VoxelGridConfig::default()).unwrap();
                grid.insert_cloud(origin, std::hint::black_box(cloud));
                grid
            })
        });
        group.bench_with_input(BenchmarkId::new("octree", points), &cloud, |b, cloud| {
            b.iter(|| {
                let mut tree = OctreeMap::new(OctreeConfig::default()).unwrap();
                tree.insert_cloud(origin, std::hint::black_box(cloud));
                tree
            })
        });
    }
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let cloud = synthetic_cloud(1600);
    let origin = Vec3::new(0.0, 0.0, 6.0);
    let mut grid = VoxelGridMap::new(VoxelGridConfig::default()).unwrap();
    let mut tree = OctreeMap::new(OctreeConfig::default()).unwrap();
    grid.insert_cloud(origin, &cloud);
    tree.insert_cloud(origin, &cloud);

    let mut group = c.benchmark_group("map_queries");
    group.bench_function("grid_state_at", |b| {
        b.iter(|| grid.state_at(std::hint::black_box(Vec3::new(12.0, 2.0, 3.0))))
    });
    group.bench_function("octree_state_at", |b| {
        b.iter(|| tree.state_at(std::hint::black_box(Vec3::new(12.0, 2.0, 3.0))))
    });
    group.bench_function("grid_segment_blocked", |b| {
        b.iter(|| {
            grid.segment_blocked(
                std::hint::black_box(Vec3::new(0.0, 0.0, 5.0)),
                Vec3::new(20.0, 0.0, 5.0),
                0.9,
                false,
            )
        })
    });
    group.bench_function("octree_segment_blocked", |b| {
        b.iter(|| {
            tree.segment_blocked(
                std::hint::black_box(Vec3::new(0.0, 0.0, 5.0)),
                Vec3::new(20.0, 0.0, 5.0),
                0.9,
                false,
            )
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench_insertion, bench_queries
}
criterion_main!(benches);
