//! Criterion micro-benchmarks of the state-estimation and sensing substrate:
//! EKF cycles, GNSS/IMU sampling, and depth-camera capture.

use criterion::{criterion_group, criterion_main, Criterion};
use mls_geom::{Pose, Vec3};
use mls_sim_uav::{
    DepthCamera, DepthCameraConfig, Ekf, EkfConfig, GpsSensor, ImuConfig, ImuSensor, VehicleState,
};
use mls_sim_world::{MapStyle, Obstacle, Weather, WorldMap};

fn bench_ekf(c: &mut Criterion) {
    c.bench_function("ekf_predict_update_cycle", |b| {
        let mut ekf = Ekf::new(EkfConfig::default(), Vec3::ZERO);
        let accel = Vec3::new(0.1, -0.2, 0.05);
        let position = Vec3::new(1.0, 2.0, 10.0);
        b.iter(|| {
            ekf.predict(std::hint::black_box(accel), 0.02);
            ekf.update_gps(std::hint::black_box(position), Vec3::ZERO, 0.9);
            ekf.update_baro(10.0);
            ekf.position()
        })
    });
}

fn bench_sensors(c: &mut Criterion) {
    let mut state = VehicleState::grounded(Vec3::new(0.0, 0.0, 10.0));
    state.landed = false;
    c.bench_function("gps_sample", |b| {
        let mut gps = GpsSensor::from_weather(&Weather::rain(), 1);
        b.iter(|| gps.sample(std::hint::black_box(&state), 0.2))
    });
    c.bench_function("imu_sample", |b| {
        let mut imu = ImuSensor::new(ImuConfig::pixhawk_2_4_8(), 1);
        b.iter(|| imu.sample(std::hint::black_box(&state), 0.005))
    });
}

fn bench_depth_capture(c: &mut Criterion) {
    let world = WorldMap::empty("bench", MapStyle::Urban, 80.0)
        .with_obstacle(Obstacle::building(
            Vec3::new(12.0, 0.0, 0.0),
            8.0,
            8.0,
            15.0,
        ))
        .with_obstacle(Obstacle::tree(Vec3::new(8.0, -6.0, 0.0), 5.0, 3.0))
        .with_obstacle(Obstacle::building(
            Vec3::new(20.0, 8.0, 0.0),
            10.0,
            6.0,
            20.0,
        ));
    let pose = Pose::from_position_yaw(Vec3::new(0.0, 0.0, 8.0), 0.0);
    c.bench_function("depth_camera_capture_24x18", |b| {
        let mut camera = DepthCamera::new(DepthCameraConfig::default(), 1);
        b.iter(|| camera.capture(&world, std::hint::black_box(&pose), &pose))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench_ekf, bench_sensors, bench_depth_capture
}
criterion_main!(benches);
