//! Criterion micro-benchmarks of the two marker-detection pipelines.
//!
//! Establishes the relative inference cost of the classical (OpenCV-style)
//! pipeline versus the learned (TPH-YOLO surrogate) pipeline, which is the
//! exchange rate the compute model uses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mls_geom::{Pose, Vec2, Vec3};
use mls_vision::{
    Camera, ClassicalDetector, DegradationConfig, GroundScene, ImageDegrader, LearnedDetector,
    LightingCondition, MarkerDetector, MarkerDictionary, MarkerPlacement, MarkerRenderer,
    WeatherKind,
};

fn rendered_frame(altitude: f64, degraded: bool) -> mls_vision::GrayImage {
    let dictionary = MarkerDictionary::standard();
    let renderer = MarkerRenderer::new(dictionary);
    let scene =
        GroundScene::new().with_marker(MarkerPlacement::new(7, Vec2::new(0.5, -0.3), 1.5, 0.4));
    let pose = Pose::from_position_yaw(Vec3::new(0.0, 0.0, altitude), 0.1);
    let frame = renderer.render(&Camera::downward(), &pose, &scene);
    if degraded {
        let config =
            DegradationConfig::for_conditions(WeatherKind::Fog, LightingCondition::LowLight);
        ImageDegrader::new(config, 5).apply(&frame)
    } else {
        frame
    }
}

fn bench_detectors(c: &mut Criterion) {
    let dictionary = MarkerDictionary::standard();
    let classical = ClassicalDetector::new(dictionary.clone());
    let learned = LearnedDetector::new(dictionary);
    let mut group = c.benchmark_group("marker_detection");
    for (label, degraded) in [("clear", false), ("fog_lowlight", true)] {
        let frame = rendered_frame(9.0, degraded);
        group.bench_with_input(BenchmarkId::new("classical", label), &frame, |b, frame| {
            b.iter(|| classical.detect(std::hint::black_box(frame)))
        });
        group.bench_with_input(BenchmarkId::new("learned", label), &frame, |b, frame| {
            b.iter(|| learned.detect(std::hint::black_box(frame)))
        });
    }
    group.finish();
}

fn bench_rendering(c: &mut Criterion) {
    let dictionary = MarkerDictionary::standard();
    let renderer = MarkerRenderer::new(dictionary);
    let scene = GroundScene::new().with_marker(MarkerPlacement::new(3, Vec2::ZERO, 1.5, 0.0));
    let camera = Camera::downward();
    let pose = Pose::from_position_yaw(Vec3::new(0.0, 0.0, 10.0), 0.0);
    c.bench_function("camera_render_160x120", |b| {
        b.iter(|| renderer.render(&camera, std::hint::black_box(&pose), &scene))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench_detectors, bench_rendering
}
criterion_main!(benches);
