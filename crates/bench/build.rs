//! Build-time host metadata for the persisted perf reports.
//!
//! `BENCH_perf.json` numbers are only comparable across commits when the
//! report says what produced them, so the git revision and the cargo
//! profile are resolved here and baked into the binary — no runtime git
//! dependency, and a stale working tree can't mislabel a measurement.

use std::process::Command;

fn main() {
    let rev = Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|output| output.status.success())
        .and_then(|output| String::from_utf8(output.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    println!("cargo:rustc-env=MLS_GIT_REV={rev}");

    let profile = std::env::var("PROFILE").unwrap_or_else(|_| "unknown".to_string());
    println!("cargo:rustc-env=MLS_BUILD_PROFILE={profile}");

    // Re-stamp when the checked-out commit moves (HEAD covers branch
    // switches; the ref file covers commits on the current branch).
    println!("cargo:rerun-if-changed=../../.git/HEAD");
}
