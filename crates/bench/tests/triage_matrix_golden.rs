//! Golden test for the triage confusion matrix: a tiny pinned-seed
//! ground-truth grid must cross-tabulate to the exact committed matrix
//! JSON, byte for byte.
//!
//! Missions are pure functions of (seed, spec) and the matrix is a pure
//! function of the corpus, so the fixture is stable across thread counts,
//! build profiles and machines. If the simulation, the triage classifier
//! or the corpus schema *deliberately* changes, regenerate the fixture
//! with:
//!
//! ```sh
//! MLS_BLESS=1 cargo test -p mls-bench --test triage_matrix_golden
//! ```
//!
//! and review the fixture diff like any other behavioural change.

use std::fs;
use std::path::PathBuf;

use mls_bench::TriageMatrix;
use mls_campaign::{CampaignRunner, CampaignSpec, FaultKind, FaultPlan, TraceCorpus, TracePolicy};
use mls_core::SystemVariant;
use mls_sim_world::ScenarioFamily;

/// The pinned grid: two crisp fault kinds × one family on MLS v1, seed
/// fixed — small enough for the debug-profile test run, large enough that
/// every matrix column sees traffic.
fn golden_spec() -> CampaignSpec {
    let mut spec = CampaignSpec {
        name: "triage-matrix-golden".to_string(),
        seed: 2025,
        maps: 1,
        scenarios_per_map: 3,
        repeats: 2,
        families: vec![ScenarioFamily::Open],
        variants: vec![SystemVariant::MlsV1],
        baseline: false,
        faults: vec![
            FaultPlan::new(FaultKind::GpsBias, 1.0),
            FaultPlan::new(FaultKind::MarkerOcclusion, 1.0),
        ],
        capture: TracePolicy::All,
        ..CampaignSpec::default()
    };
    spec.landing.mission_timeout = 150.0;
    spec.executor.max_duration = 180.0;
    spec
}

#[test]
fn confusion_matrix_matches_the_committed_fixture() {
    let spec = golden_spec();
    let trace_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/test-traces/triage-matrix-golden");
    let _ = fs::remove_dir_all(&trace_dir);
    CampaignRunner::new(2)
        .with_trace_dir(&trace_dir)
        .run(&spec)
        .expect("golden ground-truth campaign");

    let corpus = TraceCorpus::open(&trace_dir).expect("open golden corpus");
    assert_eq!(
        corpus.len(),
        spec.cells().len() * spec.missions_per_cell(),
        "TracePolicy::All must index every mission"
    );
    let matrix = TriageMatrix::from_records(corpus.records());
    let json = matrix.to_json().expect("serialise matrix");

    let fixture =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/triage_matrix_golden.json");
    if std::env::var("MLS_BLESS").as_deref() == Ok("1") {
        fs::create_dir_all(fixture.parent().unwrap()).expect("create fixtures dir");
        fs::write(&fixture, &json).expect("bless fixture");
        eprintln!("blessed {}", fixture.display());
        return;
    }
    let expected = fs::read_to_string(&fixture).unwrap_or_else(|err| {
        panic!(
            "missing fixture {} ({err}); regenerate with MLS_BLESS=1",
            fixture.display()
        )
    });
    assert_eq!(
        json, expected,
        "confusion matrix diverged from the committed fixture; if the \
         change is deliberate, regenerate with MLS_BLESS=1 and review the diff"
    );
}
