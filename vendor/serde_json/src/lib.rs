//! Vendored stand-in for the subset of `serde_json` this workspace uses:
//! [`to_string`] / [`to_string_pretty`] / [`from_str`] plus conversions to
//! and from the [`Value`] tree of the vendored `serde`.
//!
//! Encoding is deterministic: object fields keep declaration order, floats
//! are printed with Rust's shortest round-trip `Display`, and no whitespace
//! depends on ambient state — the property the campaign reports rely on for
//! byte-identical output across thread counts.

#![forbid(unsafe_code)]

use std::fmt::Write as _;

pub use serde::{Error, Number, Value};

use serde::{Deserialize, Serialize};

/// Converts any serializable value to the [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Rebuilds a typed value from a [`Value`] tree.
///
/// # Errors
///
/// Returns an [`Error`] when the tree does not match the target type.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

/// Encodes a value as compact JSON.
///
/// # Errors
///
/// Infallible for the vendored data model; the `Result` mirrors the real
/// crate's signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Encodes a value as human-readable, 2-space-indented JSON.
///
/// # Errors
///
/// Infallible for the vendored data model; the `Result` mirrors the real
/// crate's signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a typed value.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    T::from_value(&parse(text)?)
}

/// Parses JSON text into a [`Value`] tree.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON.
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => write_seq(
            out,
            items.iter(),
            indent,
            depth,
            ('[', ']'),
            |out, item, indent, depth| {
                write_value(out, item, indent, depth);
            },
        ),
        Value::Object(fields) => write_seq(
            out,
            fields.iter(),
            indent,
            depth,
            ('{', '}'),
            |out, (key, item), indent, depth| {
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth);
            },
        ),
    }
}

fn write_seq<I: ExactSizeIterator>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    mut write_item: impl FnMut(&mut String, I::Item, Option<usize>, usize),
) {
    out.push(brackets.0);
    let len = items.len();
    for (index, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
        if index + 1 < len {
            out.push(',');
        }
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * depth));
        }
    }
    out.push(brackets.1);
}

fn write_number(out: &mut String, number: Number) {
    match number {
        Number::PosInt(v) => {
            let _ = write!(out, "{v}");
        }
        Number::NegInt(v) => {
            let _ = write!(out, "{v}");
        }
        Number::Float(v) if v.is_finite() => {
            let mut text = format!("{v}");
            // Keep floats recognisable as floats ("1.0", not "1").
            if !text.contains(['.', 'e', 'E']) {
                text.push_str(".0");
            }
            out.push_str(&text);
        }
        // Non-finite floats have no JSON representation; encode as null
        // (real serde_json errors instead, which nothing here relies on).
        Number::Float(_) => out.push_str("null"),
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected input {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(Error::new(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(v)));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::Float(v)))
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => return Err(Error::new(format!("expected `,` or `]`, got {other:?}"))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => return Err(Error::new(format!("expected `,` or `}}`, got {other:?}"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_encode_and_parse() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(to_string(&u64::MAX).unwrap(), "18446744073709551615");
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
        assert_eq!(from_str::<f64>("-2.5e2").unwrap(), -250.0);
        assert!(from_str::<bool>(" true ").unwrap());
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let original = "line\n\"quoted\"\tüñíçødé \\ end".to_string();
        let encoded = to_string(&original).unwrap();
        assert_eq!(from_str::<String>(&encoded).unwrap(), original);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u32, 0.5f64), (2, 1.5)];
        let text = to_string(&v).unwrap();
        assert_eq!(text, "[[1,0.5],[2,1.5]]");
        assert_eq!(from_str::<Vec<(u32, f64)>>(&text).unwrap(), v);
        let o: Option<f64> = None;
        assert_eq!(to_string(&o).unwrap(), "null");
        assert_eq!(from_str::<Option<f64>>("null").unwrap(), None);
    }

    #[test]
    fn pretty_printing_is_stable() {
        let value = Value::Object(vec![
            ("a".to_string(), Value::Number(Number::PosInt(1))),
            (
                "b".to_string(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        let text = to_string_pretty(&value).unwrap();
        assert_eq!(
            text,
            "{\n  \"a\": 1,\n  \"b\": [\n    true,\n    null\n  ]\n}"
        );
        assert_eq!(parse(&text).unwrap(), value);
    }

    #[test]
    fn malformed_input_errors() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
        assert!(from_str::<u32>("\"nope\"").is_err());
    }
}
