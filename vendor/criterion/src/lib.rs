//! Vendored stand-in for the subset of `criterion` this workspace uses.
//!
//! The micro-benchmarks keep their upstream structure (`criterion_group!`,
//! `criterion_main!`, groups, `BenchmarkId`, `Bencher::iter`) but run as a
//! plain timing harness: every benchmark executes a fixed warm-up plus a
//! measured batch and prints mean wall-clock time per iteration. There is no
//! statistical analysis, HTML report or regression tracking.

#![forbid(unsafe_code)]

use std::fmt;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Identifier of one parameterised benchmark (`"astar/18"`).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Joins a function name and a parameter into an id.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            label: format!("{function}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    measured: Option<Duration>,
    iterations: u64,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the mean wall-clock duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up, also primes caches so the measured batch is stable-ish.
        black_box(routine());
        let start = Instant::now();
        let mut iterations = 0u64;
        loop {
            black_box(routine());
            iterations += 1;
            if iterations >= self.iterations || start.elapsed() > Duration::from_millis(500) {
                break;
            }
        }
        self.measured = Some(start.elapsed() / iterations.max(1) as u32);
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the warm-up budget (accepted for upstream-API compatibility;
    /// this lightweight driver does not warm up).
    #[must_use]
    pub fn warm_up_time(self, _duration: std::time::Duration) -> Self {
        self
    }

    /// Sets the measurement budget (accepted for upstream-API compatibility;
    /// this driver measures a fixed iteration count instead).
    #[must_use]
    pub fn measurement_time(self, _duration: std::time::Duration) -> Self {
        self
    }

    /// Sets the iteration budget per benchmark.
    #[must_use]
    pub fn sample_size(mut self, size: usize) -> Self {
        self.sample_size = size as u64;
        self
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl fmt::Display, mut f: F) {
        run_one(&name.to_string(), self.sample_size, &mut f);
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            sample_size: None,
        }
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    sample_size: Option<u64>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the iteration budget for this group.
    pub fn sample_size(&mut self, size: usize) -> &mut Self {
        self.sample_size = Some(size as u64);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(&format!("  {id}"), samples, &mut f);
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let mut wrapped = |b: &mut Bencher| f(b, input);
        run_one(&format!("  {id}"), samples, &mut wrapped);
    }

    /// Ends the group (upstream-API compatibility; nothing to flush).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, iterations: u64, f: &mut F) {
    let mut bencher = Bencher {
        measured: None,
        iterations,
    };
    f(&mut bencher);
    match bencher.measured {
        Some(duration) => println!("{label}: {:.3} µs/iter", duration.as_secs_f64() * 1e6),
        None => println!("{label}: no measurement recorded"),
    }
}

/// Declares a benchmark group function, mirroring the upstream macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring the upstream macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_functions_run_their_closures() {
        let mut criterion = Criterion::default();
        let mut runs = 0u32;
        criterion.bench_function("noop", |b| b.iter(|| std::hint::black_box(1 + 1)));
        let mut group = criterion.benchmark_group("g");
        group.sample_size(5);
        group.bench_function("inner", |b| {
            runs += 1;
            b.iter(|| std::hint::black_box(2 * 2))
        });
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3, |b, &n| {
            b.iter(|| std::hint::black_box(n * n))
        });
        group.finish();
        assert_eq!(runs, 1);
        assert_eq!(BenchmarkId::new("f", 7).to_string(), "f/7");
    }
}
