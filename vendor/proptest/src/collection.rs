//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Strategy producing vectors with lengths drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// The strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        let len = if self.size.is_empty() {
            self.size.start
        } else {
            rng.random_range(self.size.clone())
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn lengths_and_elements_respect_bounds() {
        let strategy = vec(0.0f64..2.0, 1..7);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let v = strategy.sample(&mut rng);
            assert!((1..7).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..2.0).contains(x)));
        }
    }
}
