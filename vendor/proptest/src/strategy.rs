//! Input strategies: how property arguments are sampled.

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform};

/// A recipe for sampling values of one type.
pub trait Strategy {
    /// The type of value the strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps sampled values through a function.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, map }
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.map)(self.inner.sample(rng))
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $index:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$index.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_tuples_and_maps_compose() {
        let strategy = (0.0f64..1.0, 1u32..5).prop_map(|(x, n)| x * n as f64);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let v = strategy.sample(&mut rng);
            assert!((0.0..5.0).contains(&v));
        }
    }
}
