//! Vendored stand-in for the subset of `proptest` this workspace uses.
//!
//! Implements the `proptest!` macro, range / tuple / `prop_map` /
//! `prop::collection::vec` strategies and the `prop_assert*` family as a
//! plain randomised test runner: each property is executed for a configurable
//! number of cases with inputs drawn from a generator seeded from the test
//! name, so failures are reproducible run to run. There is no shrinking and
//! no persistence — a failing case panics with the assertion message.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// `prop::…` paths used by the prelude (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

/// The glob import every test file uses.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` running the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut runner =
                $crate::test_runner::TestRunner::new(&config, stringify!($name));
            for case in 0..runner.cases() {
                $(let $arg = $crate::strategy::Strategy::sample(&$strat, runner.rng());)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(err) = outcome {
                    panic!(
                        "property `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        runner.cases(),
                        err
                    );
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a property, failing the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a property, failing the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Skips the current case when its inputs do not satisfy a precondition.
///
/// The vendored runner treats the case as passing (no retry with fresh
/// inputs), which keeps the macro side-effect free.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}
