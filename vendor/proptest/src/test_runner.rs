//! The property-test runner: configuration, per-test deterministic seeding
//! and the failure type the `prop_assert*` macros produce.

use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of a property test block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Drives the cases of one property.
pub struct TestRunner {
    cases: u32,
    rng: StdRng,
}

impl TestRunner {
    /// Creates a runner whose input stream is seeded from the property name,
    /// so every run of a given test binary samples identical inputs.
    pub fn new(config: &ProptestConfig, name: &str) -> Self {
        // FNV-1a over the name: stable across runs and platforms.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            seed ^= u64::from(byte);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            cases: config.cases,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// The shared input generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn runner_is_deterministic_per_name() {
        let config = ProptestConfig::with_cases(8);
        let mut a = TestRunner::new(&config, "prop_x");
        let mut b = TestRunner::new(&config, "prop_x");
        let mut c = TestRunner::new(&config, "prop_y");
        assert_eq!(a.cases(), 8);
        let xa = a.rng().next_u64();
        assert_eq!(xa, b.rng().next_u64());
        assert_ne!(xa, c.rng().next_u64());
    }
}
