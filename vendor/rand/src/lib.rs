//! Vendored stand-in for the subset of the `rand` 0.9 API this workspace
//! uses: `Rng::random`, `Rng::random_range`, `Rng::random_bool`,
//! `SeedableRng::seed_from_u64` and `rngs::StdRng`.
//!
//! The build environment has no access to a crates.io registry, so the crate
//! is reimplemented locally. The generator is xoshiro256++ seeded through
//! SplitMix64 — a different stream than upstream `StdRng`, which is fine: the
//! workspace only relies on determinism per seed, never on a specific
//! sequence.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Random number generators.
pub mod rngs {
    pub use crate::std_rng::StdRng;
}

mod std_rng;

/// The low-level source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of the next word).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a type with a standard distribution (uniform over
    /// the domain for integers, uniform in `[0, 1)` for floats).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn random_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_in(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one value from the type's standard distribution.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 significant bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[low, high)`.
    fn sample_half_open<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform sample from `[low, high]`.
    fn sample_inclusive<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample from an empty range");
                let u: $t = Standard::sample_standard(rng);
                let v = low + u * (high - low);
                // Floating-point rounding can land exactly on `high`.
                if v >= high { low } else { v }
            }
            fn sample_inclusive<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "cannot sample from an empty range");
                let u: $t = Standard::sample_standard(rng);
                low + u * (high - low)
            }
        }
    )*};
}

uniform_float!(f32, f64);

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample from an empty range");
                let span = (high as i128 - low as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (low as i128 + offset as i128) as $t
            }
            fn sample_inclusive<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "cannot sample from an empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (low as i128 + offset as i128) as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range arguments accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_in<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_in<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_in<R: RngCore>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_inclusive(rng, low, high)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.random_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&x));
            let n = rng.random_range(3u32..9);
            assert!((3..9).contains(&n));
            let m = rng.random_range(1usize..=4);
            assert!((1..=4).contains(&m));
            let s = rng.random_range(-8i64..=-3);
            assert!((-8..=-3).contains(&s));
        }
    }

    #[test]
    fn integer_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mean_of_unit_samples_is_centred() {
        let mut rng = StdRng::seed_from_u64(13);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(17);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
    }
}
