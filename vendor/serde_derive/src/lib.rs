//! Derive macros for the vendored `serde` stand-in.
//!
//! Implemented without `syn`/`quote` (no registry access): the input item is
//! parsed with a small hand-rolled scanner over `proc_macro::TokenTree`s and
//! the generated impls are emitted as source text. Supported shapes are the
//! ones this workspace derives: non-generic named-field structs, unit
//! structs, and enums whose variants are unit, newtype, tuple or
//! struct-like. `#[serde(...)]` attributes are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed enum variant.
enum Variant {
    Unit(String),
    /// Tuple variant with its arity (arity 1 is serde's newtype form).
    Tuple(String, usize),
    Struct(String, Vec<String>),
}

/// A parsed derive input.
enum Item {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives `serde::Serialize` (vendored data-model flavour).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "fields.push((::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\
                     fn to_value(&self) -> ::serde::Value {{\
                         let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                             ::std::vec::Vec::new();\
                         {pushes}\
                         ::serde::Value::Object(fields)\
                     }}\
                 }}"
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\
             }}"
        ),
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|variant| match variant {
                    Variant::Unit(v) => format!(
                        "{name}::{v} => ::serde::Value::String(::std::string::String::from(\"{v}\")),"
                    ),
                    Variant::Tuple(v, 1) => format!(
                        "{name}::{v}(inner) => ::serde::Value::Object(vec![(\
                             ::std::string::String::from(\"{v}\"), \
                             ::serde::Serialize::to_value(inner))]),"
                    ),
                    Variant::Tuple(v, arity) => {
                        let binders: Vec<String> = (0..*arity).map(|i| format!("v{i}")).collect();
                        let items: String = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b}),"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Object(vec![(\
                                 ::std::string::String::from(\"{v}\"), \
                                 ::serde::Value::Array(vec![{items}]))]),",
                            binders.join(", ")
                        )
                    }
                    Variant::Struct(v, fields) => {
                        let binders = fields.join(", ");
                        let pushes: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "inner.push((::std::string::String::from(\"{f}\"), \
                                     ::serde::Serialize::to_value({f})));"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binders} }} => {{\
                                 let mut inner: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                                     ::std::vec::Vec::new();\
                                 {pushes}\
                                 ::serde::Value::Object(vec![(\
                                     ::std::string::String::from(\"{v}\"), \
                                     ::serde::Value::Object(inner))])\
                             }}"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\
                     fn to_value(&self) -> ::serde::Value {{\
                         match self {{ {arms} }}\
                     }}\
                 }}"
            )
        }
    };
    code.parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (vendored data-model flavour).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::de_field(value, \"{f}\")?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\
                     fn from_value(value: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::Error> {{\
                         ::std::result::Result::Ok(Self {{ {inits} }})\
                     }}\
                 }}"
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\
                 fn from_value(_value: &::serde::Value) -> \
                     ::std::result::Result<Self, ::serde::Error> {{\
                     ::std::result::Result::Ok(Self)\
                 }}\
             }}"
        ),
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter_map(|v| match v {
                    Variant::Unit(v) => Some(format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}),"
                    )),
                    _ => None,
                })
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|variant| match variant {
                    Variant::Unit(_) => None,
                    Variant::Tuple(v, 1) => Some(format!(
                        "\"{v}\" => ::std::result::Result::Ok(\
                             {name}::{v}(::serde::Deserialize::from_value(inner)?)),"
                    )),
                    Variant::Tuple(v, arity) => {
                        let elems: String = (0..*arity)
                            .map(|i| {
                                format!(
                                    "::serde::Deserialize::from_value(items.get({i}).ok_or_else(|| \
                                     ::serde::Error::new(\"tuple variant too short\"))?)?,"
                                )
                            })
                            .collect();
                        Some(format!(
                            "\"{v}\" => match inner {{\
                                 ::serde::Value::Array(items) => \
                                     ::std::result::Result::Ok({name}::{v}({elems})),\
                                 _ => ::std::result::Result::Err(\
                                     ::serde::Error::new(\"expected array for tuple variant\")),\
                             }},"
                        ))
                    }
                    Variant::Struct(v, fields) => {
                        let inits: String = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::de_field(inner, \"{f}\")?,"))
                            .collect();
                        Some(format!(
                            "\"{v}\" => ::std::result::Result::Ok({name}::{v} {{ {inits} }}),"
                        ))
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\
                     fn from_value(value: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::Error> {{\
                         match value {{\
                             ::serde::Value::String(tag) => match tag.as_str() {{\
                                 {unit_arms}\
                                 other => ::std::result::Result::Err(::serde::Error::new(\
                                     format!(\"unknown variant `{{other}}` of {name}\"))),\
                             }},\
                             ::serde::Value::Object(entries) if entries.len() == 1 => {{\
                                 let (tag, inner) = &entries[0];\
                                 match tag.as_str() {{\
                                     {tagged_arms}\
                                     other => ::std::result::Result::Err(::serde::Error::new(\
                                         format!(\"unknown variant `{{other}}` of {name}\"))),\
                                 }}\
                             }}\
                             other => ::std::result::Result::Err(::serde::Error::new(\
                                 format!(\"expected {name} variant, got {{other:?}}\"))),\
                         }}\
                     }}\
                 }}"
            )
        }
    };
    code.parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Token scanning
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    // Skip attributes and visibility ahead of the `struct` / `enum` keyword.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1; // `#`
                if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '!') {
                    i += 1;
                }
                i += 1; // the `[...]` group
            }
            Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(ident)) => {
                let kw = ident.to_string();
                if kw == "struct" || kw == "enum" {
                    break;
                }
                i += 1;
            }
            other => panic!("serde_derive: unexpected token before item keyword: {other:?}"),
        }
    }
    let keyword = tokens[i].to_string();
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored): generic types are not supported");
    }
    match tokens.get(i) {
        Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
            let body: Vec<TokenTree> = group.stream().into_iter().collect();
            if keyword == "struct" {
                Item::Struct {
                    name,
                    fields: parse_named_fields(&body),
                }
            } else {
                Item::Enum {
                    name,
                    variants: parse_variants(&body),
                }
            }
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' && keyword == "struct" => {
            Item::UnitStruct { name }
        }
        other => panic!("serde_derive (vendored): unsupported item body: {other:?}"),
    }
}

/// Parses `name: Type, ...` named-field lists, returning the field names.
fn parse_named_fields(tokens: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        i = skip_attrs_and_vis(tokens, i);
        let Some(TokenTree::Ident(ident)) = tokens.get(i) else {
            break;
        };
        fields.push(ident.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field name, got {other:?}"),
        }
        i = skip_type(tokens, i);
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    fields
}

fn parse_variants(tokens: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        i = skip_attrs_and_vis(tokens, i);
        let Some(TokenTree::Ident(ident)) = tokens.get(i) else {
            break;
        };
        let name = ident.to_string();
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = group.stream().into_iter().collect();
                variants.push(Variant::Struct(name, parse_named_fields(&body)));
                i += 1;
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                let body: Vec<TokenTree> = group.stream().into_iter().collect();
                variants.push(Variant::Tuple(name, count_tuple_elems(&body)));
                i += 1;
            }
            _ => variants.push(Variant::Unit(name)),
        }
        // Optional explicit discriminant, then the separating comma.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 2;
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    variants
}

fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            _ => return i,
        }
    }
}

/// Advances past one type, stopping at a top-level `,` (angle-bracket aware;
/// parens/brackets arrive as atomic groups).
fn skip_type(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle_depth = 0i32;
    while let Some(token) = tokens.get(i) {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
            _ => {}
        }
        i += 1;
    }
    i
}

/// Counts the top-level elements of a tuple-variant body.
fn count_tuple_elems(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1usize;
    let mut i = 0usize;
    loop {
        i = skip_type(tokens, i);
        if i >= tokens.len() {
            break;
        }
        // We stopped on a top-level comma; a trailing comma ends the list.
        i += 1;
        if i >= tokens.len() {
            break;
        }
        count += 1;
    }
    count
}
