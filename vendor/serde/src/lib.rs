//! Vendored stand-in for the subset of `serde` this workspace uses.
//!
//! The build environment has no registry access, so this crate provides a
//! minimal self-describing data model instead of the real serde: a [`Value`]
//! tree plus [`Serialize`]/[`Deserialize`] traits that convert to and from
//! it. The companion `serde_derive` proc-macro derives both traits for named
//! structs and for enums with unit, newtype, tuple or struct variants, using
//! the same externally-tagged representation as real serde, and the vendored
//! `serde_json` encodes the tree to JSON text.
//!
//! Only what the workspace needs is implemented; there is no zero-copy
//! deserialization, no custom `Serializer`/`Deserializer` plumbing and no
//! `#[serde(...)]` attribute support.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::error::Error as StdError;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped number: integers keep full 64-bit precision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A binary floating-point number.
    Float(f64),
}

impl Number {
    /// The number as an `f64` (lossy above 2^53).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }
}

/// A self-describing value tree (the JSON data model).
///
/// Objects preserve insertion order, which keeps encodings byte-stable for a
/// given field order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map of string keys to values.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks a key up in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string contents, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `f64` (lossy above 2^53), when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The number as `u64`, when this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::PosInt(v)) => Some(*v),
            _ => None,
        }
    }

    /// The number as `i64`, when this is an integer that fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::PosInt(v)) => i64::try_from(*v).ok(),
            Value::Number(Number::NegInt(v)) => Some(*v),
            _ => None,
        }
    }
}

/// Serialization / deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with a message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.message)
    }
}

impl StdError for Error {}

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when the tree does not match the expected shape.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Derive-macro helper: extracts and deserializes one object field.
///
/// # Errors
///
/// Returns an [`Error`] when the field is missing or has the wrong shape.
pub fn de_field<T: Deserialize>(value: &Value, field: &str) -> Result<T, Error> {
    let inner = value
        .get(field)
        .ok_or_else(|| Error::new(format!("missing field `{field}`")))?;
    T::from_value(inner)
}

// ---------------------------------------------------------------------------
// Primitive implementations
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(Number::PosInt(v)) => <$t>::try_from(*v)
                        .map_err(|_| Error::new(format!("integer {v} out of range"))),
                    other => Err(Error::new(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other
                    ))),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v < 0 {
                    Value::Number(Number::NegInt(v))
                } else {
                    Value::Number(Number::PosInt(v as u64))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide: i64 = match value {
                    Value::Number(Number::PosInt(v)) => i64::try_from(*v)
                        .map_err(|_| Error::new(format!("integer {v} out of range")))?,
                    Value::Number(Number::NegInt(v)) => *v,
                    other => {
                        return Err(Error::new(format!(
                            concat!("expected ", stringify!($t), ", got {:?}"), other
                        )))
                    }
                };
                <$t>::try_from(wide).map_err(|_| Error::new(format!("integer {wide} out of range")))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::Float(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(n) => Ok(n.as_f64() as $t),
                    other => Err(Error::new(format!("expected float, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::new(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::new(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(value)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::new(format!("expected array of {N}, got {len} elements")))
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::new(format!("expected object, got {other:?}"))),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $index:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$index.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Array(items) => {
                        let expected = [$($index),+].len();
                        if items.len() != expected {
                            return Err(Error::new(format!(
                                "expected tuple of {expected}, got {} elements",
                                items.len()
                            )));
                        }
                        Ok(($($name::from_value(&items[$index])?,)+))
                    }
                    other => Err(Error::new(format!("expected tuple array, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(
            u64::from_value(&18_446_744_073_709_551_615u64.to_value()).unwrap(),
            u64::MAX
        );
        assert_eq!(i32::from_value(&(-42i32).to_value()).unwrap(), -42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let t = (1u32, 2.5f64);
        assert_eq!(<(u32, f64)>::from_value(&t.to_value()).unwrap(), t);
        let o: Option<f64> = None;
        assert_eq!(Option::<f64>::from_value(&o.to_value()).unwrap(), None);
        assert_eq!(
            Option::<f64>::from_value(&Some(2.0).to_value()).unwrap(),
            Some(2.0)
        );
    }

    #[test]
    fn wrong_shapes_error() {
        assert!(bool::from_value(&Value::Null).is_err());
        assert!(u8::from_value(&Value::Number(Number::PosInt(300))).is_err());
        assert!(Vec::<u32>::from_value(&Value::Bool(false)).is_err());
        assert!(de_field::<u32>(&Value::Object(vec![]), "missing").is_err());
    }
}
