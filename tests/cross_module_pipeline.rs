//! Integration tests of the perception → mapping → planning and
//! camera → detection → decision pipelines across crate boundaries, without
//! running whole missions.

use mls_landing::core::{
    DecisionInputs, DecisionModule, DecisionState, DetectionModule, Directive, LandingConfig,
    MappingBackend, MappingModule,
};
use mls_landing::geom::{Pose, Vec3};
use mls_landing::mapping::CellState;
use mls_landing::planning::{PathPlanner, RrtStarPlanner};
use mls_landing::sim_uav::{DepthCamera, DepthCameraConfig, RgbCamera, RgbCameraConfig};
use mls_landing::sim_world::{MapStyle, MarkerSite, Obstacle, Weather, WorldMap};
use mls_landing::vision::{LearnedDetector, MarkerDictionary, MarkerObservation};

/// Depth capture → octree mapping → RRT* planning must route around a
/// building that only exists in the sensor data.
#[test]
fn perception_to_planning_avoids_a_sensed_building() {
    let world = WorldMap::empty("pipeline", MapStyle::Urban, 80.0).with_obstacle(
        Obstacle::building(Vec3::new(12.0, 0.0, 0.0), 10.0, 14.0, 16.0),
    );
    let mut mapping = MappingModule::new(MappingBackend::GlobalOctree).unwrap();
    let mut depth = DepthCamera::new(DepthCameraConfig::default(), 3);

    // Observe the building from several poses along the approach, at
    // altitudes that together cover the whole 16 m face — otherwise the
    // optimistic planner can legally cut through the unobserved band above
    // the mapped part of the wall.
    for z in [6.0, 10.0, 14.0] {
        for x in [-6.0, -3.0, 0.0, 2.0] {
            let pose = Pose::from_position_yaw(Vec3::new(x, 0.0, z), 0.0);
            for _ in 0..3 {
                let cloud = depth.capture(&world, &pose, &pose);
                mapping.integrate(pose.position, &cloud, 0.0);
            }
        }
    }
    // A survey pass above the roof, so the planner also knows the building's
    // extent in depth and cannot optimistically descend into the unobserved
    // volume behind the front face.
    for x in [0.0, 6.0, 12.0] {
        let pose = Pose::from_position_yaw(Vec3::new(x, 0.0, 22.0), 0.0);
        for _ in 0..3 {
            let cloud = depth.capture(&world, &pose, &pose);
            mapping.integrate(pose.position, &cloud, 0.0);
        }
    }
    // The map must have learned the front face of the building.
    assert_eq!(
        mapping.as_query().state_at(Vec3::new(7.2, 0.0, 4.0)),
        CellState::Occupied
    );

    // Planning through the mapped world must route around or over it.
    let mut planner = RrtStarPlanner::new();
    let outcome = planner
        .plan(
            mapping.as_query(),
            Vec3::new(0.0, 0.0, 6.0),
            Vec3::new(24.0, 0.0, 6.0),
        )
        .expect("a route exists around the building");
    for pair in outcome.path.waypoints.windows(2) {
        assert!(
            !world.segment_occupied(pair[0], pair[1], 0.25),
            "planned segment {pair:?} passes through the real building"
        );
    }
}

/// Camera render → learned detection → world-frame observation → decision
/// validation must latch onto the true marker, not the decoy.
#[test]
fn detection_to_decision_validates_the_true_marker() {
    let dictionary = MarkerDictionary::standard();
    let target_id = 9;
    let world = WorldMap::empty("markers", MapStyle::Rural, 80.0)
        .with_marker(MarkerSite::target(
            target_id,
            Vec3::new(30.0, 5.0, 0.0),
            1.5,
            0.4,
        ))
        .with_marker(MarkerSite::decoy(23, Vec3::new(36.0, -2.0, 0.0), 1.5, 0.0));

    let mut camera = RgbCamera::new(dictionary.clone(), RgbCameraConfig::default(), 5);
    let mut detection =
        DetectionModule::new(Box::new(LearnedDetector::new(dictionary)), target_id, 0.3);
    let mut decision = DecisionModule::new(
        LandingConfig::default(),
        target_id,
        Vec3::new(30.0, 5.0, 0.0),
    );
    let mapping = MappingModule::new(MappingBackend::GlobalOctree).unwrap();

    // Hover over the target at validation altitude and feed frames through
    // the full pipeline.
    let pose = Pose::from_position_yaw(Vec3::new(30.0, 5.0, 9.0), 0.2);
    let mut time = 0.0;
    let mut state_reached_landing = false;
    for _ in 0..(LandingConfig::default().validation_frames + 4) {
        time += 0.5;
        let frame = camera.capture(&world, &Weather::clear(), &pose, 0.0);
        let observations: Vec<MarkerObservation> =
            detection.process_frame(camera.camera(), &frame, &pose, 0.0, time, true);
        let inputs = DecisionInputs {
            time,
            position: pose.position,
            observations: &observations,
            frames_processed: 1,
            landed: false,
            ground_z: 0.0,
        };
        let directive = decision.update(&inputs, mapping.as_query());
        match decision.state() {
            DecisionState::Landing | DecisionState::FinalDescent => {
                state_reached_landing = true;
                break;
            }
            DecisionState::Search => assert!(matches!(directive, Directive::FlyTo { .. })),
            DecisionState::Validation => assert_eq!(directive, Directive::Hover),
            other => panic!("unexpected state {other:?}"),
        }
    }
    assert!(
        state_reached_landing,
        "validation should succeed over the true marker"
    );
    let validated = decision.validated_target().expect("target validated");
    assert!(
        validated.horizontal_distance(Vec3::new(30.0, 5.0, 0.0)) < 1.0,
        "validated position {validated:?} should match the true marker, not the decoy"
    );
    assert!(detection.stats().false_negative_rate() < 0.5);
}

/// The V2 local grid forgets obstacles the V3 octree remembers, across the
/// real sensing pipeline (not just synthetic clouds).
#[test]
fn local_grid_forgets_what_the_octree_remembers_through_real_sensing() {
    let world = WorldMap::empty("forget", MapStyle::Suburban, 120.0).with_obstacle(
        Obstacle::building(Vec3::new(10.0, 0.0, 0.0), 6.0, 6.0, 10.0),
    );
    let mut grid = MappingModule::new(MappingBackend::LocalGrid).unwrap();
    let mut octree = MappingModule::new(MappingBackend::GlobalOctree).unwrap();
    let mut depth = DepthCamera::new(DepthCameraConfig::default(), 8);

    let observe_pose = Pose::from_position_yaw(Vec3::new(0.0, 0.0, 5.0), 0.0);
    for _ in 0..4 {
        let cloud = depth.capture(&world, &observe_pose, &observe_pose);
        grid.integrate(observe_pose.position, &cloud, 0.0);
        octree.integrate(observe_pose.position, &cloud, 0.0);
    }
    // Probe the centre of the wall-face voxel: x = 7.2 sits exactly on a
    // grid-voxel boundary, so whether it reads occupied would depend on
    // sensor-noise specifics rather than the property under test.
    let wall_probe = Vec3::new(7.0, 0.0, 4.0);
    assert_eq!(grid.as_query().state_at(wall_probe), CellState::Occupied);
    assert_eq!(octree.as_query().state_at(wall_probe), CellState::Occupied);

    // Fly 60 m away looking the other way; the grid recenters and forgets.
    let far_pose = Pose::from_position_yaw(Vec3::new(60.0, 0.0, 5.0), std::f64::consts::PI);
    for _ in 0..4 {
        let cloud = depth.capture(&world, &far_pose, &far_pose);
        grid.integrate(far_pose.position, &cloud, 0.0);
        octree.integrate(far_pose.position, &cloud, 0.0);
    }
    assert_eq!(grid.as_query().state_at(wall_probe), CellState::Unknown);
    assert_eq!(octree.as_query().state_at(wall_probe), CellState::Occupied);
}
