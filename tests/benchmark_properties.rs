//! Property-based integration tests over the benchmark generator and the
//! substrates it feeds, using randomly drawn seeds and workloads.

use mls_landing::geom::Vec3;
use mls_landing::mapping::{
    CellState, OccupancyQuery, OctreeConfig, OctreeMap, VoxelGridConfig, VoxelGridMap,
};
use mls_landing::planning::{Path, Trajectory, TrajectoryConfig};
use mls_landing::sim_uav::{Ekf, EkfConfig};
use mls_landing::sim_world::{ScenarioConfig, ScenarioGenerator};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Every generated benchmark, for any seed, satisfies the structural
    /// invariants the paper's evaluation relies on.
    #[test]
    fn benchmark_invariants_hold_for_any_seed(seed in 0u64..10_000) {
        let scenarios = ScenarioGenerator::new(ScenarioConfig {
            maps: 2,
            scenarios_per_map: 4,
            ..ScenarioConfig::default()
        })
        .generate_benchmark(seed)
        .unwrap();
        prop_assert_eq!(scenarios.len(), 8);
        for s in &scenarios {
            // A target marker always exists and sits inside the map bounds.
            let target = s.true_target().unwrap();
            prop_assert!(s.map.bounds.contains(target + Vec3::new(0.0, 0.0, 1.0)));
            // The GPS target is within the configured survey error.
            prop_assert!(s.gps_target.horizontal_distance(target) <= 5.0 + 1e-9);
            // Decoys never reuse the target id.
            for decoy in s.map.decoy_markers() {
                prop_assert_ne!(decoy.id, s.target_marker_id);
            }
            // The take-off column is clear.
            prop_assert!(!s.map.occupied(Vec3::new(0.0, 0.0, 2.0)));
            // The marker pad itself has landing clearance (probe above the
            // pad: `has_clearance` also enforces ground distance, so a probe
            // at marker height would trip the ground check, never obstacles).
            prop_assert!(s.map.has_clearance(target + Vec3::new(0.0, 0.0, 1.5), 1.0));
        }
    }

    /// Inserting any cloud into both map backends never makes the octree
    /// *miss* an endpoint the dense grid recorded (they may disagree about
    /// free space carving, never about hits), and memory stays bounded.
    #[test]
    fn grid_and_octree_agree_on_observed_endpoints(
        points in prop::collection::vec((2.0f64..18.0, -10.0f64..10.0, 0.5f64..9.5), 1..60)
    ) {
        let mut grid = VoxelGridMap::new(VoxelGridConfig {
            resolution: 0.5,
            half_extent_xy: 24.0,
            height: 12.0,
            carve_free_space: true,
            max_range: 30.0,
        })
        .unwrap();
        let mut tree = OctreeMap::new(OctreeConfig {
            resolution: 0.5,
            half_extent: 32.0,
            // Match the grid's sensing range, or returns between 18 m (the
            // octree default) and 30 m are recorded by one backend only.
            max_range: 30.0,
            ..OctreeConfig::default()
        })
        .unwrap();
        let origin = Vec3::new(0.0, 0.0, 5.0);
        let cloud: Vec<Vec3> = points.iter().map(|(x, y, z)| Vec3::new(*x, *y, *z)).collect();
        // Repeat the observation so the probabilistic octree saturates.
        for _ in 0..3 {
            grid.insert_cloud(origin, &cloud);
            tree.insert_cloud(origin, &cloud);
        }
        for p in &cloud {
            if grid.state_at(*p) == CellState::Occupied {
                prop_assert_eq!(
                    tree.state_at(*p),
                    CellState::Occupied,
                    "octree lost an endpoint at {:?}",
                    p
                );
            }
        }
        prop_assert!(tree.memory_bytes() < grid.memory_bytes());
    }

    /// Trajectories preserve the geometric path: same endpoints, same length,
    /// monotone progress, bounded speed.
    #[test]
    fn trajectories_preserve_their_path(
        waypoints in prop::collection::vec((-30.0f64..30.0, -30.0f64..30.0, 2.0f64..15.0), 2..8)
    ) {
        let path = Path::new(waypoints.iter().map(|(x, y, z)| Vec3::new(*x, *y, *z)).collect());
        prop_assume!(path.length() > 1.0);
        let config = TrajectoryConfig::default();
        let trajectory = Trajectory::from_path(&path, config).unwrap();
        prop_assert!((trajectory.length() - path.length()).abs() < 1e-6);
        prop_assert!(trajectory.sample(0.0).position.distance(path.waypoints[0]) < 1e-9);
        prop_assert!(trajectory.sample(trajectory.duration()).position.distance(path.goal()) < 1e-9);
        let mut previous_arc = -1.0;
        let mut t = 0.0;
        while t <= trajectory.duration() {
            let sample = trajectory.sample(t);
            prop_assert!(sample.arc_length >= previous_arc - 1e-9);
            prop_assert!(sample.velocity.norm() <= config.cruise_speed + 1e-6);
            previous_arc = sample.arc_length;
            t += 0.25;
        }
    }

    /// The EKF never diverges when fed consistent measurements of a
    /// stationary vehicle, whatever the measurement noise draw.
    #[test]
    fn ekf_remains_bounded_for_stationary_truth(
        offsets in prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0, -1.0f64..1.0), 50..150)
    ) {
        let truth = Vec3::new(3.0, -2.0, 10.0);
        let mut ekf = Ekf::new(EkfConfig::default(), Vec3::ZERO);
        for (ox, oy, oz) in &offsets {
            ekf.predict(Vec3::ZERO, 0.02);
            ekf.update_gps(truth + Vec3::new(*ox, *oy, *oz) * 0.3, Vec3::ZERO, 0.9);
        }
        prop_assert!(ekf.position().distance(truth) < 2.0);
        prop_assert!(ekf.velocity().norm() < 1.0);
        prop_assert!(ekf.position_sigma().norm() < 3.0);
    }
}
