//! End-to-end integration tests: assemble every crate of the workspace and
//! fly complete missions, checking the paper-level behaviours (V3 lands, the
//! generations rank in the documented order on hard scenarios, results are
//! reproducible, and the HIL compute profile degrades behaviour rather than
//! crashing it).

use mls_landing::compute::{ComputeModel, ComputeProfile};
use mls_landing::core::{
    ExecutorConfig, LandingConfig, MissionExecutor, MissionOutcome, MissionResult, SystemVariant,
};
use mls_landing::sim_world::{MapStyle, Scenario, ScenarioConfig, ScenarioGenerator};

fn benchmark(maps: usize, scenarios_per_map: usize, seed: u64) -> Vec<Scenario> {
    ScenarioGenerator::new(ScenarioConfig {
        maps,
        scenarios_per_map,
        ..ScenarioConfig::default()
    })
    .generate_benchmark(seed)
    .expect("scenario generation succeeds")
}

fn fly(
    scenario: &Scenario,
    variant: SystemVariant,
    profile: ComputeProfile,
    seed: u64,
) -> MissionOutcome {
    let compute = ComputeModel::new(profile).expect("profile is valid");
    MissionExecutor::for_variant(
        scenario,
        variant,
        LandingConfig::default(),
        compute,
        ExecutorConfig::default(),
        seed,
    )
    .expect("configuration is valid")
    .run()
}

#[test]
fn v3_lands_successfully_on_a_benign_scenario() {
    let scenarios = benchmark(1, 1, 77);
    assert_eq!(scenarios[0].map.style, MapStyle::Rural);
    let outcome = fly(
        &scenarios[0],
        SystemVariant::MlsV3,
        ComputeProfile::desktop_sil(),
        11,
    );
    assert_eq!(outcome.result, MissionResult::Success, "{outcome:?}");
    let error = outcome.landing_error.expect("vehicle landed");
    assert!(error < 1.0, "landing error {error}");
    assert!(outcome.collisions == 0);
    assert!(outcome.detection_stats.visible_frames > 0);
}

#[test]
fn missions_are_deterministic_for_a_fixed_seed() {
    let scenarios = benchmark(1, 1, 31);
    let a = fly(
        &scenarios[0],
        SystemVariant::MlsV3,
        ComputeProfile::desktop_sil(),
        5,
    );
    let b = fly(
        &scenarios[0],
        SystemVariant::MlsV3,
        ComputeProfile::desktop_sil(),
        5,
    );
    assert_eq!(a.result, b.result);
    assert_eq!(a.landing_error, b.landing_error);
    assert_eq!(a.collisions, b.collisions);
    assert_eq!(a.duration, b.duration);
}

#[test]
fn every_variant_produces_a_classified_outcome_on_an_urban_scenario() {
    let scenarios = benchmark(3, 2, 13);
    let urban = scenarios
        .iter()
        .find(|s| s.map.style == MapStyle::Urban)
        .expect("urban maps exist");
    for variant in SystemVariant::ALL {
        let outcome = fly(urban, variant, ComputeProfile::desktop_sil(), 3);
        assert_eq!(outcome.variant, variant);
        assert!(matches!(
            outcome.result,
            MissionResult::Success | MissionResult::CollisionFailure | MissionResult::PoorLanding
        ));
        assert!(outcome.duration > 5.0, "{variant:?} terminated instantly");
        // The mission always produces detection activity and a bounded
        // resource trace.
        assert!(outcome.detection_stats.total_frames > 0);
        assert!(outcome.mean_cpu >= 0.0 && outcome.mean_cpu <= 1.0);
    }
}

#[test]
fn hil_profile_runs_and_reports_higher_load_than_sil() {
    let scenarios = benchmark(1, 1, 55);
    let sil = fly(
        &scenarios[0],
        SystemVariant::MlsV3,
        ComputeProfile::desktop_sil(),
        4,
    );
    let hil = fly(
        &scenarios[0],
        SystemVariant::MlsV3,
        ComputeProfile::jetson_nano_maxn(),
        4,
    );
    assert!(
        hil.mean_cpu > sil.mean_cpu,
        "hil {} vs sil {}",
        hil.mean_cpu,
        sil.mean_cpu
    );
    assert!(
        hil.peak_memory_mb < 2_900.0,
        "memory must fit the Jetson budget"
    );
    assert!(hil.worst_planning_latency >= sil.worst_planning_latency);
}
