//! Facade crate for the autonomous marker-based landing system reproduction.
//!
//! The workspace reproduces, in pure Rust, the system described in *"Towards
//! Robust Autonomous Landing Systems: Iterative Solutions and Key Lessons
//! Learned"* (DSN 2025): three generations of a multi-module UAV landing
//! stack (marker detection, occupancy mapping, path planning, decision
//! making) evaluated in software-in-the-loop, hardware-in-the-loop and
//! real-world-like conditions.
//!
//! This crate simply re-exports the workspace members under one roof so the
//! examples and downstream users can depend on a single crate:
//!
//! * [`geom`] — vectors, poses, rays, voxel indices.
//! * [`vision`] — synthetic camera, marker dictionary, classical and learned
//!   detectors, image degradations.
//! * [`mapping`] — dense local voxel grid and global probabilistic octree.
//! * [`planning`] — bounded A*, RRT*, trajectories and safety checks.
//! * [`sim_world`] — procedural worlds, weather, benchmark scenarios.
//! * [`sim_uav`] — quadrotor dynamics, autopilot (PID + EKF), sensors.
//! * [`compute`] — desktop / Jetson Nano compute-platform models.
//! * [`core`] — the landing system itself: modules, state machine, the
//!   MLS-V1/V2/V3 variants, mission executor and metrics.
//! * [`campaign`] — the sharded fault-injection campaign engine: declarative
//!   sweeps over scenarios × variants × compute profiles × fault plans,
//!   deterministic JSON/CSV reports, and falsification search for the
//!   minimal failure-inducing fault intensity.
//! * [`fabric`] — the multi-process campaign fabric: a sharding dispatcher,
//!   worker health/failover, and byte-identical distributed aggregation.
//! * [`trace`] — the flight recorder: ring-buffered per-mission trace
//!   capture, a versioned JSON-lines format, byte-exact replay verification
//!   and the Fig. 5 failure-triage classifier.
//!
//! # Examples
//!
//! ```no_run
//! use mls_landing::compute::{ComputeModel, ComputeProfile};
//! use mls_landing::core::{ExecutorConfig, LandingConfig, MissionExecutor, SystemVariant};
//! use mls_landing::sim_world::{ScenarioConfig, ScenarioGenerator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let scenarios = ScenarioGenerator::new(ScenarioConfig::default()).generate_benchmark(2025)?;
//! let compute = ComputeModel::new(ComputeProfile::desktop_sil())?;
//! let executor = MissionExecutor::for_variant(
//!     &scenarios[0],
//!     SystemVariant::MlsV3,
//!     LandingConfig::default(),
//!     compute,
//!     ExecutorConfig::default(),
//!     1,
//! )?;
//! println!("{:?}", executor.run().result);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mls_campaign as campaign;
pub use mls_compute as compute;
pub use mls_core as core;
pub use mls_fabric as fabric;
pub use mls_geom as geom;
pub use mls_mapping as mapping;
pub use mls_planning as planning;
pub use mls_sim_uav as sim_uav;
pub use mls_sim_world as sim_world;
pub use mls_trace as trace;
pub use mls_vision as vision;
